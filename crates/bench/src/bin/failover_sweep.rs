//! Crash-intensity sweep for session failover: 64 sessions share one
//! server while two of its engine shards take repeated injected worker
//! crashes, under three recovery policies:
//!
//! * **none** — failover disabled: crashed shards' sessions are
//!   quarantined (ghost-mirrored so bystanders see identical
//!   contention) and never come back;
//! * **restart** — restart-only recovery: each session gets a budgeted
//!   cold restart after `restart_delay`; once the budget is exhausted
//!   the session is lost;
//! * **catchup** — checkpoint + catch-up replay: sessions restore the
//!   last `ILXC` checkpoint and replay the journaled boundary events,
//!   paying `restore_cost + catchup_per_event * journal_len` instead of
//!   the full restart delay, without consuming the restart budget.
//!
//! The sweep shows catch-up strictly reducing both the session-loss
//! rate and the p99 recovery latency versus restart-only (and versus no
//! failover), and that the whole pipeline is deterministic: the top
//! catch-up cell rerun is bit-identical.
//!
//! Usage: `cargo run --release -p illixr-bench --bin failover_sweep`
//! (`--quick` runs only the top crash intensity for CI; writes
//! `results/failover_sweep.txt`).

use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Duration;

use illixr_bench::cli::BenchArgs;
use illixr_bench::rule;
use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
use illixr_core::link::LinkProfile;
use illixr_server::{
    AdmissionConfig, FailoverConfig, FailoverPolicy, LinkConfig, ServerBuilder, ServerReport,
};

const SEED: u64 = 7;
const SESSIONS: usize = 64;
const SHARDS: usize = 8;
const DURATION: Duration = Duration::from_secs(3);
/// Crashed shards: two fault domains out of [`SHARDS`], so most
/// sessions are bystanders whose telemetry must not move.
const CRASHED_SHARDS: [usize; 2] = [1, 2];
/// Crash intensity = injected worker crashes per crashed shard. The
/// top intensity exceeds the default restart budget (3), which is
/// where restart-only starts losing sessions and catch-up does not.
const INTENSITIES: [usize; 3] = [1, 2, 5];
const FIRST_CRASH: Duration = Duration::from_millis(500);
const CRASH_SPACING: Duration = Duration::from_millis(400);

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    None,
    Restart,
    Catchup,
}

impl Policy {
    const ALL: [Policy; 3] = [Policy::None, Policy::Restart, Policy::Catchup];

    fn label(self) -> &'static str {
        match self {
            Policy::None => "none",
            Policy::Restart => "restart",
            Policy::Catchup => "catchup",
        }
    }

    fn config(self) -> FailoverConfig {
        match self {
            Policy::None => FailoverConfig::default(),
            Policy::Restart => {
                FailoverConfig { policy: FailoverPolicy::RestartOnly, ..Default::default() }
            }
            Policy::Catchup => FailoverConfig {
                policy: FailoverPolicy::CheckpointCatchup,
                checkpoint_every: Some(Duration::from_millis(300)),
                ..Default::default()
            },
        }
    }
}

/// `crashes` staggered `WorkerCrash` windows per crashed shard, spaced
/// so each fires only after the previous recovery window has passed.
fn crash_plan(crashes: usize) -> FaultPlan {
    let mut plan = FaultPlan::new(SEED);
    for (i, shard) in CRASHED_SHARDS.iter().enumerate() {
        for k in 0..crashes {
            let at =
                (FIRST_CRASH + CRASH_SPACING * k as u32 + Duration::from_millis(100) * i as u32)
                    .as_nanos() as u64;
            plan = plan.with_window(FaultWindow::new(
                FaultKind::WorkerCrash,
                &format!("shard/{shard}"),
                at,
                at + 1,
                1.0,
            ));
        }
    }
    plan
}

fn run_once(crashes: usize, policy: Policy) -> ServerReport {
    ServerBuilder::new()
        .sessions(SESSIONS)
        .duration(DURATION)
        .shards(SHARDS)
        .workers(1)
        // A LAN-class link and open admission so all 64 sessions stay
        // live: the crashed fault domains then hold a real population
        // (8 sessions per shard under the FNV shard map).
        .link(LinkConfig::from_profile(LinkProfile::lan(), SEED))
        .admission(AdmissionConfig {
            degrade_threshold: f64::INFINITY,
            reject_threshold: f64::INFINITY,
        })
        .fault_plan(crash_plan(crashes))
        .failover(policy.config())
        .build()
        .run()
}

struct Cell {
    crashes: usize,
    policy: Policy,
    incidents: usize,
    recovered: usize,
    lost_sessions: usize,
    loss_rate: f64,
    lost_frames: u64,
    recovery_p50_ms: f64,
    recovery_p99_ms: f64,
    /// Full deterministic artifact, kept for the rerun check.
    summary: String,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(crashes: usize, policy: Policy, report: &ServerReport) -> Cell {
    let incidents = &report.failover_incidents;
    // A session is lost when its final incident never closed.
    let lost: HashSet<u32> = {
        let mut open: HashSet<u32> = HashSet::new();
        for i in incidents {
            if i.recovered_at.is_none() {
                open.insert(i.session);
            } else {
                open.remove(&i.session);
            }
        }
        open
    };
    let mut recovery_ms: Vec<f64> = incidents
        .iter()
        .filter_map(|i| i.recovered_at.map(|r| (r - i.crashed_at).as_secs_f64() * 1e3))
        .collect();
    recovery_ms.sort_by(|a, b| a.total_cmp(b));
    Cell {
        crashes,
        policy,
        incidents: incidents.len(),
        recovered: recovery_ms.len(),
        lost_sessions: lost.len(),
        loss_rate: lost.len() as f64 / SESSIONS as f64,
        lost_frames: incidents.iter().map(|i| i.lost_frames).sum(),
        recovery_p50_ms: percentile(&recovery_ms, 0.50),
        recovery_p99_ms: percentile(&recovery_ms, 0.99),
        summary: report.summary_text(),
    }
}

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().quick();
    let top = *INTENSITIES.last().expect("intensities non-empty");
    let intensities: Vec<usize> = if quick { vec![top] } else { INTENSITIES.to_vec() };

    let mut out = String::new();
    writeln!(
        out,
        "# Failover sweep: {SESSIONS} sessions, {SHARDS} shards, shards {CRASHED_SHARDS:?} \
         crashed N times each ({}s simulated, seed {SEED})",
        DURATION.as_secs()
    )
    .unwrap();
    writeln!(
        out,
        "# crashes at {}ms + k*{}ms; restart budget {} per session; checkpoint epoch 300ms",
        FIRST_CRASH.as_millis(),
        CRASH_SPACING.as_millis(),
        FailoverConfig::default().restart_budget,
    )
    .unwrap();
    let header = format!(
        "{:>8} {:>8} {:>10} {:>10} {:>6} {:>10} {:>12} {:>9} {:>9}",
        "crashes",
        "policy",
        "incidents",
        "recovered",
        "lost",
        "loss_rate",
        "lost_frames",
        "p50_ms",
        "p99_ms",
    );
    writeln!(out, "{header}").unwrap();
    println!("Failover sweep ({SESSIONS} sessions, {:?} simulated per cell)", DURATION);
    rule(92);
    println!("{header}");

    let mut cells: Vec<Cell> = Vec::new();
    for &crashes in &intensities {
        for policy in Policy::ALL {
            let cell = summarize(crashes, policy, &run_once(crashes, policy));
            let row = format!(
                "{:>8} {:>8} {:>10} {:>10} {:>6} {:>10.4} {:>12} {:>9.3} {:>9.3}",
                cell.crashes,
                cell.policy.label(),
                cell.incidents,
                cell.recovered,
                cell.lost_sessions,
                cell.loss_rate,
                cell.lost_frames,
                cell.recovery_p50_ms,
                cell.recovery_p99_ms,
            );
            println!("{row}");
            writeln!(out, "{row}").unwrap();
            cells.push(cell);
        }
    }

    // The claims this subsystem exists to support, checked at the top
    // crash intensity (past the restart budget).
    let find = |policy: Policy| {
        cells
            .iter()
            .find(|c| c.crashes == top && c.policy == policy)
            .expect("top-intensity cell present")
    };
    let none = find(Policy::None);
    let restart = find(Policy::Restart);
    let catchup = find(Policy::Catchup);
    let catchup_beats_restart = catchup.loss_rate < restart.loss_rate
        && catchup.recovery_p99_ms < restart.recovery_p99_ms
        && catchup.loss_rate < none.loss_rate;
    writeln!(
        out,
        "\ncatchup_beats_restart={catchup_beats_restart} \
         (loss {:.4} < {:.4} < {:.4}; p99 {:.3}ms < {:.3}ms)",
        catchup.loss_rate,
        restart.loss_rate,
        none.loss_rate,
        catchup.recovery_p99_ms,
        restart.recovery_p99_ms,
    )
    .unwrap();
    rule(92);
    println!("catch-up beats restart-only on loss rate and p99 recovery: {catchup_beats_restart}");
    if !catchup_beats_restart {
        eprintln!("WARNING: failover claims did not hold on this run");
    }

    // Determinism: the top catch-up cell rerun must match bit for bit.
    let rerun = summarize(top, Policy::Catchup, &run_once(top, Policy::Catchup));
    let deterministic = rerun.summary == catchup.summary;
    writeln!(out, "deterministic_rerun_identical={deterministic}").unwrap();
    println!("deterministic rerun identical: {deterministic}");

    std::fs::create_dir_all("results")?;
    std::fs::write("results/failover_sweep.txt", &out)?;
    println!("wrote results/failover_sweep.txt");
    Ok(())
}
