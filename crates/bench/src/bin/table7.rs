//! Table VII: task breakdowns of the visual-pipeline components
//! (reprojection, hologram) and the audio pipeline (encoding, playback),
//! measured from the instrumented standalone components.

use std::sync::Arc;

use illixr_audio::plugins::{AudioEncodingPlugin, AudioPlaybackPlugin};
use illixr_bench::rule;
use illixr_core::plugin::{Plugin, RuntimeBuilder};
use illixr_core::telemetry::TaskTimer;
use illixr_core::{SimClock, Time};
use illixr_image::RgbImage;
use illixr_render::plugin::{RenderedFrame, EYEBUFFER_STREAM};
use illixr_sensors::types::PoseEstimate;
use illixr_visual::distortion::DistortionParams;
use illixr_visual::hologram::{compute_hologram, HologramConfig};
use illixr_visual::plugins::TimewarpPlugin;
use illixr_visual::reprojection::ReprojectionConfig;

fn print_shares(title: &str, rows: &[(&str, f64)], timer: &TaskTimer, note: &str) {
    println!("\n{title}");
    rule(62);
    println!("{:<28} {:>10} {:>10}", "task", "measured", "paper");
    let shares = timer.shares();
    for (task, paper_share) in rows {
        let measured =
            shares.iter().find(|(n, _)| n == task).map(|(_, s)| *s * 100.0).unwrap_or(0.0);
        println!("{task:<28} {measured:>9.1}% {paper_share:>9.0}%");
    }
    if !note.is_empty() {
        println!("  note: {note}");
    }
}

fn main() {
    println!("Table VII: task breakdown of visual and audio pipeline components");

    // --- Reprojection ------------------------------------------------------
    // Drive the timewarp plugin on 2K-aspect frames (scaled down).
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let mut tw =
        TimewarpPlugin::new(ReprojectionConfig::rotational(1.57, 1.0), DistortionParams::default());
    tw.start(&ctx);
    let img = Arc::new(RgbImage::from_fn(256, 256, |x, y| {
        [(x % 37) as f32 / 37.0, (y % 23) as f32 / 23.0, ((x ^ y) % 11) as f32 / 11.0]
    }));
    ctx.switchboard.topic::<RenderedFrame>(EYEBUFFER_STREAM).expect("stream").writer().put(
        RenderedFrame {
            render_pose: PoseEstimate::identity(),
            submit_time: Time::ZERO,
            left: img.clone(),
            right: img,
        },
    );
    for k in 0..20u64 {
        clock.advance_to(Time::from_millis(8 * (k + 1)));
        tw.iterate(&ctx);
    }
    print_shares(
        "Reprojection (VR Museum-like 2K-aspect frames)",
        &[("reprojection", 22.0), ("distortion+chromatic", 0.0)],
        &tw.task_timer(),
        "paper's other 78% is GPU-driver work (FBO 24%, OpenGL state 54%) that a \
         CPU reimplementation has no analogue for; the uarch model charges it in fig8",
    );

    // --- Hologram ------------------------------------------------------------
    let holo_timer = TaskTimer::new();
    let cfg = HologramConfig::default();
    let t0 = illixr_image::GrayImage::from_fn(cfg.width, cfg.height, |x, y| {
        if (x / 8 + y / 8) % 2 == 0 {
            1.0
        } else {
            0.0
        }
    });
    let t1 = illixr_image::GrayImage::from_fn(cfg.width, cfg.height, |x, _| {
        (x as f32 / cfg.width as f32 * 6.0).sin().max(0.0)
    });
    for _ in 0..3 {
        compute_hologram(&[t0.clone(), t1.clone()], &cfg, Some(&holo_timer));
    }
    print_shares(
        "Hologram (weighted Gerchberg-Saxton, 2 depth planes)",
        &[("hologram-to-depth", 57.0), ("sum", 0.0), ("depth-to-hologram", 43.0)],
        &holo_timer,
        "",
    );

    // --- Audio encoding --------------------------------------------------------
    let ctx2 = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
    let mut enc = AudioEncodingPlugin::with_default_scene(42);
    enc.start(&ctx2);
    for _ in 0..50 {
        enc.iterate(&ctx2);
    }
    print_shares(
        "Audio encoding (2 sources, 48 kHz, 1024-sample blocks)",
        &[("normalization", 7.0), ("encoding", 81.0), ("summation", 12.0)],
        &enc.task_timer(),
        "",
    );

    // --- Audio playback ---------------------------------------------------------
    let mut play = AudioPlaybackPlugin::new();
    play.start(&ctx2);
    for _ in 0..50 {
        enc.iterate(&ctx2);
        play.iterate(&ctx2);
    }
    print_shares(
        "Audio playback (8 virtual speakers, HRTF binauralization)",
        &[
            ("psychoacoustic filter", 29.0),
            ("rotation", 6.0),
            ("zoom", 5.0),
            ("binauralization", 60.0),
        ],
        &play.task_timer(),
        "",
    );
}
