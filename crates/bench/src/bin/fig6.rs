//! Fig 6: (a) total power and (b) power-rail breakdown per application
//! and platform.

use illixr_bench::{experiment_config, rule};
use illixr_platform::power::Rail;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::IntegratedExperiment;

fn main() {
    println!("Fig 6a: total power (W) — note the paper plots this on a log scale");
    println!("(paper: desktop ~hundreds of W, Jetsons near the 10 W preset; the ideal");
    println!(" device budget is 0.1–2 W — a 2–3 order-of-magnitude gap)\n");
    print!("{:<12}", "platform");
    for app in Application::ALL {
        print!(" {:>11}", app.label());
    }
    println!();
    rule(12 + 12 * 4);
    let mut results = Vec::new();
    for platform in Platform::ALL {
        print!("{:<12}", platform.label());
        for app in Application::ALL {
            let r = IntegratedExperiment::run(&experiment_config(app, platform));
            print!(" {:>10.1}W", r.power.total());
            results.push(r);
        }
        println!();
    }

    println!("\nFig 6b: power breakdown by hardware unit (%)");
    println!("(paper: GPU dominates the desktop; on Jetson-LP the SoC+Sys rails exceed 50 %)\n");
    print!("{:<22}", "platform/app");
    for rail in Rail::ALL {
        print!(" {:>7}", rail.label());
    }
    println!();
    rule(22 + 8 * 5);
    for r in &results {
        print!("{:<22}", format!("{}/{}", r.platform.label(), r.app.label()));
        for rail in Rail::ALL {
            print!(" {:>6.1}%", r.power.share(rail) * 100.0);
        }
        println!();
    }
}
