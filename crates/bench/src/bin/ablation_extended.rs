//! Extended-configuration ablation (§V-A): what happens to the base
//! system when the "futuristic" components — eye tracking and scene
//! reconstruction — join the integrated configuration instead of running
//! standalone.
//!
//! The paper warns: *"future systems will support larger and faster
//! displays … and will integrate more components, further stressing the
//! entire system."* This binary quantifies that stress.

use illixr_bench::{rule, sim_duration};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{ExperimentConfig, IntegratedExperiment};

fn main() {
    println!("Extended-configuration ablation: + eye tracking + scene reconstruction");
    println!("(Platformer; base = the paper's integrated configuration §III-B)\n");
    println!(
        "{:<11} {:<9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "platform", "config", "app Hz", "warp Hz", "eye Hz", "MTP (ms)", "GPU util"
    );
    rule(74);
    for platform in [Platform::Desktop, Platform::JetsonHP] {
        for extended in [false, true] {
            let mut cfg = ExperimentConfig::paper(Application::Platformer, platform);
            cfg.duration = sim_duration();
            if extended {
                cfg = cfg.with_extended_components();
            }
            let r = IntegratedExperiment::run(&cfg);
            let hz = |name: &str| r.stats(name).map(|s| s.achieved_hz).unwrap_or(0.0);
            let mtp = r.mtp_ms().map(|m| format!("{m:.1}")).unwrap_or_else(|| "-".into());
            println!(
                "{:<11} {:<9} {:>9.1} {:>9.1} {:>9.1} {:>10} {:>8.0}%",
                platform.label(),
                if extended { "extended" } else { "base" },
                hz("application"),
                hz("timewarp"),
                hz("eye_tracking"),
                mtp,
                r.gpu_util * 100.0,
            );
        }
    }
    println!("\nAdding components the GPU must share pushes the application (and on");
    println!("embedded platforms the whole visual pipeline) further from its targets —");
    println!("the paper's motivation for system-level accelerator sharing (§V-B).");
}
