//! Table V: offline image-quality metrics (SSIM and 1−FLIP) for Sponza
//! on every platform — actual system (VIO poses with platform-induced
//! drops and staleness) vs the idealized system (ground-truth poses).

use illixr_bench::rule;
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::image_quality;

fn main() {
    println!("Table V: image quality (mean±std) for Sponza, actual vs idealized");
    println!("(paper: SSIM 0.83→0.68 and 1−FLIP 0.86→0.65 from Desktop to Jetson-LP)\n");
    print!("{:<10}", "");
    for platform in Platform::ALL {
        print!(" {:>12}", platform.label());
    }
    println!();
    rule(10 + 13 * 3);
    let results: Vec<_> =
        Platform::ALL.iter().map(|&p| image_quality(Application::Sponza, p, 42, 8.0)).collect();
    print!("{:<10}", "SSIM");
    for r in &results {
        print!(" {:>12}", format!("{:.2}", r.ssim));
    }
    println!();
    print!("{:<10}", "1-FLIP");
    for r in &results {
        print!(" {:>12}", format!("{:.2}", r.one_minus_flip));
    }
    println!();
    print!("{:<10}", "VIO drops");
    for r in &results {
        print!(" {:>12}", format!("{:.0}%", r.vio_drop_rate * 100.0));
    }
    println!();
}
