//! §V-E ablation: the VIO accuracy / performance trade-off.
//!
//! The paper tuned two VIO parameter sets and found the trajectory error
//! dropped from 8.1 cm to 4.9 cm at the cost of a 1.5× increase in
//! per-frame execution time — and that, end-to-end, the cheaper setting
//! was good enough. This binary reruns that comparison with the fast
//! and accurate [`VioConfig`] presets.

use std::sync::Arc;
use std::time::Instant;

use illixr_bench::rule;
use illixr_math::Pose;
use illixr_qoe::ate::absolute_trajectory_error;
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::dataset::SyntheticDataset;
use illixr_sensors::types::StereoFrame;
use illixr_vio::integrator::ImuState;
use illixr_vio::msckf::{Msckf, VioConfig};

struct AblationRow {
    name: &'static str,
    ate_cm: f64,
    mean_frame_ms: f64,
}

fn run(
    name: &'static str,
    config: VioConfig,
    ds: &SyntheticDataset,
    rig: &StereoRig,
) -> AblationRow {
    let gt0 = &ds.ground_truth[0];
    let mut filter = Msckf::new(config, ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity));
    let mut imu_idx = 0;
    let mut est = Vec::new();
    let mut gt: Vec<Pose> = Vec::new();
    let mut total = std::time::Duration::ZERO;
    for (k, &cam_t) in ds.camera_times.iter().enumerate() {
        while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= cam_t {
            filter.process_imu(ds.imu[imu_idx]);
            imu_idx += 1;
        }
        let (left, right) = ds.render_frame(rig, k);
        let frame = StereoFrame {
            timestamp: cam_t,
            left: Arc::new(left),
            right: Arc::new(right),
            seq: k as u64,
        };
        let start = Instant::now();
        let out = filter.process_frame(&frame, None);
        total += start.elapsed();
        est.push(out.state.pose);
        gt.push(ds.ground_truth_pose(cam_t));
    }
    AblationRow {
        name,
        ate_cm: absolute_trajectory_error(&est, &gt).expect("non-empty trajectory") * 100.0,
        mean_frame_ms: total.as_secs_f64() * 1e3 / ds.camera_times.len() as f64,
    }
}
fn main() {
    println!("§V-E ablation: VIO accuracy vs per-frame cost");
    println!("(paper: ATE 8.1 cm → 4.9 cm at 1.5× the per-frame execution time;");
    println!(" end-to-end, the cheap setting was sufficient)");
    println!("(setup: feature-rich world, 4× IMU noise so visual corrections");
    println!(" dominate; results averaged over 6 seeds — single sequences are");
    println!(" luck-dominated at these error magnitudes)\n");
    let cam = PinholeCamera::qvga();
    let rig = StereoRig::zed_mini(cam);
    let mut cheap = VioConfig::fast(cam);
    cheap.frontend.max_features = 15;
    cheap.window_size = 4;
    let mut rich = VioConfig::accurate(cam);
    rich.frontend.max_features = 50;
    rich.window_size = 8;

    let seeds = [1u64, 7, 13, 42, 55, 99];
    let mut rows = vec![
        AblationRow { name: "cheap (15 feat, win 4)", ate_cm: 0.0, mean_frame_ms: 0.0 },
        AblationRow { name: "rich (50 feat, win 8)", ate_cm: 0.0, mean_frame_ms: 0.0 },
    ];
    for &seed in &seeds {
        let ds = SyntheticDataset::generate(
            illixr_sensors::trajectory::Trajectory::walking(seed),
            illixr_sensors::world::LandmarkWorld::new(
                700,
                illixr_math::Vec3::new(4.0, 2.5, 4.0),
                seed,
            ),
            illixr_sensors::imu::ImuNoise {
                gyro_noise_density: 4e-3,
                accel_noise_density: 8e-3,
                gyro_bias_walk: 5e-5,
                accel_bias_walk: 4e-4,
            },
            8.0,
            15.0,
            500.0,
            seed,
        );
        for (i, cfg) in [cheap, rich].into_iter().enumerate() {
            let r = run("", cfg, &ds, &rig);
            rows[i].ate_cm += r.ate_cm / seeds.len() as f64;
            rows[i].mean_frame_ms += r.mean_frame_ms / seeds.len() as f64;
        }
    }
    println!("{:<28} {:>14} {:>16}", "config", "mean ATE (cm)", "ms/frame (wall)");
    rule(60);
    for r in &rows {
        println!("{:<28} {:>14.1} {:>16.2}", r.name, r.ate_cm, r.mean_frame_ms);
    }
    let cost_ratio = rows[1].mean_frame_ms / rows[0].mean_frame_ms.max(1e-9);
    let err_ratio = rows[0].ate_cm / rows[1].ate_cm.max(1e-9);
    println!("\nrich costs {cost_ratio:.2}x per frame for {err_ratio:.2}x lower mean error");
    println!("(paper: 1.5x cost for 1.65x lower error — and the system-level insight");
    println!(" that the cheap setting tracked well enough end-to-end holds here too)");
}
