//! Offloading ablation (paper footnote 2 / §V-F: device–edge work
//! partitioning): run VIO locally vs behind modeled network links and
//! measure what the added latency does to pose freshness and tracking
//! error.

use std::sync::Arc;
use std::time::Duration;

use illixr_bench::rule;
use illixr_core::link::LinkProfile;
use illixr_core::plugin::{Plugin, RuntimeBuilder};
use illixr_core::{Clock, SimClock, Time};
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::dataset::SyntheticDataset;
use illixr_sensors::plugins::OfflineImuCameraPlugin;
use illixr_sensors::types::{streams, ImuSample, PoseEstimate, StereoFrame};
use illixr_system::offload::{OffloadLink, OffloadedPlugin};
use illixr_vio::integrator::ImuState;
use illixr_vio::msckf::VioConfig;
use illixr_vio::plugins::{ImuIntegratorPlugin, VioPlugin};

struct Row {
    label: String,
    slow_pose_age_ms: f64,
    fast_err_cm: f64,
}

fn run(link: Option<OffloadLink>, label: &str) -> Row {
    let clock = SimClock::new();
    let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
    let ds = Arc::new(SyntheticDataset::vicon_room_like(42, 6.0));
    let cam = PinholeCamera::qvga();
    let rig = StereoRig::zed_mini(cam);
    let gt0 = &ds.ground_truth[0];
    let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);

    let mut source = OfflineImuCameraPlugin::new(ds.clone(), rig);
    let vio = VioPlugin::new(VioConfig::fast(cam), init);
    let mut vio: Box<dyn Plugin> = match link {
        Some(link) => Box::new(
            OffloadedPlugin::new(Box::new(vio), link)
                .uplink::<StereoFrame>(streams::CAMERA)
                .uplink::<ImuSample>(streams::IMU)
                .downlink::<PoseEstimate>(streams::SLOW_POSE),
        ),
        None => Box::new(vio),
    };
    let mut integ = ImuIntegratorPlugin::new(init);
    source.start(&ctx);
    vio.start(&ctx);
    integ.start(&ctx);
    let slow =
        ctx.switchboard.topic::<PoseEstimate>(streams::SLOW_POSE).expect("stream").async_reader();
    let fast =
        ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").async_reader();

    let mut age_sum = 0.0;
    let mut age_n = 0;
    let mut err_sum = 0.0;
    let mut err_n = 0;
    // Tick at the IMU-integrator cadence scaled to 10 ms for speed.
    let steps = 600;
    for k in 1..steps {
        clock.advance_to(Time::from_millis(k * 10));
        source.iterate(&ctx);
        vio.iterate(&ctx);
        integ.iterate(&ctx);
        if k > 30 {
            if let Some(p) = slow.latest() {
                age_sum += (clock.now() - p.timestamp).as_secs_f64() * 1e3;
                age_n += 1;
            }
            if let Some(p) = fast.latest() {
                let truth = ds.ground_truth_pose(p.timestamp);
                err_sum += p.pose.translation_distance(&truth) * 100.0;
                err_n += 1;
            }
        }
    }
    Row {
        label: label.to_owned(),
        slow_pose_age_ms: age_sum / age_n.max(1) as f64,
        fast_err_cm: err_sum / err_n.max(1) as f64,
    }
}

fn main() {
    println!("Offloading ablation: VIO local vs on an edge server (§V-F)");
    println!("(the perception pipeline is unchanged — only the VIO plugin moves");
    println!(" behind a network link; the IMU integrator keeps compensating)\n");
    // The edge rows use the shared [`LinkProfile`] presets (propagation
    // latency and jitter; the point-to-point pipe models no bandwidth);
    // the last row keeps a custom far-cloud link built directly.
    let rows = vec![
        run(None, "local"),
        run(Some(OffloadLink::from_profile(LinkProfile::lan(), 7)), "edge, lan"),
        run(Some(OffloadLink::from_profile(LinkProfile::wifi(), 7)), "edge, wifi"),
        run(Some(OffloadLink::from_profile(LinkProfile::cellular_5g(), 7)), "edge, cellular_5g"),
        run(
            Some(OffloadLink::symmetric(Duration::from_millis(60)).with_jitter(0.3, 7)),
            "cloud, 120 ms RTT + jitter",
        ),
    ];
    println!("{:<28} {:>18} {:>16}", "placement", "slow-pose age (ms)", "fast err (cm)");
    rule(64);
    for r in &rows {
        println!("{:<28} {:>18.1} {:>16.1}", r.label, r.slow_pose_age_ms, r.fast_err_cm);
    }
    println!("\nThe integrator hides moderate link latency (fast-pose error grows");
    println!("slowly), while the slow-pose age grows with the RTT — the trade space");
    println!("device–edge partitioning research explores.");
}
