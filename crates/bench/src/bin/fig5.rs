//! Fig 5: contribution of each component to total CPU time, per
//! application and platform.

use illixr_bench::{experiment_config, rule, write_obs_artifacts};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{IntegratedExperiment, COMPONENTS};

fn main() {
    println!("Fig 5: share of total CPU cycles per component (%)");
    println!("(paper: VIO and the application dominate, reprojection < 10 %, IMU-side");
    println!(" components gain share on the constrained Jetsons)\n");
    for platform in Platform::ALL {
        println!("=== {platform} ===");
        print!("{:<16}", "component");
        for app in Application::ALL {
            print!(" {:>11}", app.label());
        }
        println!();
        rule(16 + 12 * 4);
        let shares: Vec<Vec<(String, f64)>> = Application::ALL
            .iter()
            .map(|&app| {
                // One representative run carries the trace export.
                let mut cfg = experiment_config(app, platform);
                cfg.trace = platform == Platform::Desktop && app == Application::Platformer;
                let result = IntegratedExperiment::run(&cfg);
                if cfg.trace {
                    std::fs::create_dir_all("results").expect("create results dir");
                    write_obs_artifacts("fig5", &result.tracer, &result.metrics)
                        .expect("write obs artifacts");
                }
                result.cpu_shares()
            })
            .collect();
        for name in COMPONENTS {
            print!("{name:<16}");
            for app_shares in &shares {
                let v = app_shares
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, s)| *s * 100.0)
                    .unwrap_or(0.0);
                print!(" {v:>10.1}%");
            }
            println!();
        }
        println!();
    }
}
