//! Fig 3: average frame rate for each component, per application and
//! platform, against the Table III targets.

use illixr_bench::{experiment_config, rule};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::IntegratedExperiment;

fn main() {
    let targets: [(&str, f64); 8] = [
        ("camera", 15.0),
        ("vio", 15.0),
        ("imu", 500.0),
        ("imu_integrator", 500.0),
        ("application", 120.0),
        ("timewarp", 120.0),
        ("audio_playback", 48.0),
        ("audio_encoding", 48.0),
    ];
    println!("Fig 3: average component frame rates (Hz); target in [brackets]");
    println!("(paper: Fig 3a–c — desktop meets nearly all targets, Jetson-HP degrades the");
    println!(" visual pipeline, Jetson-LP misses everything except audio)");
    for platform in Platform::ALL {
        println!("\n=== {platform} ===");
        print!("{:<16}", "component");
        for app in Application::ALL {
            print!(" {:>12}", app.label());
        }
        println!();
        rule(16 + 13 * 4);
        let results: Vec<_> = Application::ALL
            .iter()
            .map(|&app| IntegratedExperiment::run(&experiment_config(app, platform)))
            .collect();
        for (name, target) in targets {
            print!("{:<16}", format!("{name} [{target:.0}]"));
            for r in &results {
                let hz = r.stats(name).map(|s| s.achieved_hz).unwrap_or(0.0);
                print!(" {hz:>12.1}");
            }
            println!();
        }
    }
}
