//! Record/replay determinism study plus trace-driven load generation.
//!
//! Three parts:
//!
//! 1. **Record** a fig4-style integrated run (Platformer/desktop, obs
//!    on) with the determinism boundary captured;
//! 2. **Replay** it — under a *different* config seed — and check bit
//!    identity of the re-recorded trace, the Perfetto trace JSON and
//!    the metrics CSV (printing the first divergence if any);
//! 3. **Fan out** a recorded one-session server run to {1, 16, 64}
//!    synthetic sessions with deterministic per-session phase jitter
//!    and time dilation, reporting aggregate throughput
//!    (sessions × frames/s) and per-session MTP, then rerun the
//!    64-session point and check the reports match byte for byte.
//!
//! Usage: `cargo run --release -p illixr-bench --bin trace_replay`
//! (`--quick` caps runs at 2 simulated seconds for CI; honours
//! `ILLIXR_SECONDS` otherwise; `--write-fixture <path>` also saves the
//! recorded integrated-run trace as a binary fixture; writes
//! `results/trace_replay.txt`).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use illixr_bench::cli::BenchArgs;
use illixr_bench::{rule, sim_duration};
use illixr_core::boundary::{Boundary, TraceSource};
use illixr_core::obs::{chrome_trace_json, metrics_csv};
use illixr_platform::spec::Platform;
use illixr_render::apps::Application;
use illixr_server::server::ReplayLoad;
use illixr_server::ServerBuilder;
use illixr_system::experiment::{ExperimentConfig, IntegratedExperiment};

const FAN_OUTS: [usize; 3] = [1, 16, 64];

/// The fig4-style recording configuration. `tests/trace_golden.rs`
/// replays the committed fixture under this exact shape (2 s), so keep
/// the two in sync.
fn fig4_config(duration: Duration) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Application::Platformer, Platform::Desktop)
        .with_trace()
        .with_boundary_record();
    cfg.duration = duration;
    cfg
}

fn main() -> std::io::Result<()> {
    let args = BenchArgs::parse();
    let fixture_path = args.write_fixture().map(str::to_string);
    let replay_seed = args.seed().unwrap_or(42);
    let duration = if args.quick() { Duration::from_secs(2) } else { sim_duration() };
    let mut out = String::new();
    writeln!(out, "# Record/replay determinism + trace-driven load ({}s)", duration.as_secs())
        .unwrap();

    // --- 1. Record the fig4-style run -------------------------------
    println!("recording fig4-style run ({duration:?})...");
    let recorded = IntegratedExperiment::run(&fig4_config(duration));
    let trace = recorded.boundary_trace.clone().expect("recording enabled");
    writeln!(
        out,
        "recorded: streams={} records={} bytes={}",
        trace.streams.len(),
        trace.record_count(),
        trace.encode().len(),
    )
    .unwrap();
    if let Some(path) = &fixture_path {
        std::fs::write(path, trace.encode())?;
        println!("wrote fixture {path}");
    }

    // --- 2. Replay it and check bit identity -------------------------
    println!("replaying under a different config seed...");
    let mut replay_cfg =
        fig4_config(duration).with_trace_source(TraceSource::new(Arc::new(trace.clone())));
    replay_cfg.seed ^= 0x5EED_D1FF;
    let replayed = IntegratedExperiment::run(&replay_cfg);
    let rerec = replayed.boundary_trace.clone().expect("re-recording enabled");
    let trace_ok = rerec.encode() == trace.encode();
    let obs_ok = chrome_trace_json(&replayed.tracer) == chrome_trace_json(&recorded.tracer);
    let csv_ok = metrics_csv(&replayed.metrics) == metrics_csv(&recorded.metrics);
    let identity = trace_ok && obs_ok && csv_ok;
    writeln!(out, "replay: trace_ok={trace_ok} obs_ok={obs_ok} metrics_ok={csv_ok}").unwrap();
    if !trace_ok {
        let report = Boundary::divergence_report(&trace, &rerec, &replayed.stream_stats);
        eprintln!("{report}");
        out.push_str(&report);
    }

    // --- 3. Trace-driven fan-out against the server -------------------
    println!("recording one-session server run...");
    let server_trace = Arc::new(
        ServerBuilder::new()
            .sessions(1)
            .duration(duration)
            .real_vio(true)
            .record_boundary(true)
            .build()
            .run()
            .boundary_trace
            .expect("recorded"),
    );
    writeln!(
        out,
        "server trace: streams={} records={} bytes={}",
        server_trace.streams.len(),
        server_trace.record_count(),
        server_trace.encode().len(),
    )
    .unwrap();

    writeln!(
        out,
        "\n{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "sessions", "agg_fps", "mtp_mean_ms", "mtp_p99_ms", "drop_rate", "admitted"
    )
    .unwrap();
    rule(72);
    let fan_run = |n: usize| {
        ServerBuilder::new()
            .sessions(n)
            .duration(duration)
            .real_vio(true)
            .tune(|cfg| {
                cfg.admission.degrade_threshold = 10.0; // full load, no shaping
                cfg.admission.reject_threshold = 10.0;
            })
            .replay(ReplayLoad::fan_out(
                server_trace.clone(),
                replay_seed,
                Duration::from_millis(40),
                0.05,
            ))
            .build()
    };
    let mut last_summary = String::new();
    for &n in &FAN_OUTS {
        let report = fan_run(n).run();
        let agg_fps = report.aggregate_fps();
        let row = format!(
            "{:>8} {:>12.1} {:>12.3} {:>12.3} {:>12.4} {:>10}",
            n,
            agg_fps,
            report.mean_mtp().as_secs_f64() * 1e3,
            report.p99_mtp().as_secs_f64() * 1e3,
            report.drop_rate(),
            report.admitted(),
        );
        println!("{row}");
        writeln!(out, "{row}").unwrap();
        if n == *FAN_OUTS.last().unwrap() {
            last_summary = report.summary_text();
            writeln!(out, "\n## per-session MTP at fan-out {n}").unwrap();
            for s in report.sessions() {
                let mtp = s.mtp();
                writeln!(
                    out,
                    "session {:>2}: mtp_mean_ms={:.3} mtp_p99_ms={:.3} displayed={}",
                    s.id(),
                    mtp.mean.as_secs_f64() * 1e3,
                    mtp.p99.as_secs_f64() * 1e3,
                    mtp.displayed,
                )
                .unwrap();
            }
        }
    }

    // Rerun the widest fan-out: byte-identical report or bust.
    println!("re-running {}-session fan-out for determinism...", FAN_OUTS.last().unwrap());
    let rerun = fan_run(*FAN_OUTS.last().unwrap()).run().summary_text();
    let fan_out_deterministic = rerun == last_summary;

    writeln!(out, "\nreplay_identity={identity}").unwrap();
    writeln!(out, "fan_out_deterministic={fan_out_deterministic}").unwrap();
    rule(72);
    println!("replay identity: {identity}");
    println!("fan-out deterministic: {fan_out_deterministic}");
    if !identity || !fan_out_deterministic {
        eprintln!("WARNING: determinism claim failed — see results/trace_replay.txt");
    }

    std::fs::create_dir_all("results")?;
    std::fs::write("results/trace_replay.txt", &out)?;
    println!("wrote results/trace_replay.txt");
    Ok(())
}
