//! Shared command-line parsing for the bench binaries.
//!
//! Every figure/table binary accepts the same small flag vocabulary —
//! `--quick` (CI-sized runs), `--trace <path>` (drive server sessions
//! from a recorded boundary trace), `--seed <n>`, `--sessions <n>`,
//! `--shards <n>`, `--write-fixture <path>` — parsed here once so the
//! binaries agree on spelling, precedence and error messages instead
//! of each re-implementing `std::env::args()` scans.

use std::sync::Arc;

use illixr_core::boundary::Trace;

/// Parsed bench-harness arguments. Construct with [`BenchArgs::parse`]
/// (reads the process arguments) or [`BenchArgs::from_vec`] (tests).
pub struct BenchArgs {
    args: Vec<String>,
}

impl BenchArgs {
    /// Parses the process command line (program name skipped).
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Builds from an explicit argument vector.
    pub fn from_vec(args: Vec<String>) -> Self {
        Self { args }
    }

    /// True when the bare flag `name` (e.g. `"--quick"`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The operand following `name`, if the flag is present. Panics
    /// with a usage message when the flag is given without a value.
    pub fn value(&self, name: &str) -> Option<&str> {
        let i = self.args.iter().position(|a| a == name)?;
        match self.args.get(i + 1) {
            Some(v) => Some(v.as_str()),
            None => panic!("{name} requires a value"),
        }
    }

    /// Parsed numeric operand of `name`.
    fn parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.value(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} {v}: not a valid number")))
    }

    /// `--quick`: CI-sized run (each binary documents its own cap).
    pub fn quick(&self) -> bool {
        self.flag("--quick")
    }

    /// `--seed <n>`: RNG seed override for replay transforms.
    pub fn seed(&self) -> Option<u64> {
        self.parsed("--seed")
    }

    /// `--sessions <n>`: session-count override for the server sweeps.
    pub fn sessions(&self) -> Option<usize> {
        self.parsed("--sessions")
    }

    /// `--shards <n>`: engine shard-count override (results are
    /// invariant to it; useful for perf experiments).
    pub fn shards(&self) -> Option<usize> {
        self.parsed("--shards")
    }

    /// `--write-fixture <path>`: where to save a recorded trace.
    pub fn write_fixture(&self) -> Option<&str> {
        self.value("--write-fixture")
    }

    /// `--trace <path>`: reads and decodes the boundary trace at
    /// `path`, panicking with the offending path on I/O or decode
    /// errors (a bench with a bad fixture should fail loudly).
    pub fn trace(&self) -> Option<Arc<Trace>> {
        let path = self.value("--trace")?;
        let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let trace = Trace::decode(&bytes).unwrap_or_else(|e| panic!("decoding {path}: {e}"));
        Some(Arc::new(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> BenchArgs {
        BenchArgs::from_vec(v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_and_values_parse() {
        let a = args(&["--quick", "--sessions", "256", "--seed", "42", "--shards", "7"]);
        assert!(a.quick());
        assert_eq!(a.sessions(), Some(256));
        assert_eq!(a.seed(), Some(42));
        assert_eq!(a.shards(), Some(7));
        assert_eq!(a.value("--trace"), None);
    }

    #[test]
    fn absent_flags_are_none() {
        let a = args(&[]);
        assert!(!a.quick());
        assert_eq!(a.sessions(), None);
        assert_eq!(a.seed(), None);
        assert!(a.trace().is_none());
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn missing_value_panics() {
        args(&["--sessions"]).sessions();
    }

    #[test]
    #[should_panic(expected = "not a valid number")]
    fn bad_number_panics() {
        args(&["--sessions", "many"]).sessions();
    }
}
