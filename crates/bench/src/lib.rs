//! The benchmark harness: one binary per figure and table of the
//! paper's evaluation (§IV), plus Criterion micro-benches per component.
//!
//! | target | regenerates |
//! |---|---|
//! | `fig3` | component frame rates × apps × platforms |
//! | `fig4` | per-frame execution-time series, Platformer/desktop |
//! | `fig5` | CPU-cycle share breakdown |
//! | `fig6` | total power + power-rail breakdown |
//! | `fig7` | per-frame MTP series, Platformer, all platforms |
//! | `fig8` | IPC + top-down cycle breakdown per component |
//! | `table3` | tuned system parameters |
//! | `table4` | MTP mean ± std |
//! | `table5` | SSIM / 1−FLIP, Sponza, all platforms |
//! | `table6` | VIO + scene-reconstruction task breakdown |
//! | `table7` | visual + audio pipeline task breakdown |
//! | `ablation_vio` | §V-E accuracy/performance trade-off |
//!
//! Run everything with `cargo run -p illixr-bench --release --bin <target>`.

use illixr_platform::uarch::OpMix;

pub mod cli;

/// Hand-derived operation-mix profiles for the Fig 8 analysis, one per
/// component, reflecting the actual Rust implementations in this
/// workspace (see `illixr-platform::uarch` for the model).
pub fn component_op_mixes() -> Vec<(&'static str, OpMix)> {
    vec![
        (
            // Vectorizable linear algebra + stencils; several-hundred-KiB
            // working set; effective prefetching (paper: IPC 2.2).
            "VIO",
            OpMix {
                int_ops: 0.17,
                fp_ops: 0.36,
                div_ops: 0.004,
                transcendental_ops: 0.002,
                loads: 0.26,
                stores: 0.09,
                branches: 0.114,
                vectorization: 0.55,
                working_set_kib: 600.0,
                instruction_kib: 26.0,
                branch_miss_rate: 0.012,
                prefetch_coverage: 0.9,
            },
        ),
        (
            // Convolution-dominated DNN; activations stream from DRAM
            // (1922 MiB touched per pass in the paper) but accesses are
            // regular.
            "Eye Tracking",
            OpMix {
                int_ops: 0.12,
                fp_ops: 0.48,
                div_ops: 0.0,
                transcendental_ops: 0.0,
                loads: 0.27,
                stores: 0.08,
                branches: 0.05,
                vectorization: 0.85,
                working_set_kib: 60_000.0,
                instruction_kib: 12.0,
                branch_miss_rate: 0.002,
                prefetch_coverage: 0.85,
            },
        ),
        (
            // Memory-bandwidth-bound hybrid workload (200–400 GB/s in
            // the paper); mixed reuse.
            "Scene Reconst.",
            OpMix {
                int_ops: 0.20,
                fp_ops: 0.30,
                div_ops: 0.003,
                transcendental_ops: 0.0,
                loads: 0.30,
                stores: 0.10,
                branches: 0.097,
                vectorization: 0.4,
                working_set_kib: 150_000.0,
                instruction_kib: 30.0,
                branch_miss_rate: 0.015,
                prefetch_coverage: 0.55,
            },
        ),
        (
            // Driver-dominated: huge instruction footprint, frontend
            // stalls (paper: IPC 0.3, mostly frontend-bound).
            "Reproj.",
            OpMix {
                int_ops: 0.33,
                fp_ops: 0.06,
                div_ops: 0.0,
                transcendental_ops: 0.0,
                loads: 0.29,
                stores: 0.12,
                branches: 0.20,
                vectorization: 0.0,
                working_set_kib: 8_000.0,
                instruction_kib: 1_024.0,
                branch_miss_rate: 0.05,
                prefetch_coverage: 0.3,
            },
        ),
        (
            // Transcendental-heavy FMA pipeline (GPU in the paper; the
            // CPU-model view shows the same compute-bound shape).
            "Hologram",
            OpMix {
                int_ops: 0.12,
                fp_ops: 0.50,
                div_ops: 0.0,
                transcendental_ops: 0.06,
                loads: 0.18,
                stores: 0.08,
                branches: 0.06,
                vectorization: 0.8,
                working_set_kib: 2_000.0,
                instruction_kib: 10.0,
                branch_miss_rate: 0.003,
                prefetch_coverage: 0.9,
            },
        ),
        (
            // Vectorized dense math bottlenecked by the single hardware
            // divider (paper: IPC 2.5, 69 % retiring).
            "Audio Encoding",
            OpMix {
                int_ops: 0.18,
                fp_ops: 0.42,
                div_ops: 0.01,
                transcendental_ops: 0.0,
                loads: 0.22,
                stores: 0.10,
                branches: 0.065,
                vectorization: 0.75,
                working_set_kib: 80.0,
                instruction_kib: 10.0,
                branch_miss_rate: 0.004,
                prefetch_coverage: 0.8,
            },
        ),
        (
            // FFT + FMADD, 64-KiB soundfield resident in L2, no division
            // (paper: IPC 3.5, 86 % retiring).
            "Audio Playback",
            OpMix {
                int_ops: 0.16,
                fp_ops: 0.46,
                div_ops: 0.0,
                transcendental_ops: 0.0,
                loads: 0.22,
                stores: 0.09,
                branches: 0.07,
                vectorization: 0.95,
                working_set_kib: 64.0,
                instruction_kib: 8.0,
                branch_miss_rate: 0.003,
                prefetch_coverage: 0.9,
            },
        ),
    ]
}

/// Prints a horizontal rule for the harness tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Simulated duration for the integrated experiments: the paper runs
/// ≈ 30 s; the harness defaults to 10 s to keep regeneration quick and
/// honours `ILLIXR_SECONDS` for full-length runs.
pub fn sim_duration() -> std::time::Duration {
    let secs = std::env::var("ILLIXR_SECONDS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(10.0)
        .clamp(1.0, 600.0);
    std::time::Duration::from_secs_f64(secs)
}

/// Standard experiment config for a figure run.
pub fn experiment_config(
    app: illixr_render::apps::Application,
    platform: illixr_platform::spec::Platform,
) -> illixr_system::experiment::ExperimentConfig {
    let mut cfg = illixr_system::experiment::ExperimentConfig::paper(app, platform);
    cfg.duration = sim_duration();
    cfg
}

/// Writes `results/<stem>.trace.json` + `results/<stem>.metrics.csv`
/// from a run's observability handles and announces the paths. Open
/// the trace in <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn write_obs_artifacts(
    stem: &str,
    tracer: &illixr_core::obs::Tracer,
    metrics: &illixr_core::obs::Metrics,
) -> std::io::Result<()> {
    let (trace, csv) =
        illixr_core::obs::write_artifacts(std::path::Path::new("results"), stem, tracer, metrics)?;
    println!("wrote {} ({} spans)", trace.display(), tracer.spans().len());
    println!("wrote {}", csv.display());
    Ok(())
}

/// Renders the per-stage motion-to-photon decomposition recorded under
/// `mtp.*` histogram names: one line per stage plus a closure check
/// that the stage means sum to the end-to-end mean (they partition it
/// frame by frame, so the relative gap should be ≈ 0).
pub fn mtp_stage_summary(metrics: &illixr_core::obs::Metrics) -> String {
    let mut out = String::new();
    let snapshots = metrics.snapshots();
    let stages: Vec<_> =
        snapshots.iter().filter(|(n, _)| n.starts_with("mtp.") && n != "mtp.total").collect();
    let Some((_, total)) = snapshots.iter().find(|(n, _)| n == "mtp.total") else {
        return out;
    };
    out.push_str("mtp stage decomposition (per displayed frame):\n");
    let mut stage_mean_sum = 0.0;
    for (name, h) in &stages {
        let mean_ms = h.mean_ns() as f64 / 1e6;
        stage_mean_sum += h.sum_ns as f64 / h.count.max(1) as f64;
        out.push_str(&format!(
            "  {:<18} mean={:>8.3} ms  p50={:>8.3} p90={:>8.3} p99={:>8.3} max={:>8.3}\n",
            name,
            mean_ms,
            h.p50_ns as f64 / 1e6,
            h.p90_ns as f64 / 1e6,
            h.p99_ns as f64 / 1e6,
            h.max_ns as f64 / 1e6,
        ));
    }
    let total_mean = total.sum_ns as f64 / total.count.max(1) as f64;
    let gap = if total_mean > 0.0 { (stage_mean_sum - total_mean).abs() / total_mean } else { 0.0 };
    out.push_str(&format!(
        "  {:<18} mean={:>8.3} ms  (stage sum {:.3} ms, relative gap {:.5})\n",
        "mtp.total",
        total_mean / 1e6,
        stage_mean_sum / 1e6,
        gap,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_platform::uarch::UarchModel;

    #[test]
    fn op_mix_ipc_spread_matches_fig8() {
        let model = UarchModel::new();
        let mixes = component_op_mixes();
        let ipc = |name: &str| {
            let mix = &mixes.iter().find(|(n, _)| *n == name).unwrap().1;
            model.evaluate(mix).ipc
        };
        // Paper Fig 8 shape: reprojection lowest (≈0.3), audio playback
        // highest (≈3.5), VIO in between (≈2.2).
        assert!(ipc("Reproj.") < 1.0, "reprojection ipc {}", ipc("Reproj."));
        assert!(ipc("Audio Playback") > 3.0, "playback ipc {}", ipc("Audio Playback"));
        assert!(ipc("Audio Playback") > ipc("Audio Encoding"));
        let vio = ipc("VIO");
        assert!((1.6..3.0).contains(&vio), "vio ipc {vio}");
        assert!(ipc("Scene Reconst.") < ipc("VIO"));
    }

    #[test]
    fn all_components_present() {
        let names: Vec<&str> = component_op_mixes().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "VIO",
                "Eye Tracking",
                "Scene Reconst.",
                "Reproj.",
                "Hologram",
                "Audio Encoding",
                "Audio Playback"
            ]
        );
    }
}
