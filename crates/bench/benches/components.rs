//! Criterion micro-benchmarks for the individual ILLIXR-rs components —
//! the per-kernel counterpart of the figure/table harness binaries.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use illixr_audio::ambisonics::encode_block;
use illixr_audio::binaural::{default_ring_bank, psychoacoustic_filter, BinauralDecoder};
use illixr_dsp::fft::fft_in_place;
use illixr_dsp::Complex;
use illixr_eyetrack::eye::{render_eye, EyeParams};
use illixr_eyetrack::net::SegmentationNet;
use illixr_image::{flip, ssim, GrayImage, RgbImage};
use illixr_math::DMatrix;
use illixr_math::{Pose, Quat, Vec3};
use illixr_reconstruction::maps::{normal_map, preprocess_depth, vertex_map};
use illixr_reconstruction::tsdf::TsdfVolume;
use illixr_render::apps::Application;
use illixr_render::raster::Rasterizer;
use illixr_sensors::camera::{PinholeCamera, StereoRig};
use illixr_sensors::dataset::SyntheticDataset;
use illixr_sensors::types::StereoFrame;
use illixr_vio::fast::detect_fast;
use illixr_vio::integrator::{propagate, ImuState, Scheme};
use illixr_vio::klt::{track_points, KltParams};
use illixr_vio::msckf::{Msckf, VioConfig};
use illixr_visual::distortion::{DistortionMesh, DistortionParams};
use illixr_visual::hologram::{compute_hologram, HologramConfig};
use illixr_visual::reprojection::{reproject, ReprojectionConfig};

fn bench_dsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp");
    group.bench_function("fft_1024", |b| {
        let signal: Vec<Complex> =
            (0..1024).map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0)).collect();
        b.iter(|| {
            let mut buf = signal.clone();
            fft_in_place(&mut buf);
            buf
        });
    });
    group.finish();
}

fn bench_vio(c: &mut Criterion) {
    let mut group = c.benchmark_group("vio");
    group.sample_size(20);
    let ds = SyntheticDataset::vicon_room_like(1, 3.0);
    let rig = StereoRig::zed_mini(PinholeCamera::qvga());
    let (left, _right) = ds.render_frame(&rig, 10);

    group.bench_function("fast_detect_qvga", |b| {
        b.iter(|| detect_fast(&left, 0.12, 60, 24));
    });

    group.bench_function("imu_propagate_rk4_66ms", |b| {
        let gt0 = &ds.ground_truth[0];
        let init = ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity);
        let window = &ds.imu[0..34];
        b.iter(|| propagate(&init, window, Scheme::Rk4));
    });

    group.bench_function("msckf_frame_qvga", |b| {
        b.iter_batched(
            || {
                let gt0 = &ds.ground_truth[0];
                let mut filter = Msckf::new(
                    VioConfig::fast(PinholeCamera::qvga()),
                    ImuState::from_pose(gt0.timestamp, gt0.pose, gt0.velocity),
                );
                // Warm up: 3 frames to populate tracks and clones.
                let mut imu_idx = 0;
                for k in 0..3 {
                    let t = ds.camera_times[k];
                    while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= t {
                        filter.process_imu(ds.imu[imu_idx]);
                        imu_idx += 1;
                    }
                    let (l, r) = ds.render_frame(&rig, k);
                    filter.process_frame(
                        &StereoFrame {
                            timestamp: t,
                            left: Arc::new(l),
                            right: Arc::new(r),
                            seq: k as u64,
                        },
                        None,
                    );
                }
                let t = ds.camera_times[3];
                while imu_idx < ds.imu.len() && ds.imu[imu_idx].timestamp <= t {
                    filter.process_imu(ds.imu[imu_idx]);
                    imu_idx += 1;
                }
                let (l, r) = ds.render_frame(&rig, 3);
                (
                    filter,
                    StereoFrame { timestamp: t, left: Arc::new(l), right: Arc::new(r), seq: 3 },
                )
            },
            |(mut filter, frame)| filter.process_frame(&frame, None),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("math");
    let a = DMatrix::from_fn(40, 40, |r, c2| ((r * 7 + c2 * 3) % 13) as f64 - 6.0);
    let spd = {
        let mut m = a.mul_transpose(&a);
        for i in 0..40 {
            m[(i, i)] += 40.0;
        }
        m
    };
    group.bench_function("cholesky_solve_40", |b| {
        let rhs = DMatrix::from_fn(40, 1, |r, _| r as f64);
        b.iter(|| illixr_math::Cholesky::new(&spd).unwrap().solve(&rhs));
    });
    group.bench_function("qr_40x20", |b| {
        let tall = DMatrix::from_fn(40, 20, |r, c2| (r as f64 * 0.3 - c2 as f64).sin());
        b.iter(|| illixr_math::Qr::new(&tall).unwrap().r());
    });
    group.bench_function("svd_20x10", |b| {
        let m = DMatrix::from_fn(20, 10, |r, c2| ((r + 2 * c2) % 7) as f64 - 3.0);
        b.iter(|| illixr_math::Svd::new(&m).unwrap().sigma.clone());
    });
    group.finish();
}

fn bench_perception_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("perception_kernels");
    group.sample_size(20);
    let ds = SyntheticDataset::vicon_room_like(2, 1.0);
    let rig = StereoRig::zed_mini(PinholeCamera::qvga());
    let (left, right) = ds.render_frame(&rig, 3);
    let (left2, _) = ds.render_frame(&rig, 4);
    group.bench_function("klt_track_40pts_qvga", |b| {
        let corners = detect_fast(&left, 0.12, 40, 24);
        let points: Vec<illixr_math::Vec2> =
            corners.iter().map(|c2| illixr_math::Vec2::new(c2.x as f64, c2.y as f64)).collect();
        b.iter(|| track_points(&left, &left2, &points, None, &KltParams::default()));
    });
    let _ = right;
    let depth_cam = PinholeCamera { fx: 95.0, fy: 95.0, cx: 48.0, cy: 36.0, width: 96, height: 72 };
    let depth_rig = StereoRig::zed_mini(depth_cam);
    let world = illixr_sensors::world::LandmarkWorld::lab(2);
    let depth = world.render_depth(&depth_rig, &illixr_math::Pose::IDENTITY);
    group.bench_function("bilateral_depth_96x72", |b| {
        b.iter(|| preprocess_depth(&depth));
    });
    group.bench_function("vertex_normal_maps_96x72", |b| {
        b.iter(|| {
            let v = vertex_map(&depth, &depth_cam);
            normal_map(&v, depth_cam.width, depth_cam.height)
        });
    });
    group.bench_function("tsdf_integrate_32cube", |b| {
        b.iter_batched(
            || TsdfVolume::new([32; 3], 0.25, illixr_math::Vec3::splat(-4.0)),
            |mut vol| {
                vol.integrate(&depth, &depth_cam, &illixr_math::Pose::IDENTITY);
                vol
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("eyetrack_cnn_forward_96x64", |b| {
        let net = SegmentationNet::new();
        let img = render_eye(&EyeParams::default());
        b.iter(|| net.segment(&img));
    });
    group.finish();
}

fn bench_visual(c: &mut Criterion) {
    let mut group = c.benchmark_group("visual");
    group.sample_size(30);
    let img =
        RgbImage::from_fn(256, 256, |x, y| [(x % 31) as f32 / 31.0, (y % 17) as f32 / 17.0, 0.5]);
    let cfg = ReprojectionConfig::rotational(1.57, 1.0);
    let display = Pose::new(Vec3::ZERO, Quat::from_axis_angle(Vec3::UNIT_Y, 0.03));
    group.bench_function("reproject_256", |b| {
        b.iter(|| reproject(&img, &Pose::IDENTITY, &display, &cfg));
    });
    let mesh = DistortionMesh::new(&DistortionParams::default());
    group.bench_function("distortion_chromatic_256", |b| {
        b.iter(|| mesh.apply(&img));
    });
    let holo_cfg = HologramConfig { iterations: 3, ..Default::default() };
    let target =
        GrayImage::from_fn(holo_cfg.width, holo_cfg.height, |x, y| ((x / 8 + y / 8) % 2) as f32);
    group.bench_function("hologram_64_2planes_3iter", |b| {
        b.iter(|| compute_hologram(&[target.clone(), target.clone()], &holo_cfg, None));
    });
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("render");
    group.sample_size(20);
    for app in [Application::Sponza, Application::ArDemo] {
        let mut scene = app.build(1);
        scene.animate_to(0.5);
        let eye = Pose::new(Vec3::new(0.0, 1.6, 4.0), Quat::IDENTITY);
        group.bench_function(format!("raster_96_{}", app.label().replace(' ', "_")), |b| {
            let mut raster = Rasterizer::new(96, 96);
            b.iter(|| scene.render(&mut raster, &eye, 1.57, 1.0));
        });
    }
    group.finish();
}

fn bench_audio(c: &mut Criterion) {
    let mut group = c.benchmark_group("audio");
    let mono: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.05).sin() * 0.5).collect();
    group.bench_function("hoa_encode_1024", |b| {
        b.iter(|| encode_block(&mono, 0.7, 0.1));
    });
    let field = encode_block(&mono, 0.7, 0.1);
    group.bench_function("psychoacoustic_1024", |b| {
        b.iter(|| psychoacoustic_filter(&field, 48_000.0));
    });
    group.bench_function("binaural_block_1024", |b| {
        let bank = default_ring_bank(48_000.0);
        let mut decoder = BinauralDecoder::new(&bank, 1024);
        b.iter(|| decoder.process(&field));
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("image_quality");
    group.sample_size(20);
    let a = GrayImage::from_fn(96, 96, |x, y| ((x * y) % 97) as f32 / 97.0);
    let b_img = a.map(|v| (v + 0.05).min(1.0));
    group.bench_function("ssim_96", |bch| {
        bch.iter(|| ssim(&a, &b_img));
    });
    let ra = RgbImage::from_fn(96, 96, |x, y| [x as f32 / 96.0, y as f32 / 96.0, 0.4]);
    let rb = RgbImage::from_fn(96, 96, |x, y| [x as f32 / 96.0, y as f32 / 90.0, 0.45]);
    group.bench_function("flip_96", |bch| {
        bch.iter(|| flip(&ra, &rb));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dsp,
    bench_math,
    bench_vio,
    bench_perception_kernels,
    bench_visual,
    bench_render,
    bench_audio,
    bench_metrics
);
criterion_main!(benches);
