//! Single-channel floating-point images.

use core::fmt;

/// A grayscale image with `f32` pixels, row-major.
///
/// Pixel values are nominally in `[0, 1]` but the container does not
/// enforce a range (intermediate results of filters may exceed it).
///
/// # Examples
///
/// ```
/// use illixr_image::GrayImage;
/// let img = GrayImage::from_fn(4, 4, |x, y| (x * y) as f32);
/// assert_eq!(img.get(2, 3), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Self { width, height, data: vec![0.0; width * height] }
    }

    /// Creates an image by evaluating `f(x, y)` per pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Creates an image from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "pixel buffer size mismatch");
        Self { width, height, data }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw pixel slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Returns the pixel at `(x, y)` clamping coordinates to the border.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Bilinear sample at floating-point coordinates (border-clamped).
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let (xi, yi) = (x0 as isize, y0 as isize);
        let p00 = self.get_clamped(xi, yi);
        let p10 = self.get_clamped(xi + 1, yi);
        let p01 = self.get_clamped(xi, yi + 1);
        let p11 = self.get_clamped(xi + 1, yi + 1);
        p00 * (1.0 - fx) * (1.0 - fy)
            + p10 * fx * (1.0 - fy)
            + p01 * (1.0 - fx) * fy
            + p11 * fx * fy
    }

    /// Half-resolution downsample by 2×2 box averaging.
    pub fn downsample_2x(&self) -> Self {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        Self::from_fn(w, h, |x, y| {
            let (x2, y2) = (2 * x, 2 * y);
            let a = self.get_clamped(x2 as isize, y2 as isize);
            let b = self.get_clamped(x2 as isize + 1, y2 as isize);
            let c = self.get_clamped(x2 as isize, y2 as isize + 1);
            let d = self.get_clamped(x2 as isize + 1, y2 as isize + 1);
            (a + b + c + d) * 0.25
        })
    }

    /// Mean pixel value (0 for empty images).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Applies `f` to every pixel, returning a new image.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Mean absolute difference with another image of identical size.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn mean_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!((self.width, self.height), (other.width, other.height), "image size mismatch");
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).sum::<f32>()
            / self.data.len() as f32
    }
}

impl fmt::Display for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GrayImage {}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let img = GrayImage::from_fn(3, 2, |x, y| (10 * y + x) as f32);
        assert_eq!(img.get(2, 1), 12.0);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
    }

    #[test]
    fn clamped_access_at_borders() {
        let img = GrayImage::from_fn(2, 2, |x, y| (x + 2 * y) as f32);
        assert_eq!(img.get_clamped(-5, -5), img.get(0, 0));
        assert_eq!(img.get_clamped(10, 10), img.get(1, 1));
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        let img = GrayImage::from_fn(2, 1, |x, _| x as f32);
        assert!((img.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn bilinear_at_integer_coords_is_exact() {
        let img = GrayImage::from_fn(4, 4, |x, y| (x * y) as f32);
        assert_eq!(img.sample_bilinear(2.0, 3.0), 6.0);
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = GrayImage::from_fn(8, 6, |_, _| 0.5);
        let half = img.downsample_2x();
        assert_eq!((half.width(), half.height()), (4, 3));
        assert!((half.get(1, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mean_abs_diff_zero_for_identical() {
        let img = GrayImage::from_fn(5, 5, |x, y| (x ^ y) as f32);
        assert_eq!(img.mean_abs_diff(&img), 0.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_size_mismatch_panics() {
        let _ = GrayImage::from_vec(3, 3, vec![0.0; 8]);
    }
}
