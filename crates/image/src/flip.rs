//! ꟻLIP difference evaluator (Andersson et al. 2020), the second offline
//! image-quality metric ILLIXR reports (Table V, printed as 1−FLIP).
//!
//! This is a faithful-in-structure, simplified-in-constants implementation
//! of FLIP for low-dynamic-range images. It follows the published
//! pipeline — contrast-sensitivity spatial filtering, a perceptually
//! uniform color difference, and a feature (edge/point) difference that
//! amplifies errors near structure — with Gaussian approximations of the
//! CSFs. Like the reference, it returns per-pixel errors in `[0, 1]` whose
//! mean is the image's FLIP value (0 = identical, 1 = maximally
//! different).

use crate::gray::GrayImage;
use crate::rgb::RgbImage;
use crate::stencil::{gaussian_blur, sobel_gradients};

/// Exponent of the final color/feature combination, from the FLIP paper.
const QC: f32 = 0.7;
/// Feature amplification exponent.
const QF: f32 = 0.5;

/// Mean FLIP error between a `reference` and a `test` image, in `[0, 1]`.
///
/// # Panics
///
/// Panics when image sizes differ.
///
/// # Examples
///
/// ```
/// use illixr_image::{RgbImage, flip};
/// let img = RgbImage::from_fn(32, 32, |x, y| [x as f32 / 32.0, y as f32 / 32.0, 0.5]);
/// assert!(flip(&img, &img) < 1e-6);
/// ```
pub fn flip(reference: &RgbImage, test: &RgbImage) -> f32 {
    flip_map(reference, test).mean()
}

/// Per-pixel FLIP error map.
///
/// # Panics
///
/// Panics when image sizes differ.
pub fn flip_map(reference: &RgbImage, test: &RgbImage) -> GrayImage {
    assert_eq!(
        (reference.width(), reference.height()),
        (test.width(), test.height()),
        "FLIP: image size mismatch"
    );
    let (w, h) = (reference.width(), reference.height());

    // --- Color pipeline -------------------------------------------------
    // Spatially filter each channel with a CSF-approximating Gaussian
    // (chroma channels are filtered more heavily, as in the paper).
    let sigma_luma = 0.8;
    let sigma_chroma = 1.6;
    let opp_ref = to_opponent(reference);
    let opp_test = to_opponent(test);
    let filt = |img: &GrayImage, sigma: f32| gaussian_blur(img, sigma);
    let ref_filtered = [
        filt(&opp_ref[0], sigma_luma),
        filt(&opp_ref[1], sigma_chroma),
        filt(&opp_ref[2], sigma_chroma),
    ];
    let test_filtered = [
        filt(&opp_test[0], sigma_luma),
        filt(&opp_test[1], sigma_chroma),
        filt(&opp_test[2], sigma_chroma),
    ];

    // HyAB-style color difference: L1 on achromatic + L2 on chromatic.
    let mut color_err = GrayImage::new(w, h);
    // Normalization: the largest error the pipeline can produce for
    // in-gamut inputs (achromatic range 1 + chromatic diagonal).
    let max_err: f32 = 1.0 + (2.0f32).sqrt();
    for y in 0..h {
        for x in 0..w {
            let dl = (ref_filtered[0].get(x, y) - test_filtered[0].get(x, y)).abs();
            let da = ref_filtered[1].get(x, y) - test_filtered[1].get(x, y);
            let db = ref_filtered[2].get(x, y) - test_filtered[2].get(x, y);
            let de = dl + (da * da + db * db).sqrt();
            color_err.set(x, y, (de / max_err).clamp(0.0, 1.0).powf(QC));
        }
    }

    // --- Feature pipeline -----------------------------------------------
    // Edge and point feature magnitudes from the luminance channel; the
    // feature difference amplifies color errors near structure that
    // appears or disappears.
    let feat_ref = feature_magnitude(&opp_ref[0]);
    let feat_test = feature_magnitude(&opp_test[0]);
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let df = (feat_ref.get(x, y) - feat_test.get(x, y)).abs().clamp(0.0, 1.0).powf(QF);
            let ce = color_err.get(x, y);
            // Final FLIP combination: color error raised to (1 - feature
            // difference), so structural changes push the error toward 1.
            let e = ce.powf(1.0 - df);
            out.set(x, y, e.clamp(0.0, 1.0));
        }
    }
    out
}

/// Converts sRGB-ish `[0,1]` RGB to a simple opponent space
/// (achromatic, red-green, blue-yellow), each channel in `[-1, 1]`.
fn to_opponent(img: &RgbImage) -> [GrayImage; 3] {
    let (w, h) = (img.width(), img.height());
    let mut a = GrayImage::new(w, h);
    let mut rg = GrayImage::new(w, h);
    let mut by = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let [r, g, b] = img.get(x, y);
            // Linearize with gamma 2.2 (cheap sRGB approximation).
            let rl = r.max(0.0).powf(2.2);
            let gl = g.max(0.0).powf(2.2);
            let bl = b.max(0.0).powf(2.2);
            a.set(x, y, 0.2126 * rl + 0.7152 * gl + 0.0722 * bl);
            rg.set(x, y, rl - gl);
            by.set(x, y, 0.5 * (rl + gl) - bl);
        }
    }
    [a, rg, by]
}

/// Normalized edge+point feature magnitude of a luminance image.
fn feature_magnitude(luma: &GrayImage) -> GrayImage {
    let smoothed = gaussian_blur(luma, 1.0);
    let (gx, gy) = sobel_gradients(&smoothed);
    let (w, h) = (luma.width(), luma.height());
    GrayImage::from_fn(w, h, |x, y| {
        let g = (gx.get(x, y).powi(2) + gy.get(x, y).powi(2)).sqrt();
        // Sobel magnitude on unit-range images tops out around 4√2.
        (g / (4.0 * std::f32::consts::SQRT_2)).clamp(0.0, 1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(w: usize, h: usize) -> RgbImage {
        RgbImage::from_fn(w, h, |x, y| {
            [x as f32 / w as f32, y as f32 / h as f32, 0.3 + 0.2 * ((x ^ y) % 5) as f32 / 5.0]
        })
    }

    #[test]
    fn identical_images_have_zero_flip() {
        let img = gradient_image(32, 32);
        assert!(flip(&img, &img) < 1e-6);
    }

    #[test]
    fn inverted_image_has_large_flip() {
        let img = gradient_image(32, 32);
        let inv = RgbImage::from_fn(32, 32, |x, y| {
            let [r, g, b] = img.get(x, y);
            [1.0 - r, 1.0 - g, 1.0 - b]
        });
        assert!(flip(&img, &inv) > 0.2);
    }

    #[test]
    fn flip_increases_with_distortion() {
        let img = gradient_image(32, 32);
        let mild = RgbImage::from_fn(32, 32, |x, y| {
            let [r, g, b] = img.get(x, y);
            [(r + 0.05).min(1.0), g, b]
        });
        let severe = RgbImage::from_fn(32, 32, |x, y| {
            let [r, g, b] = img.get(x, y);
            [(r + 0.4).min(1.0), (g + 0.4).min(1.0), b]
        });
        let f_mild = flip(&img, &mild);
        let f_severe = flip(&img, &severe);
        assert!(f_mild < f_severe, "mild {f_mild} severe {f_severe}");
    }

    #[test]
    fn flip_map_in_unit_range() {
        let a = gradient_image(24, 24);
        let b = RgbImage::from_fn(24, 24, |x, y| {
            if (x / 4 + y / 4) % 2 == 0 {
                [1.0, 1.0, 1.0]
            } else {
                [0.0, 0.0, 0.0]
            }
        });
        let map = flip_map(&a, &b);
        assert!(map.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn structural_change_flagged_more_than_uniform_shift() {
        // A shifted edge (structure change) should score at least as high
        // as a small uniform brightness shift of similar magnitude.
        let edge = RgbImage::from_fn(32, 32, |x, _| if x < 16 { [0.2; 3] } else { [0.8; 3] });
        let moved = RgbImage::from_fn(32, 32, |x, _| if x < 20 { [0.2; 3] } else { [0.8; 3] });
        let shifted = RgbImage::from_fn(32, 32, |x, _| if x < 16 { [0.25; 3] } else { [0.85; 3] });
        assert!(flip(&edge, &moved) > flip(&edge, &shifted));
    }
}
