//! Structural Similarity Index Measure (SSIM), Wang et al. 2004 — one of
//! the two offline image-quality metrics ILLIXR reports (Table V).

use crate::gray::GrayImage;

const C1: f32 = (0.01 * 1.0) * (0.01 * 1.0); // (k1·L)², L = 1.0 dynamic range
const C2: f32 = (0.03 * 1.0) * (0.03 * 1.0); // (k2·L)²
const WINDOW_RADIUS: isize = 5; // 11×11 window as in the reference implementation

/// Mean SSIM between two same-sized grayscale images in `[0, 1]`.
///
/// Uses an 11×11 uniform window. Values near 1 mean the images are
/// structurally identical.
///
/// # Panics
///
/// Panics when the image sizes differ.
///
/// # Examples
///
/// ```
/// use illixr_image::{GrayImage, ssim};
/// let a = GrayImage::from_fn(32, 32, |x, y| ((x * y) % 13) as f32 / 13.0);
/// let b = a.map(|v| (v + 0.2).min(1.0));
/// assert!(ssim(&a, &a) > ssim(&a, &b));
/// ```
pub fn ssim(a: &GrayImage, b: &GrayImage) -> f32 {
    let map = ssim_map(a, b);
    map.mean()
}

/// Per-pixel SSIM map (same size as the inputs).
///
/// # Panics
///
/// Panics when the image sizes differ.
pub fn ssim_map(a: &GrayImage, b: &GrayImage) -> GrayImage {
    assert_eq!((a.width(), a.height()), (b.width(), b.height()), "SSIM: image size mismatch");
    let (w, h) = (a.width(), a.height());
    let mut out = GrayImage::new(w, h);
    let win_count = ((2 * WINDOW_RADIUS + 1) * (2 * WINDOW_RADIUS + 1)) as f32;
    for y in 0..h {
        for x in 0..w {
            // Window statistics (border-clamped).
            let mut sum_a = 0.0;
            let mut sum_b = 0.0;
            let mut sum_aa = 0.0;
            let mut sum_bb = 0.0;
            let mut sum_ab = 0.0;
            for dy in -WINDOW_RADIUS..=WINDOW_RADIUS {
                for dx in -WINDOW_RADIUS..=WINDOW_RADIUS {
                    let va = a.get_clamped(x as isize + dx, y as isize + dy);
                    let vb = b.get_clamped(x as isize + dx, y as isize + dy);
                    sum_a += va;
                    sum_b += vb;
                    sum_aa += va * va;
                    sum_bb += vb * vb;
                    sum_ab += va * vb;
                }
            }
            let mu_a = sum_a / win_count;
            let mu_b = sum_b / win_count;
            let var_a = (sum_aa / win_count - mu_a * mu_a).max(0.0);
            let var_b = (sum_bb / win_count - mu_b * mu_b).max(0.0);
            let cov = sum_ab / win_count - mu_a * mu_b;
            let num = (2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2);
            let den = (mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2);
            out.set(x, y, num / den);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            (0.5 + 0.3 * ((x as f32) * 0.35).sin() + 0.2 * ((y as f32) * 0.22).cos())
                .clamp(0.0, 1.0)
        })
    }

    #[test]
    fn identical_images_score_one() {
        let img = textured(48, 48);
        assert!((ssim(&img, &img) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn noise_reduces_ssim() {
        let img = textured(48, 48);
        let noisy = GrayImage::from_fn(48, 48, |x, y| {
            (img.get(x, y) + 0.25 * (((x * 7919 + y * 104729) % 17) as f32 / 17.0 - 0.5))
                .clamp(0.0, 1.0)
        });
        let s = ssim(&img, &noisy);
        assert!(s < 0.95, "expected noticeable degradation, got {s}");
        assert!(s > 0.0);
    }

    #[test]
    fn more_distortion_scores_lower() {
        let img = textured(48, 48);
        let mild = img.map(|v| (v * 0.95).clamp(0.0, 1.0));
        let severe = GrayImage::from_fn(48, 48, |x, _| (x % 2) as f32);
        assert!(ssim(&img, &mild) > ssim(&img, &severe));
    }

    #[test]
    fn constant_vs_constant() {
        let a = GrayImage::from_fn(16, 16, |_, _| 0.5);
        let b = GrayImage::from_fn(16, 16, |_, _| 0.5);
        assert!((ssim(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let a = GrayImage::new(8, 8);
        let b = GrayImage::new(9, 8);
        let _ = ssim(&a, &b);
    }
}
