//! Three-channel floating-point images.

use core::fmt;

use crate::gray::GrayImage;

/// An RGB color with `f32` channels in `[0, 1]`.
pub type Rgb = [f32; 3];

/// An RGB image with `f32` channels, row-major.
///
/// This is the frame format the application renderer produces and the
/// visual pipeline (reprojection, distortion correction, chromatic
/// aberration) consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<Rgb>,
}

impl RgbImage {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Self { width, height, data: vec![[0.0; 3]; width * height] }
    }

    /// Creates an image by evaluating `f(x, y)` per pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> Rgb) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.data[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw pixel slice.
    #[inline]
    pub fn as_slice(&self) -> &[Rgb] {
        &self.data
    }

    /// Mutable raw pixel slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Rgb] {
        &mut self.data
    }

    /// Returns the pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: Rgb) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Border-clamped access.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> Rgb {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Bilinear sample at floating-point coordinates (border-clamped).
    pub fn sample_bilinear(&self, x: f32, y: f32) -> Rgb {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let (xi, yi) = (x0 as isize, y0 as isize);
        let p00 = self.get_clamped(xi, yi);
        let p10 = self.get_clamped(xi + 1, yi);
        let p01 = self.get_clamped(xi, yi + 1);
        let p11 = self.get_clamped(xi + 1, yi + 1);
        let mut out = [0.0; 3];
        for c in 0..3 {
            out[c] = p00[c] * (1.0 - fx) * (1.0 - fy)
                + p10[c] * fx * (1.0 - fy)
                + p01[c] * (1.0 - fx) * fy
                + p11[c] * fx * fy;
        }
        out
    }

    /// Bilinear sample of a single channel — used by the chromatic
    /// aberration shader which warps each channel differently.
    #[allow(clippy::needless_range_loop)]
    pub fn sample_bilinear_channel(&self, x: f32, y: f32, channel: usize) -> f32 {
        debug_assert!(channel < 3);
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let (xi, yi) = (x0 as isize, y0 as isize);
        let p00 = self.get_clamped(xi, yi)[channel];
        let p10 = self.get_clamped(xi + 1, yi)[channel];
        let p01 = self.get_clamped(xi, yi + 1)[channel];
        let p11 = self.get_clamped(xi + 1, yi + 1)[channel];
        p00 * (1.0 - fx) * (1.0 - fy)
            + p10 * fx * (1.0 - fy)
            + p01 * (1.0 - fx) * fy
            + p11 * fx * fy
    }

    /// Converts to grayscale using Rec. 709 luma weights.
    pub fn to_luma(&self) -> GrayImage {
        GrayImage::from_vec(
            self.width,
            self.height,
            self.data.iter().map(|p| 0.2126 * p[0] + 0.7152 * p[1] + 0.0722 * p[2]).collect(),
        )
    }

    /// Extracts one channel as a grayscale image.
    pub fn channel(&self, c: usize) -> GrayImage {
        assert!(c < 3, "channel index out of range");
        GrayImage::from_vec(self.width, self.height, self.data.iter().map(|p| p[c]).collect())
    }

    /// Mean per-channel absolute difference with another image.
    ///
    /// # Panics
    ///
    /// Panics when dimensions differ.
    pub fn mean_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!((self.width, self.height), (other.width, other.height), "image size mismatch");
        if self.data.is_empty() {
            return 0.0;
        }
        let total: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a[0] - b[0]).abs() + (a[1] - b[1]).abs() + (a[2] - b[2]).abs())
            .sum();
        total / (3 * self.data.len()) as f32
    }
}

impl fmt::Display for RgbImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RgbImage {}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_extraction() {
        let img = RgbImage::from_fn(2, 2, |x, y| [x as f32, y as f32, 0.5]);
        assert_eq!(img.channel(0).get(1, 0), 1.0);
        assert_eq!(img.channel(1).get(0, 1), 1.0);
        assert_eq!(img.channel(2).get(0, 0), 0.5);
    }

    #[test]
    fn luma_weights_sum_to_one() {
        let img = RgbImage::from_fn(1, 1, |_, _| [1.0, 1.0, 1.0]);
        assert!((img.to_luma().get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bilinear_channel_matches_full_sample() {
        let img = RgbImage::from_fn(4, 4, |x, y| [(x + y) as f32, x as f32, y as f32]);
        let full = img.sample_bilinear(1.3, 2.7);
        for (c, &expected) in full.iter().enumerate() {
            assert!((img.sample_bilinear_channel(1.3, 2.7, c) - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn mean_abs_diff_detects_difference() {
        let a = RgbImage::from_fn(2, 2, |_, _| [0.0, 0.0, 0.0]);
        let b = RgbImage::from_fn(2, 2, |_, _| [0.3, 0.3, 0.3]);
        assert!((a.mean_abs_diff(&b) - 0.3).abs() < 1e-6);
    }
}
