//! Image pyramids for coarse-to-fine KLT tracking.

use crate::gray::GrayImage;
use crate::stencil::gaussian_blur;

/// A Gaussian image pyramid: level 0 is the original resolution and each
/// subsequent level halves both dimensions.
#[derive(Debug, Clone)]
pub struct Pyramid {
    levels: Vec<GrayImage>,
}

impl Pyramid {
    /// Builds a pyramid with `num_levels` levels (at least 1).
    ///
    /// Levels stop early when an image dimension would drop below 8 px.
    ///
    /// # Panics
    ///
    /// Panics when `num_levels == 0`.
    pub fn new(base: &GrayImage, num_levels: usize) -> Self {
        assert!(num_levels >= 1, "pyramid needs at least one level");
        let mut levels = Vec::with_capacity(num_levels);
        levels.push(base.clone());
        for _ in 1..num_levels {
            let prev = levels.last().expect("pyramid has at least the base level");
            if prev.width() < 16 || prev.height() < 16 {
                break;
            }
            let smoothed = gaussian_blur(prev, 1.0);
            levels.push(smoothed.downsample_2x());
        }
        Self { levels }
    }

    /// Number of levels actually built.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Returns level `i` (0 = full resolution).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn level(&self, i: usize) -> &GrayImage {
        &self.levels[i]
    }

    /// Iterates over levels from coarsest to finest.
    pub fn coarse_to_fine(&self) -> impl Iterator<Item = (usize, &GrayImage)> {
        self.levels.iter().enumerate().rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pyramid_halves_each_level() {
        let base = GrayImage::from_fn(64, 48, |x, y| ((x + y) % 9) as f32 / 9.0);
        let pyr = Pyramid::new(&base, 3);
        assert_eq!(pyr.num_levels(), 3);
        assert_eq!(pyr.level(1).width(), 32);
        assert_eq!(pyr.level(2).width(), 16);
        assert_eq!(pyr.level(2).height(), 12);
    }

    #[test]
    fn pyramid_stops_for_small_images() {
        let base = GrayImage::from_fn(20, 20, |_, _| 0.5);
        let pyr = Pyramid::new(&base, 5);
        assert!(pyr.num_levels() <= 2);
    }

    #[test]
    fn coarse_to_fine_order() {
        let base = GrayImage::from_fn(64, 64, |_, _| 0.0);
        let pyr = Pyramid::new(&base, 3);
        let order: Vec<usize> = pyr.coarse_to_fine().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }
}
