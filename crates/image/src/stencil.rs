//! Stencil kernels: Gaussian blur, Sobel gradients and the bilateral
//! filter (the depth-preprocessing stage of scene reconstruction,
//! Table VI "camera processing").

use crate::gray::GrayImage;

/// Builds a normalized 1-D Gaussian kernel with radius `⌈3σ⌉`.
fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f32> =
        (-radius..=radius).map(|i| (-((i * i) as f32) / (2.0 * sigma * sigma)).exp()).collect();
    let sum: f32 = k.iter().sum();
    k.iter_mut().for_each(|v| *v /= sum);
    k
}

/// Separable Gaussian blur with standard deviation `sigma`.
///
/// # Panics
///
/// Panics when `sigma <= 0`.
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    let kernel = gaussian_kernel(sigma);
    let radius = (kernel.len() / 2) as isize;
    let (w, h) = (img.width(), img.height());
    // Horizontal pass.
    let mut tmp = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in kernel.iter().enumerate() {
                acc += kv * img.get_clamped(x as isize + i as isize - radius, y as isize);
            }
            tmp.set(x, y, acc);
        }
    }
    // Vertical pass.
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in kernel.iter().enumerate() {
                acc += kv * tmp.get_clamped(x as isize, y as isize + i as isize - radius);
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Sobel gradients: returns `(gx, gy)` images.
pub fn sobel_gradients(img: &GrayImage) -> (GrayImage, GrayImage) {
    let (w, h) = (img.width(), img.height());
    let mut gx = GrayImage::new(w, h);
    let mut gy = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let (xi, yi) = (x as isize, y as isize);
            let tl = img.get_clamped(xi - 1, yi - 1);
            let tc = img.get_clamped(xi, yi - 1);
            let tr = img.get_clamped(xi + 1, yi - 1);
            let ml = img.get_clamped(xi - 1, yi);
            let mr = img.get_clamped(xi + 1, yi);
            let bl = img.get_clamped(xi - 1, yi + 1);
            let bc = img.get_clamped(xi, yi + 1);
            let br = img.get_clamped(xi + 1, yi + 1);
            gx.set(x, y, (tr + 2.0 * mr + br) - (tl + 2.0 * ml + bl));
            gy.set(x, y, (bl + 2.0 * bc + br) - (tl + 2.0 * tc + tr));
        }
    }
    (gx, gy)
}

/// Edge-preserving bilateral filter.
///
/// `sigma_space` controls the spatial footprint, `sigma_range` the
/// intensity similarity. Pixels with value `<= invalid_below` are treated
/// as invalid (depth holes) and skipped, matching ElasticFusion's
/// invalid-depth rejection.
///
/// # Panics
///
/// Panics when either sigma is non-positive.
pub fn bilateral_filter(
    img: &GrayImage,
    sigma_space: f32,
    sigma_range: f32,
    invalid_below: f32,
) -> GrayImage {
    assert!(sigma_space > 0.0 && sigma_range > 0.0, "sigmas must be positive");
    let radius = (2.0 * sigma_space).ceil() as isize;
    let (w, h) = (img.width(), img.height());
    let inv_2ss = 1.0 / (2.0 * sigma_space * sigma_space);
    let inv_2sr = 1.0 / (2.0 * sigma_range * sigma_range);
    // Precompute the spatial kernel; only the range term depends on
    // pixel values.
    let side = (2 * radius + 1) as usize;
    let mut spatial = vec![0.0f32; side * side];
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let ds = (dx * dx + dy * dy) as f32;
            spatial[((dy + radius) * side as isize + dx + radius) as usize] = (-ds * inv_2ss).exp();
        }
    }
    // Range weights from a lookup table over |Δv| up to 4σ (the standard
    // real-time bilateral optimization; beyond 4σ the weight is ~0).
    const LUT_SIZE: usize = 256;
    let max_dr = 4.0 * sigma_range;
    let lut: Vec<f32> = (0..LUT_SIZE)
        .map(|i| {
            let dr = i as f32 / (LUT_SIZE - 1) as f32 * max_dr;
            (-dr * dr * inv_2sr).exp()
        })
        .collect();
    let range_weight = |dr: f32| -> f32 {
        let a = dr.abs();
        if a >= max_dr {
            0.0
        } else {
            lut[(a / max_dr * (LUT_SIZE - 1) as f32) as usize]
        }
    };
    let mut out = GrayImage::new(w, h);
    let data = img.as_slice();
    let r = radius as usize;
    for y in 0..h {
        let interior_y = y >= r && y + r < h;
        for x in 0..w {
            let center = img.get(x, y);
            if center <= invalid_below {
                out.set(x, y, 0.0);
                continue;
            }
            let mut acc = 0.0;
            let mut weight = 0.0;
            if interior_y && x >= r && x + r < w {
                // Interior fast path: direct indexing, no clamping.
                let mut k = 0;
                for dy in 0..side {
                    let row = (y + dy - r) * w + (x - r);
                    for v in &data[row..row + side] {
                        let wgt = spatial[k] * range_weight(v - center);
                        if *v > invalid_below {
                            acc += wgt * v;
                            weight += wgt;
                        }
                        k += 1;
                    }
                }
            } else {
                for dy in -radius..=radius {
                    for dx in -radius..=radius {
                        let v = img.get_clamped(x as isize + dx, y as isize + dy);
                        if v <= invalid_below {
                            continue;
                        }
                        let wgt = spatial[((dy + radius) * side as isize + dx + radius) as usize]
                            * range_weight(v - center);
                        acc += wgt * v;
                        weight += wgt;
                    }
                }
            }
            out.set(x, y, if weight > 0.0 { acc / weight } else { 0.0 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_preserves_constant_image() {
        let img = GrayImage::from_fn(16, 16, |_, _| 0.7);
        let blurred = gaussian_blur(&img, 1.5);
        for y in 0..16 {
            for x in 0..16 {
                assert!((blurred.get(x, y) - 0.7).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gaussian_smooths_impulse() {
        let mut img = GrayImage::new(9, 9);
        img.set(4, 4, 1.0);
        let blurred = gaussian_blur(&img, 1.0);
        assert!(blurred.get(4, 4) < 1.0);
        assert!(blurred.get(3, 4) > 0.0);
        // Total mass preserved (interior impulse, kernel sums to 1).
        let total: f32 = blurred.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sobel_detects_vertical_edge() {
        let img = GrayImage::from_fn(8, 8, |x, _| if x < 4 { 0.0 } else { 1.0 });
        let (gx, gy) = sobel_gradients(&img);
        assert!(gx.get(4, 4).abs() > 1.0);
        assert!(gy.get(4, 4).abs() < 1e-6);
    }

    #[test]
    fn bilateral_preserves_edges_better_than_gaussian() {
        let img = GrayImage::from_fn(16, 16, |x, _| if x < 8 { 0.2 } else { 0.8 });
        let b = bilateral_filter(&img, 2.0, 0.05, -1.0);
        let g = gaussian_blur(&img, 2.0);
        // Just next to the edge the bilateral output stays close to the
        // original while the Gaussian smears.
        let edge_err_b = (b.get(6, 8) - 0.2).abs();
        let edge_err_g = (g.get(6, 8) - 0.2).abs();
        assert!(edge_err_b < edge_err_g, "bilateral {edge_err_b} vs gaussian {edge_err_g}");
    }

    #[test]
    fn bilateral_skips_invalid_depth() {
        let mut img = GrayImage::from_fn(8, 8, |_, _| 1.0);
        img.set(3, 3, 0.0); // hole
        let out = bilateral_filter(&img, 1.0, 0.1, 0.01);
        assert_eq!(out.get(3, 3), 0.0);
        assert!((out.get(4, 4) - 1.0).abs() < 1e-5);
    }
}
