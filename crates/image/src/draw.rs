//! Simple rasterized drawing primitives used by the synthetic data
//! generators (eye images, debug overlays, test patterns).

use crate::gray::GrayImage;
use crate::rgb::{Rgb, RgbImage};

/// Fills a solid disk centered at `(cx, cy)` with the given radius.
pub fn fill_circle_gray(img: &mut GrayImage, cx: f32, cy: f32, radius: f32, value: f32) {
    let r2 = radius * radius;
    let x0 = ((cx - radius).floor().max(0.0)) as usize;
    let x1 = ((cx + radius).ceil().min(img.width() as f32 - 1.0)).max(0.0) as usize;
    let y0 = ((cy - radius).floor().max(0.0)) as usize;
    let y1 = ((cy + radius).ceil().min(img.height() as f32 - 1.0)).max(0.0) as usize;
    for y in y0..=y1.min(img.height().saturating_sub(1)) {
        for x in x0..=x1.min(img.width().saturating_sub(1)) {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            if dx * dx + dy * dy <= r2 {
                img.set(x, y, value);
            }
        }
    }
}

/// Fills an axis-aligned ellipse.
pub fn fill_ellipse_gray(img: &mut GrayImage, cx: f32, cy: f32, rx: f32, ry: f32, value: f32) {
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let x0 = ((cx - rx).floor().max(0.0)) as usize;
    let x1 = ((cx + rx).ceil().min(img.width() as f32 - 1.0)).max(0.0) as usize;
    let y0 = ((cy - ry).floor().max(0.0)) as usize;
    let y1 = ((cy + ry).ceil().min(img.height() as f32 - 1.0)).max(0.0) as usize;
    for y in y0..=y1.min(img.height().saturating_sub(1)) {
        for x in x0..=x1.min(img.width().saturating_sub(1)) {
            let dx = (x as f32 - cx) / rx;
            let dy = (y as f32 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                img.set(x, y, value);
            }
        }
    }
}

/// Draws a 1-pixel line with Bresenham's algorithm.
pub fn draw_line_rgb(img: &mut RgbImage, x0: i32, y0: i32, x1: i32, y1: i32, color: Rgb) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        if x >= 0 && y >= 0 && (x as usize) < img.width() && (y as usize) < img.height() {
            img.set(x as usize, y as usize, color);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Fills a rectangle (clipped to the image).
pub fn fill_rect_rgb(img: &mut RgbImage, x0: usize, y0: usize, w: usize, h: usize, color: Rgb) {
    for y in y0..(y0 + h).min(img.height()) {
        for x in x0..(x0 + w).min(img.width()) {
            img.set(x, y, color);
        }
    }
}

/// A checkerboard test pattern — the classic distortion-calibration image.
pub fn checkerboard(width: usize, height: usize, cell: usize) -> RgbImage {
    let cell = cell.max(1);
    RgbImage::from_fn(width, height, |x, y| {
        if (x / cell + y / cell).is_multiple_of(2) {
            [1.0, 1.0, 1.0]
        } else {
            [0.0, 0.0, 0.0]
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_fills_center_not_corner() {
        let mut img = GrayImage::new(16, 16);
        fill_circle_gray(&mut img, 8.0, 8.0, 3.0, 1.0);
        assert_eq!(img.get(8, 8), 1.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn circle_clips_at_border() {
        let mut img = GrayImage::new(8, 8);
        fill_circle_gray(&mut img, 0.0, 0.0, 3.0, 1.0);
        assert_eq!(img.get(0, 0), 1.0);
    }

    #[test]
    fn ellipse_respects_radii() {
        let mut img = GrayImage::new(32, 32);
        fill_ellipse_gray(&mut img, 16.0, 16.0, 8.0, 2.0, 1.0);
        assert_eq!(img.get(22, 16), 1.0); // inside along x
        assert_eq!(img.get(16, 22), 0.0); // outside along y
    }

    #[test]
    fn line_endpoints_drawn() {
        let mut img = RgbImage::new(16, 16);
        draw_line_rgb(&mut img, 1, 1, 12, 9, [1.0, 0.0, 0.0]);
        assert_eq!(img.get(1, 1), [1.0, 0.0, 0.0]);
        assert_eq!(img.get(12, 9), [1.0, 0.0, 0.0]);
    }

    #[test]
    fn line_clips_outside() {
        let mut img = RgbImage::new(4, 4);
        draw_line_rgb(&mut img, -5, 2, 10, 2, [0.0, 1.0, 0.0]);
        assert_eq!(img.get(0, 2), [0.0, 1.0, 0.0]);
        assert_eq!(img.get(3, 2), [0.0, 1.0, 0.0]);
    }

    #[test]
    fn checkerboard_alternates() {
        let img = checkerboard(8, 8, 2);
        assert_eq!(img.get(0, 0), [1.0, 1.0, 1.0]);
        assert_eq!(img.get(2, 0), [0.0, 0.0, 0.0]);
        assert_eq!(img.get(2, 2), [1.0, 1.0, 1.0]);
    }
}
