//! Image-processing substrate for ILLIXR-rs.
//!
//! Provides the grayscale and RGB image buffers flowing through the
//! perception and visual pipelines, the stencil kernels the paper's task
//! breakdowns identify (Gaussian and bilateral filters, gradients), image
//! pyramids for KLT tracking, and the two end-to-end image-quality metrics
//! ILLIXR reports: **SSIM** and **FLIP** (Table V).
//!
//! # Examples
//!
//! ```
//! use illixr_image::{GrayImage, ssim};
//! let a = GrayImage::from_fn(64, 48, |x, y| ((x + y) % 7) as f32 / 7.0);
//! assert!((ssim(&a, &a) - 1.0).abs() < 1e-6);
//! ```

pub mod draw;
pub mod flip;
pub mod gray;
pub mod pyramid;
pub mod rgb;
pub mod ssim;
pub mod stencil;

pub use flip::{flip, flip_map};
pub use gray::GrayImage;
pub use pyramid::Pyramid;
pub use rgb::RgbImage;
pub use ssim::{ssim, ssim_map};
pub use stencil::{bilateral_filter, gaussian_blur, sobel_gradients};
