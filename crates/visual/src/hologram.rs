//! Computational holography: weighted Gerchberg-Saxton phase retrieval
//! (paper Table II: "Adaptive display — Weighted Gerchberg–Saxton";
//! Table VII tasks: hologram-to-depth, sum, depth-to-hologram).
//!
//! Computes the phase pattern for a phase-only SLM such that the
//! propagated field reproduces target intensity images at multiple focal
//! depths (multifocal displays, §II-A). Propagation uses the Fresnel
//! transfer function applied in the frequency domain (2-D FFTs).

use illixr_core::telemetry::TaskTimer;
use illixr_dsp::complex::Complex;
use illixr_dsp::fft::{fft_2d, ifft_2d};
use illixr_image::GrayImage;

/// Hologram computation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HologramConfig {
    /// Hologram width (power of two).
    pub width: usize,
    /// Hologram height (power of two).
    pub height: usize,
    /// SLM pixel pitch, meters.
    pub pixel_pitch: f64,
    /// Wavelength, meters (green laser default).
    pub wavelength: f64,
    /// Depth-plane distances from the SLM, meters.
    pub plane_depths: Vec<f64>,
    /// Weighted-GS iterations.
    pub iterations: usize,
}

impl Default for HologramConfig {
    fn default() -> Self {
        Self {
            width: 64,
            height: 64,
            pixel_pitch: 8e-6,
            wavelength: 520e-9,
            plane_depths: vec![0.15, 0.3],
            iterations: 10,
        }
    }
}

/// The result: an SLM phase field plus reconstruction diagnostics.
#[derive(Debug, Clone)]
pub struct Hologram {
    /// Phase at each SLM pixel, radians.
    pub phase: Vec<f64>,
    /// Per-plane reconstruction quality: normalized cross-correlation of
    /// achieved intensity with the target.
    pub plane_correlation: Vec<f64>,
    width: usize,
    height: usize,
}

impl Hologram {
    /// Hologram width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Hologram height.
    pub fn height(&self) -> usize {
        self.height
    }
}

/// Computes a hologram reproducing `targets[i]` (amplitude images) at
/// `config.plane_depths[i]`.
///
/// # Panics
///
/// Panics when target count ≠ plane count, when dimensions are not
/// powers of two, or when any target has the wrong size.
pub fn compute_hologram(
    targets: &[GrayImage],
    config: &HologramConfig,
    timer: Option<&TaskTimer>,
) -> Hologram {
    let (w, h) = (config.width, config.height);
    assert!(w.is_power_of_two() && h.is_power_of_two(), "hologram dims must be powers of two");
    assert_eq!(targets.len(), config.plane_depths.len(), "one target per depth plane");
    for t in targets {
        assert_eq!((t.width(), t.height()), (w, h), "target size mismatch");
    }
    let n = w * h;
    let num_planes = targets.len();

    // Precompute per-plane transfer functions (and their conjugates for
    // back-propagation).
    let transfer: Vec<Vec<Complex>> = config
        .plane_depths
        .iter()
        .map(|&z| fresnel_transfer(w, h, config.pixel_pitch, config.wavelength, z))
        .collect();

    // Target amplitudes, normalized to unit energy per plane.
    let target_amp: Vec<Vec<f64>> = targets
        .iter()
        .map(|t| {
            let energy: f64 = t.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum();
            let scale = if energy > 0.0 { (n as f64 / energy).sqrt() } else { 1.0 };
            t.as_slice().iter().map(|&v| v as f64 * scale).collect()
        })
        .collect();

    // Initial phase: deterministic pseudo-random (quadratic + hash).
    let mut phase: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i % w) as f64 / w as f64 - 0.5;
            let y = (i / w) as f64 / h as f64 - 0.5;
            std::f64::consts::PI * (7.1 * x * x + 11.3 * y * y)
                + ((i * 2654435761) % 628) as f64 / 100.0
        })
        .collect();
    let mut weights = vec![1.0f64; num_planes];
    let mut plane_correlation = vec![0.0; num_planes];

    for _iter in 0..config.iterations {
        let mut back_sum = vec![Complex::ZERO; n];
        let mut achieved_amp: Vec<Vec<f64>> = Vec::with_capacity(num_planes);
        // --- Hologram → depth planes ---------------------------------
        {
            let _g = timer.map(|t| t.scope("hologram-to-depth"));
            for d in 0..num_planes {
                let mut field: Vec<Complex> = phase.iter().map(|&p| Complex::cis(p)).collect();
                fft_2d(&mut field, w, h);
                for (f, t) in field.iter_mut().zip(&transfer[d]) {
                    *f *= *t;
                }
                ifft_2d(&mut field, w, h);
                achieved_amp.push(field.iter().map(|c| c.abs()).collect());
                // Replace amplitude with weighted target, keep phase.
                for (i, f) in field.iter_mut().enumerate() {
                    let a = f.abs().max(1e-12);
                    let desired = weights[d] * target_amp[d][i];
                    *f = f.scale(desired / a);
                }
                // --- Depth plane → hologram (back-propagation) -------
                let _g2 = timer.map(|t| t.scope("depth-to-hologram"));
                fft_2d(&mut field, w, h);
                for (f, t) in field.iter_mut().zip(&transfer[d]) {
                    *f *= t.conj();
                }
                ifft_2d(&mut field, w, h);
                {
                    let _g3 = timer.map(|t| t.scope("sum"));
                    for (s, f) in back_sum.iter_mut().zip(&field) {
                        *s += *f;
                    }
                }
            }
        }
        // Update weights: planes reconstructed too dimly get boosted.
        for d in 0..num_planes {
            let mean_achieved: f64 = achieved_amp[d]
                .iter()
                .zip(&target_amp[d])
                .filter(|(_, &t)| t > 1e-6)
                .map(|(&a, _)| a)
                .sum::<f64>()
                .max(1e-12);
            let mean_target: f64 = target_amp[d].iter().filter(|&&t| t > 1e-6).sum();
            weights[d] *= (mean_target / mean_achieved).powf(0.5).clamp(0.5, 2.0);
            plane_correlation[d] = correlation(&achieved_amp[d], &target_amp[d]);
        }
        // New phase from the summed back-propagated field.
        for (p, s) in phase.iter_mut().zip(&back_sum) {
            *p = s.arg();
        }
    }

    Hologram { phase, plane_correlation, width: w, height: h }
}

/// Fresnel transfer function `exp(-iπλz(fx² + fy²))` on the FFT grid.
fn fresnel_transfer(w: usize, h: usize, pitch: f64, lambda: f64, z: f64) -> Vec<Complex> {
    let mut out = Vec::with_capacity(w * h);
    for ky in 0..h {
        // FFT frequency ordering: 0..N/2, -N/2..-1.
        let fy = fft_freq(ky, h) / (h as f64 * pitch);
        for kx in 0..w {
            let fx = fft_freq(kx, w) / (w as f64 * pitch);
            let arg = -std::f64::consts::PI * lambda * z * (fx * fx + fy * fy);
            out.push(Complex::cis(arg));
        }
    }
    out
}

fn fft_freq(k: usize, n: usize) -> f64 {
    if k <= n / 2 {
        k as f64
    } else {
        k as f64 - n as f64
    }
}

/// Normalized cross-correlation of two non-negative fields.
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let ma = a.iter().sum::<f64>() / a.len() as f64;
    let mb = b.iter().sum::<f64>() / b.len() as f64;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - ma) * (y - mb);
        da += (x - ma) * (x - ma);
        db += (y - mb) * (y - mb);
    }
    if da <= 0.0 || db <= 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_image::draw::fill_circle_gray;

    fn disk_target(w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        fill_circle_gray(&mut img, w as f32 / 2.0, h as f32 / 2.0, w as f32 / 6.0, 1.0);
        img
    }

    fn square_target(w: usize, h: usize) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let fx = x as f32 / w as f32;
            let fy = y as f32 / h as f32;
            if (0.25..0.75).contains(&fx) && (0.25..0.42).contains(&fy) {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn single_plane_converges() {
        let cfg = HologramConfig { plane_depths: vec![0.2], iterations: 12, ..Default::default() };
        let target = disk_target(cfg.width, cfg.height);
        let holo = compute_hologram(&[target], &cfg, None);
        assert!(holo.plane_correlation[0] > 0.5, "correlation {}", holo.plane_correlation[0]);
    }

    #[test]
    fn two_planes_reconstruct_their_own_targets() {
        let cfg = HologramConfig::default();
        let t0 = disk_target(cfg.width, cfg.height);
        let t1 = square_target(cfg.width, cfg.height);
        let holo = compute_hologram(&[t0, t1], &cfg, None);
        assert!(holo.plane_correlation[0] > 0.35, "plane 0: {}", holo.plane_correlation[0]);
        assert!(holo.plane_correlation[1] > 0.35, "plane 1: {}", holo.plane_correlation[1]);
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let mut cfg =
            HologramConfig { plane_depths: vec![0.2], iterations: 2, ..Default::default() };
        let target = disk_target(cfg.width, cfg.height);
        let short = compute_hologram(std::slice::from_ref(&target), &cfg, None);
        cfg.iterations = 14;
        let long = compute_hologram(&[target], &cfg, None);
        assert!(long.plane_correlation[0] >= short.plane_correlation[0] - 0.05);
    }

    #[test]
    fn phases_are_finite_and_bounded() {
        let cfg = HologramConfig { plane_depths: vec![0.2], iterations: 4, ..Default::default() };
        let target = disk_target(cfg.width, cfg.height);
        let holo = compute_hologram(std::slice::from_ref(&target), &cfg, None);
        assert!(holo.phase.iter().all(|p| p.is_finite() && p.abs() <= std::f64::consts::PI + 1e-9));
    }

    #[test]
    fn task_timer_covers_table_vii_tasks() {
        let cfg = HologramConfig { iterations: 2, ..Default::default() };
        let timer = TaskTimer::new();
        let t0 = disk_target(cfg.width, cfg.height);
        let t1 = square_target(cfg.width, cfg.height);
        compute_hologram(&[t0, t1], &cfg, Some(&timer));
        let names: Vec<String> = timer.shares().into_iter().map(|(n, _)| n).collect();
        for expected in ["hologram-to-depth", "sum", "depth-to-hologram"] {
            assert!(names.iter().any(|n| n == expected), "missing '{expected}'");
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_targets_panic() {
        let cfg = HologramConfig::default();
        let _ = compute_hologram(&[disk_target(cfg.width, cfg.height)], &cfg, None);
    }
}
