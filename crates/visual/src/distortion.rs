//! Mesh-based radial lens distortion and chromatic-aberration
//! correction (paper Table II: "mesh-based radial distortion").
//!
//! HMD lenses pincushion-distort the displayed image and refract each
//! wavelength differently; the runtime pre-applies the inverse barrel
//! distortion, per color channel. Like the reference implementation we
//! evaluate the distortion polynomial only at the vertices of a coarse
//! mesh and bilinearly interpolate between them — the "mesh-based"
//! optimization that makes the pass cheap.

use illixr_image::RgbImage;
use illixr_math::Vec2;

/// Radial distortion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistortionParams {
    /// Quadratic radial coefficient.
    pub k1: f64,
    /// Quartic radial coefficient.
    pub k2: f64,
    /// Per-channel scale of the distortion (chromatic aberration):
    /// red, green, blue. Green is the reference (1.0).
    pub channel_scale: [f64; 3],
    /// Warp-mesh resolution (vertices per side).
    pub mesh_resolution: usize,
}

impl Default for DistortionParams {
    /// Mild barrel pre-distortion with visible chromatic separation,
    /// North-Star-like.
    fn default() -> Self {
        Self { k1: 0.22, k2: 0.05, channel_scale: [0.985, 1.0, 1.015], mesh_resolution: 32 }
    }
}

/// A precomputed warp mesh: for each channel, the source UV at each
/// mesh vertex.
#[derive(Debug, Clone)]
pub struct DistortionMesh {
    resolution: usize,
    /// `[channel][vy * (res+1) + vx]` source UVs in `[0,1]²`.
    uvs: [Vec<Vec2>; 3],
}

impl DistortionMesh {
    /// Precomputes the warp mesh for `params`.
    ///
    /// # Panics
    ///
    /// Panics when `mesh_resolution < 2`.
    pub fn new(params: &DistortionParams) -> Self {
        assert!(params.mesh_resolution >= 2, "mesh resolution too small");
        let res = params.mesh_resolution;
        let mut uvs: [Vec<Vec2>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (c, uv) in uvs.iter_mut().enumerate() {
            uv.reserve((res + 1) * (res + 1));
            for vy in 0..=res {
                for vx in 0..=res {
                    let u = vx as f64 / res as f64;
                    let v = vy as f64 / res as f64;
                    // Centered coordinates in [-1, 1].
                    let cx = u * 2.0 - 1.0;
                    let cy = v * 2.0 - 1.0;
                    let r2 =
                        (cx * cx + cy * cy) * params.channel_scale[c] * params.channel_scale[c];
                    let factor = 1.0 + params.k1 * r2 + params.k2 * r2 * r2;
                    let sx = cx * factor * params.channel_scale[c];
                    let sy = cy * factor * params.channel_scale[c];
                    uv.push(Vec2::new((sx + 1.0) * 0.5, (sy + 1.0) * 0.5));
                }
            }
        }
        Self { resolution: res, uvs }
    }

    /// Source UV for `channel` at normalized destination `(u, v)`,
    /// bilinearly interpolated from the mesh.
    pub fn sample(&self, channel: usize, u: f64, v: f64) -> Vec2 {
        let res = self.resolution;
        let fx = (u.clamp(0.0, 1.0)) * res as f64;
        let fy = (v.clamp(0.0, 1.0)) * res as f64;
        let x0 = (fx.floor() as usize).min(res - 1);
        let y0 = (fy.floor() as usize).min(res - 1);
        let tx = fx - x0 as f64;
        let ty = fy - y0 as f64;
        let stride = res + 1;
        let p00 = self.uvs[channel][y0 * stride + x0];
        let p10 = self.uvs[channel][y0 * stride + x0 + 1];
        let p01 = self.uvs[channel][(y0 + 1) * stride + x0];
        let p11 = self.uvs[channel][(y0 + 1) * stride + x0 + 1];
        p00 * (1.0 - tx) * (1.0 - ty)
            + p10 * tx * (1.0 - ty)
            + p01 * (1.0 - tx) * ty
            + p11 * tx * ty
    }

    /// Applies the distortion + chromatic-aberration correction to an
    /// image. Out-of-range source samples are black.
    pub fn apply(&self, img: &RgbImage) -> RgbImage {
        let (w, h) = (img.width(), img.height());
        RgbImage::from_fn(w, h, |x, y| {
            let u = (x as f64 + 0.5) / w as f64;
            let v = (y as f64 + 0.5) / h as f64;
            let mut out = [0.0f32; 3];
            for (c, value) in out.iter_mut().enumerate() {
                let src = self.sample(c, u, v);
                if !(0.0..=1.0).contains(&src.x) || !(0.0..=1.0).contains(&src.y) {
                    continue;
                }
                let sx = (src.x * w as f64 - 0.5) as f32;
                let sy = (src.y * h as f64 - 0.5) as f32;
                *value = img.sample_bilinear_channel(sx, sy, c);
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_image::draw::checkerboard;

    #[test]
    fn center_is_fixed_point() {
        let mesh = DistortionMesh::new(&DistortionParams::default());
        let c = mesh.sample(1, 0.5, 0.5);
        assert!((c - Vec2::new(0.5, 0.5)).norm() < 1e-9);
    }

    #[test]
    fn distortion_grows_with_radius() {
        let mesh = DistortionMesh::new(&DistortionParams::default());
        // Near the corner, the green source sample is pushed outward
        // beyond the destination (barrel pre-distortion).
        let dst = Vec2::new(0.95, 0.95);
        let src = mesh.sample(1, dst.x, dst.y);
        let center = Vec2::new(0.5, 0.5);
        assert!((src - center).norm() > (dst - center).norm());
    }

    #[test]
    fn channels_diverge_away_from_center() {
        let mesh = DistortionMesh::new(&DistortionParams::default());
        let r = mesh.sample(0, 0.9, 0.5);
        let g = mesh.sample(1, 0.9, 0.5);
        let b = mesh.sample(2, 0.9, 0.5);
        assert!((r - g).norm() > 1e-4, "red == green");
        assert!((b - g).norm() > 1e-4, "blue == green");
        // Red is scaled less, blue more.
        let c = Vec2::new(0.5, 0.5);
        assert!((r - c).norm() < (g - c).norm());
        assert!((b - c).norm() > (g - c).norm());
    }

    #[test]
    fn apply_preserves_center_region() {
        let img = checkerboard(64, 64, 8);
        let mesh = DistortionMesh::new(&DistortionParams::default());
        let out = mesh.apply(&img);
        // The very center pixel is (nearly) untouched.
        let a = img.get(32, 32);
        let b = out.get(32, 32);
        for ch in 0..3 {
            assert!((a[ch] - b[ch]).abs() < 0.3, "channel {ch}");
        }
    }

    #[test]
    fn apply_introduces_color_fringes() {
        let img = checkerboard(96, 96, 12);
        let mesh = DistortionMesh::new(&DistortionParams::default());
        let out = mesh.apply(&img);
        // Near the edge, at least one pixel must have channels pulled
        // from different board cells → unequal channel values.
        let mut fringes = 0;
        for y in 0..96 {
            for x in 0..96 {
                let p = out.get(x, y);
                if (p[0] - p[2]).abs() > 0.3 {
                    fringes += 1;
                }
            }
        }
        assert!(fringes > 20, "only {fringes} fringe pixels");
    }

    #[test]
    fn zero_coefficients_are_identity() {
        let params =
            DistortionParams { k1: 0.0, k2: 0.0, channel_scale: [1.0; 3], mesh_resolution: 16 };
        let mesh = DistortionMesh::new(&params);
        let img = checkerboard(32, 32, 4);
        let out = mesh.apply(&img);
        assert!(img.mean_abs_diff(&out) < 1e-4);
    }
}
