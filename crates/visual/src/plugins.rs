//! The `timewarp` and `hologram` plugins.
//!
//! Timewarp implements the paper's reprojection component: right before
//! each vsync it takes the latest submitted eye buffer (asynchronous
//! dependence on the application) and the freshest pose (asynchronous
//! dependence on the IMU integrator), reprojects, applies lens
//! distortion + chromatic-aberration correction, and publishes the final
//! display frame. It also records the pose age used — the first term of
//! the motion-to-photon latency formula (§III-E).

use std::sync::Arc;

use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::switchboard::{AsyncReader, Writer};
use illixr_core::telemetry::TaskTimer;
use illixr_core::Time;
use illixr_image::RgbImage;
use illixr_render::plugin::{RenderedFrame, EYEBUFFER_STREAM};
use illixr_sensors::types::{streams, PoseEstimate};

use crate::distortion::{DistortionMesh, DistortionParams};
use crate::hologram::{compute_hologram, HologramConfig};
use crate::reprojection::{reproject, ReprojectionConfig};

/// Stream carrying final (reprojected + corrected) display frames.
pub const DISPLAY_STREAM: &str = "display";

/// A display-ready frame.
#[derive(Debug, Clone)]
pub struct WarpedFrame {
    /// The corrected left-eye image.
    pub left: Arc<RgbImage>,
    /// The corrected right-eye image.
    pub right: Arc<RgbImage>,
    /// The pose the frame was warped to.
    pub display_pose: PoseEstimate,
    /// Age of that pose when the warp started (the `t_imu_age` term of
    /// the MTP formula).
    pub pose_age: std::time::Duration,
    /// When the warp ran.
    pub warp_time: Time,
}

/// The `timewarp` plugin (reprojection + distortion correction).
pub struct TimewarpPlugin {
    config: ReprojectionConfig,
    mesh: DistortionMesh,
    apply_distortion: bool,
    frame_reader: Option<AsyncReader<RenderedFrame>>,
    pose_reader: Option<AsyncReader<PoseEstimate>>,
    out_writer: Option<Writer<WarpedFrame>>,
    timer: Arc<TaskTimer>,
    last_frame_seq: Option<u64>,
    /// When set, the pose is linearly extrapolated by its velocity over
    /// this horizon before warping — the pose *prediction* of the
    /// paper's footnote 3 ("we provide the ability to predict the pose
    /// when the frame will actually be displayed").
    predict_horizon: Option<std::time::Duration>,
}

impl TimewarpPlugin {
    /// Creates the plugin.
    pub fn new(config: ReprojectionConfig, distortion: DistortionParams) -> Self {
        Self {
            config,
            mesh: DistortionMesh::new(&distortion),
            apply_distortion: true,
            frame_reader: None,
            pose_reader: None,
            out_writer: None,
            timer: Arc::new(TaskTimer::new()),
            last_frame_seq: None,
            predict_horizon: None,
        }
    }

    /// Disables the distortion/chromatic pass (for A/B experiments).
    pub fn without_distortion(mut self) -> Self {
        self.apply_distortion = false;
        self
    }

    /// Enables pose prediction: extrapolate the freshest pose by its
    /// velocity over `horizon` (typically one display period) before
    /// warping. Reduces effective MTP at the risk of misprediction
    /// (paper footnote 6 explains why the reported MTP metric does not
    /// credit prediction).
    pub fn with_pose_prediction(mut self, horizon: std::time::Duration) -> Self {
        self.predict_horizon = Some(horizon);
        self
    }

    /// Task-level timing (Table VII instrumentation).
    pub fn task_timer(&self) -> Arc<TaskTimer> {
        self.timer.clone()
    }
}

impl Plugin for TimewarpPlugin {
    fn name(&self) -> &str {
        "timewarp"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.frame_reader = Some(
            ctx.switchboard
                .topic::<RenderedFrame>(EYEBUFFER_STREAM)
                .expect("stream")
                .async_reader(),
        );
        self.pose_reader = Some(
            ctx.switchboard
                .topic::<PoseEstimate>(streams::FAST_POSE)
                .expect("stream")
                .async_reader(),
        );
        self.out_writer =
            Some(ctx.switchboard.topic::<WarpedFrame>(DISPLAY_STREAM).expect("stream").writer());
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        // FBO / state setup is modeled by the scheduler cost; the real
        // work here is the warp itself.
        let Some(frame) = self.frame_reader.as_ref().expect("started").latest() else {
            return IterationReport::skipped();
        };
        let mut pose_est = self
            .pose_reader
            .as_ref()
            .expect("started")
            .latest()
            .map(|e| e.data)
            .unwrap_or_else(PoseEstimate::identity);
        let now = ctx.clock.now();
        let pose_age = now - pose_est.timestamp;
        if let Some(horizon) = self.predict_horizon {
            // Linear extrapolation to the predicted display time.
            let dt = (pose_age + horizon).as_secs_f64();
            pose_est.pose.position += pose_est.velocity * dt;
        }

        let warp = |img: &RgbImage| {
            let warped = {
                let _g = self.timer.scope("reprojection");
                reproject(img, &frame.render_pose.pose, &pose_est.pose, &self.config)
            };
            if self.apply_distortion {
                let _g = self.timer.scope("distortion+chromatic");
                self.mesh.apply(&warped)
            } else {
                warped
            }
        };
        let left = Arc::new(warp(&frame.left));
        let right = Arc::new(warp(&frame.right));
        self.out_writer.as_ref().expect("started").put(WarpedFrame {
            left,
            right,
            display_pose: pose_est,
            pose_age,
            warp_time: now,
        });
        // Work factor: re-warping the same frame is as expensive as a
        // fresh one (full-screen pass) — but note repeats for analyses.
        let repeated = self.last_frame_seq == Some(frame.submit_time.as_nanos());
        self.last_frame_seq = Some(frame.submit_time.as_nanos());
        let _ = repeated;
        IterationReport::nominal()
    }
}

/// Stream carrying hologram quality diagnostics.
pub const HOLOGRAM_STREAM: &str = "hologram";

/// Published hologram diagnostics.
#[derive(Debug, Clone)]
pub struct HologramResult {
    /// Per-plane reconstruction correlation.
    pub plane_correlation: Vec<f64>,
}

/// The `hologram` plugin: converts the latest display frame into a
/// two-plane hologram (near = lower half, far = upper half — a crude
/// depth split standing in for real per-pixel depth).
pub struct HologramPlugin {
    config: HologramConfig,
    display_reader: Option<AsyncReader<WarpedFrame>>,
    out_writer: Option<Writer<HologramResult>>,
    timer: Arc<TaskTimer>,
}

impl HologramPlugin {
    /// Creates the plugin.
    pub fn new(config: HologramConfig) -> Self {
        Self { config, display_reader: None, out_writer: None, timer: Arc::new(TaskTimer::new()) }
    }

    /// Task-level timing (Table VII instrumentation).
    pub fn task_timer(&self) -> Arc<TaskTimer> {
        self.timer.clone()
    }
}

impl Plugin for HologramPlugin {
    fn name(&self) -> &str {
        "hologram"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.display_reader = Some(
            ctx.switchboard.topic::<WarpedFrame>(DISPLAY_STREAM).expect("stream").async_reader(),
        );
        self.out_writer = Some(
            ctx.switchboard.topic::<HologramResult>(HOLOGRAM_STREAM).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
        let Some(frame) = self.display_reader.as_ref().expect("started").latest() else {
            return IterationReport::skipped();
        };
        // Downsample the left eye to hologram resolution and split into
        // two depth planes by image half.
        let (w, h) = (self.config.width, self.config.height);
        let luma = frame.left.to_luma();
        let resized = illixr_image::GrayImage::from_fn(w, h, |x, y| {
            let sx = x as f32 / w as f32 * luma.width() as f32;
            let sy = y as f32 / h as f32 * luma.height() as f32;
            luma.sample_bilinear(sx, sy)
        });
        let near = illixr_image::GrayImage::from_fn(w, h, |x, y| {
            if y >= h / 2 {
                resized.get(x, y)
            } else {
                0.0
            }
        });
        let far =
            illixr_image::GrayImage::from_fn(
                w,
                h,
                |x, y| {
                    if y < h / 2 {
                        resized.get(x, y)
                    } else {
                        0.0
                    }
                },
            );
        let holo = compute_hologram(&[near, far], &self.config, Some(&self.timer));
        self.out_writer
            .as_ref()
            .expect("started")
            .put(HologramResult { plane_correlation: holo.plane_correlation });
        IterationReport::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::SimClock;
    use illixr_math::{Pose, Quat, Vec3};

    fn publish_frame(ctx: &PluginContext, t: Time) {
        let img =
            Arc::new(RgbImage::from_fn(64, 64, |x, y| [x as f32 / 64.0, y as f32 / 64.0, 0.5]));
        ctx.switchboard.topic::<RenderedFrame>(EYEBUFFER_STREAM).expect("stream").writer().put(
            RenderedFrame {
                render_pose: PoseEstimate {
                    timestamp: t,
                    pose: Pose::IDENTITY,
                    velocity: Vec3::ZERO,
                },
                submit_time: t,
                left: img.clone(),
                right: img,
            },
        );
    }

    #[test]
    fn timewarp_publishes_corrected_frames_with_pose_age() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let out =
            ctx.switchboard.topic::<WarpedFrame>(DISPLAY_STREAM).expect("stream").sync_reader(8);
        let mut tw = TimewarpPlugin::new(
            ReprojectionConfig::rotational(1.2, 1.0),
            DistortionParams::default(),
        );
        tw.start(&ctx);
        publish_frame(&ctx, Time::from_millis(0));
        ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").writer().put(
            PoseEstimate {
                timestamp: Time::from_millis(14),
                pose: Pose::new(Vec3::ZERO, Quat::from_axis_angle(Vec3::UNIT_Y, 0.05)),
                velocity: Vec3::ZERO,
            },
        );
        clock.advance_to(Time::from_millis(16));
        let report = tw.iterate(&ctx);
        assert!(report.did_work);
        let frame = out.try_recv().unwrap();
        assert_eq!(frame.pose_age, std::time::Duration::from_millis(2));
        assert_eq!(frame.warp_time, Time::from_millis(16));
        assert_eq!(frame.left.width(), 64);
    }

    #[test]
    fn timewarp_skips_without_input_frame() {
        let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
        let mut tw = TimewarpPlugin::new(
            ReprojectionConfig::rotational(1.2, 1.0),
            DistortionParams::default(),
        );
        tw.start(&ctx);
        assert!(!tw.iterate(&ctx).did_work);
    }

    #[test]
    fn timewarp_tasks_are_timed() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let mut tw = TimewarpPlugin::new(
            ReprojectionConfig::rotational(1.2, 1.0),
            DistortionParams::default(),
        );
        tw.start(&ctx);
        publish_frame(&ctx, Time::ZERO);
        tw.iterate(&ctx);
        let names: Vec<String> = tw.task_timer().shares().into_iter().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n == "reprojection"));
        assert!(names.iter().any(|n| n == "distortion+chromatic"));
    }

    #[test]
    fn pose_prediction_extrapolates_along_velocity() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let out =
            ctx.switchboard.topic::<WarpedFrame>(DISPLAY_STREAM).expect("stream").sync_reader(8);
        let mut tw = TimewarpPlugin::new(
            ReprojectionConfig::rotational(1.2, 1.0),
            DistortionParams::default(),
        )
        .with_pose_prediction(std::time::Duration::from_millis(8));
        tw.start(&ctx);
        publish_frame(&ctx, Time::ZERO);
        ctx.switchboard.topic::<PoseEstimate>(streams::FAST_POSE).expect("stream").writer().put(
            PoseEstimate {
                timestamp: Time::from_millis(10),
                pose: Pose::IDENTITY,
                velocity: Vec3::new(1.0, 0.0, 0.0), // 1 m/s along +X
            },
        );
        clock.advance_to(Time::from_millis(12));
        tw.iterate(&ctx);
        let frame = out.try_recv().unwrap();
        // age (2 ms) + horizon (8 ms) at 1 m/s → 10 mm along +X.
        assert!((frame.display_pose.pose.position.x - 0.010).abs() < 1e-9);
    }

    #[test]
    fn hologram_plugin_consumes_display_frames() {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        let mut tw = TimewarpPlugin::new(
            ReprojectionConfig::rotational(1.2, 1.0),
            DistortionParams::default(),
        );
        let mut holo = HologramPlugin::new(HologramConfig {
            width: 32,
            height: 32,
            iterations: 3,
            ..Default::default()
        });
        tw.start(&ctx);
        holo.start(&ctx);
        assert!(!holo.iterate(&ctx).did_work); // nothing displayed yet
        publish_frame(&ctx, Time::ZERO);
        tw.iterate(&ctx);
        let report = holo.iterate(&ctx);
        assert!(report.did_work);
        let result = ctx
            .switchboard
            .topic::<HologramResult>(HOLOGRAM_STREAM)
            .expect("stream")
            .async_reader()
            .latest()
            .unwrap();
        assert_eq!(result.plane_correlation.len(), 2);
    }
}
