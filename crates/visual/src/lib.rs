//! The visual pipeline: asynchronous reprojection, lens-distortion and
//! chromatic-aberration correction, and computational holography
//! (paper Table II, visual pipeline rows).
//!
//! * [`reprojection`] — rotational *and* translational timewarp: warps
//!   the application's (stale) eye buffer to the freshest predicted pose
//!   right before vsync, the latency compensator at the heart of every
//!   XR runtime (§II-A, van Waveren's asynchronous timewarp);
//! * [`distortion`] — mesh-based radial lens distortion with per-channel
//!   coefficients for chromatic aberration correction (Table VII's
//!   "Reprojection" task list includes the correction passes);
//! * [`hologram`] — weighted Gerchberg-Saxton phase retrieval over
//!   multiple depth planes (the adaptive-display component, Table VII);
//! * [`plugins`] — the `timewarp` and `hologram` plugins.

pub mod distortion;
pub mod hologram;
pub mod plugins;
pub mod reprojection;

pub use distortion::{DistortionMesh, DistortionParams};
pub use hologram::{Hologram, HologramConfig};
pub use plugins::{HologramPlugin, TimewarpPlugin, WarpedFrame, DISPLAY_STREAM};
pub use reprojection::{reproject, ReprojectionConfig};
