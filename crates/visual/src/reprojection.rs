//! Asynchronous reprojection (timewarp).
//!
//! The application rendered its frame with a pose that is stale by the
//! time the display refreshes. Reprojection warps the rendered image to
//! the freshest pose: for each output pixel, cast its ray in the *new*
//! eye frame, rotate it by the relative rotation between the new and
//! render poses (rotational timewarp — the version the paper evaluates),
//! optionally add a translational correction assuming a constant scene
//! depth (positional timewarp, which the paper notes was implemented
//! later), then sample the rendered image where that ray landed.

use illixr_image::RgbImage;
use illixr_math::{Pose, Vec3};

/// Reprojection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReprojectionConfig {
    /// Vertical field of view of both the rendered and displayed image,
    /// radians.
    pub fov_y: f64,
    /// Aspect ratio (width / height).
    pub aspect: f64,
    /// When true, adds the translational correction (positional
    /// timewarp) using [`ReprojectionConfig::assumed_depth`].
    pub translational: bool,
    /// Scene depth assumed by the translational correction, meters.
    pub assumed_depth: f64,
}

impl ReprojectionConfig {
    /// Rotation-only timewarp (the paper's evaluated configuration).
    pub fn rotational(fov_y: f64, aspect: f64) -> Self {
        Self { fov_y, aspect, translational: false, assumed_depth: 2.0 }
    }

    /// Rotational + translational timewarp.
    pub fn translational(fov_y: f64, aspect: f64, assumed_depth: f64) -> Self {
        Self { fov_y, aspect, translational: true, assumed_depth }
    }
}

/// Warps `rendered` (drawn at `render_pose`) to `display_pose`.
///
/// Both poses are eye poses looking along their −Z axes. Pixels whose
/// source ray falls outside the rendered image are filled black (the
/// visible "pull-in" at frame edges real timewarp exhibits).
pub fn reproject(
    rendered: &RgbImage,
    render_pose: &Pose,
    display_pose: &Pose,
    config: &ReprojectionConfig,
) -> RgbImage {
    let (w, h) = (rendered.width(), rendered.height());
    let tan_half_y = (config.fov_y / 2.0).tan();
    let tan_half_x = tan_half_y * config.aspect;
    // Rotation taking display-eye directions into render-eye directions.
    let q_rel = render_pose.orientation.inverse() * display_pose.orientation;
    // Translation of the display eye expressed in the render eye frame.
    let t_rel =
        render_pose.orientation.inverse().rotate(display_pose.position - render_pose.position);
    RgbImage::from_fn(w, h, |x, y| {
        // Pixel → normalized device coords → ray in the display eye.
        let ndc_x = (x as f64 + 0.5) / w as f64 * 2.0 - 1.0;
        let ndc_y = 1.0 - (y as f64 + 0.5) / h as f64 * 2.0;
        let dir_display = Vec3::new(ndc_x * tan_half_x, ndc_y * tan_half_y, -1.0);
        // Rotate into the render eye.
        let mut dir_render = q_rel.rotate(dir_display);
        if config.translational {
            // The ray hits the assumed-depth plane at p = t_rel + s·dir
            // (display-eye origin offset by t_rel in the render frame).
            // Re-aim the render-eye ray at that world point.
            let s = config.assumed_depth / (-dir_display.z).max(1e-6);
            let p = t_rel + dir_render * s;
            dir_render = p;
        }
        if dir_render.z >= -1e-6 {
            return [0.0, 0.0, 0.0]; // behind the render eye
        }
        // Project into the rendered image.
        let u = dir_render.x / -dir_render.z / tan_half_x;
        let v = dir_render.y / -dir_render.z / tan_half_y;
        if u.abs() > 1.0 || v.abs() > 1.0 {
            return [0.0, 0.0, 0.0];
        }
        let src_x = (u + 1.0) * 0.5 * w as f64 - 0.5;
        let src_y = (1.0 - v) * 0.5 * h as f64 - 0.5;
        rendered.sample_bilinear(src_x as f32, src_y as f32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_math::Quat;

    fn test_image() -> RgbImage {
        // A distinctive pattern: red gradient left-right, blue blocks.
        RgbImage::from_fn(64, 64, |x, y| {
            [x as f32 / 64.0, 0.3, if (y / 8) % 2 == 0 { 0.8 } else { 0.2 }]
        })
    }

    fn config() -> ReprojectionConfig {
        ReprojectionConfig::rotational(1.2, 1.0)
    }

    #[test]
    fn identity_pose_is_near_identity_warp() {
        let img = test_image();
        let pose = Pose::IDENTITY;
        let out = reproject(&img, &pose, &pose, &config());
        assert!(img.mean_abs_diff(&out) < 0.01, "diff {}", img.mean_abs_diff(&out));
    }

    #[test]
    fn yaw_rotation_shifts_image_horizontally() {
        let img = test_image();
        let render = Pose::IDENTITY;
        // Display eye rotated left (+yaw about Y): the world appears to
        // shift right in the new view.
        let display = Pose::new(Vec3::ZERO, Quat::from_axis_angle(Vec3::UNIT_Y, 0.1));
        let out = reproject(&img, &render, &display, &config());
        // The red gradient encodes source x; sample the center row.
        let before = img.get(32, 32)[0];
        let after = out.get(32, 32)[0];
        assert!(
            after < before - 0.02,
            "rotating view left should sample farther left: {after} vs {before}"
        );
    }

    #[test]
    fn edges_fill_black_after_large_rotation() {
        let img = test_image();
        let display = Pose::new(Vec3::ZERO, Quat::from_axis_angle(Vec3::UNIT_Y, 0.5));
        let out = reproject(&img, &Pose::IDENTITY, &display, &config());
        // One trailing edge column must be entirely fresh black pixels.
        let column_black = |x: usize| (0..64).all(|y| out.get(x, y) == [0.0, 0.0, 0.0]);
        assert!(column_black(0) || column_black(63), "no black edge after large rotation");
    }

    #[test]
    fn translational_warp_responds_to_position_change() {
        let img = test_image();
        let cfg = ReprojectionConfig::translational(1.2, 1.0, 2.0);
        let moved = Pose::new(Vec3::new(0.1, 0.0, 0.0), Quat::IDENTITY);
        let out_translational = reproject(&img, &Pose::IDENTITY, &moved, &cfg);
        let out_rotational = reproject(&img, &Pose::IDENTITY, &moved, &config());
        // Rotational-only ignores translation entirely.
        assert!(img.mean_abs_diff(&out_rotational) < 0.01);
        assert!(img.mean_abs_diff(&out_translational) > 0.01);
    }

    #[test]
    fn small_rotation_is_locally_consistent() {
        // Warping by +θ then viewing the result where −θ would land
        // approximately recovers the original center pixel.
        let img = test_image();
        let display = Pose::new(Vec3::ZERO, Quat::from_axis_angle(Vec3::UNIT_X, 0.05));
        let out = reproject(&img, &Pose::IDENTITY, &display, &config());
        let back = reproject(&out, &display, &Pose::IDENTITY, &config());
        let a = img.get(32, 32);
        let b = back.get(32, 32);
        // The blue channel carries hard 8-px stripes that two bilinear
        // resamplings legitimately smear; check the smooth channels.
        for c in 0..2 {
            assert!((a[c] - b[c]).abs() < 0.12, "channel {c}: {} vs {}", a[c], b[c]);
        }
    }
}
