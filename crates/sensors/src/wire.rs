//! Boundary payload codecs for the sensor streams.
//!
//! The determinism boundary records the *physical input*, which for
//! sensors is smaller than the published value: an IMU record is the
//! post-fault measurement (56 bytes), and a camera record is the head
//! pose the frame was rendered from (80 bytes) — the frame image is a
//! pure function of `(world(seed), rig, pose)`, so replay re-renders
//! instead of storing ~600 kB of pixels per frame.
//!
//! Timestamps are stored as signed deltas from the record tag (the
//! boundary-crossing time): a replay transform that dilates tags scales
//! the deltas by the same factor, so payload timestamps keep tracking
//! delivery times and derived metrics (pose age, motion-to-photon)
//! stay meaningful in fanned-out sessions.

use illixr_core::boundary::{ByteReader, ByteWriter, SessionTransform};
use illixr_core::Time;
use illixr_math::{Pose, Quat, Vec3};

use crate::types::ImuSample;

/// The boundary-side content of one camera frame: everything needed to
/// re-render and re-publish it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraRecord {
    /// Published frame timestamp (stale inside a freeze window).
    pub timestamp: Time,
    /// Published sequence number.
    pub seq: u64,
    /// Iteration work factor (1.0 fresh, 0.1 frozen).
    pub work_factor: f64,
    /// Head pose the frame content was rendered from.
    pub pose: Pose,
}

/// Apply a (possibly dilated) signed delta to a transformed tag,
/// saturating at zero.
fn tag_plus_delta(tag_ns: u64, delta_ns: i64) -> Time {
    Time::from_nanos((tag_ns as i128 + delta_ns as i128).max(0) as u64)
}

fn put_vec3(w: &mut ByteWriter, v: Vec3) {
    w.put_f64(v.x);
    w.put_f64(v.y);
    w.put_f64(v.z);
}

fn take_vec3(r: &mut ByteReader) -> Option<Vec3> {
    Some(Vec3::new(r.take_f64().ok()?, r.take_f64().ok()?, r.take_f64().ok()?))
}

/// Encode a camera record tagged at boundary time `tag`.
pub fn encode_camera(rec: &CameraRecord, tag: Time) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_i64(rec.timestamp.as_nanos() as i64 - tag.as_nanos() as i64);
    w.put_u64(rec.seq);
    w.put_f64(rec.work_factor);
    put_vec3(&mut w, rec.pose.position);
    w.put_f64(rec.pose.orientation.w);
    w.put_f64(rec.pose.orientation.x);
    w.put_f64(rec.pose.orientation.y);
    w.put_f64(rec.pose.orientation.z);
    w.into_bytes()
}

/// Decode a camera record popped at (already transformed) tag
/// `tag_ns`, scaling its timestamp delta by `transform`.
pub fn decode_camera(
    payload: &[u8],
    tag_ns: u64,
    transform: &SessionTransform,
) -> Option<CameraRecord> {
    let mut r = ByteReader::new(payload);
    let delta = transform.scale_delta(r.take_i64().ok()?);
    let seq = r.take_u64().ok()?;
    let work_factor = r.take_f64().ok()?;
    let position = take_vec3(&mut r)?;
    let orientation =
        Quat::new(r.take_f64().ok()?, r.take_f64().ok()?, r.take_f64().ok()?, r.take_f64().ok()?);
    r.is_empty().then(|| CameraRecord {
        timestamp: tag_plus_delta(tag_ns, delta),
        seq,
        work_factor,
        // The recorded quaternion is already normalized; `Pose::new`
        // would re-normalize, which is not idempotent to the last ulp
        // and would break the codec's bit-exact round trip.
        pose: Pose { position, orientation },
    })
}

/// Encode a post-fault IMU sample tagged at boundary time `tag`.
pub fn encode_imu(sample: &ImuSample, tag: Time) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_i64(sample.timestamp.as_nanos() as i64 - tag.as_nanos() as i64);
    put_vec3(&mut w, sample.gyro);
    put_vec3(&mut w, sample.accel);
    w.into_bytes()
}

/// Decode an IMU sample popped at (already transformed) tag `tag_ns`.
pub fn decode_imu(payload: &[u8], tag_ns: u64, transform: &SessionTransform) -> Option<ImuSample> {
    let mut r = ByteReader::new(payload);
    let delta = transform.scale_delta(r.take_i64().ok()?);
    let gyro = take_vec3(&mut r)?;
    let accel = take_vec3(&mut r)?;
    r.is_empty().then(|| ImuSample { timestamp: tag_plus_delta(tag_ns, delta), gyro, accel })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID: SessionTransform = SessionTransform::IDENTITY;

    #[test]
    fn camera_record_round_trips_bit_exactly() {
        let rec = CameraRecord {
            timestamp: Time::from_nanos(66_000_123),
            seq: 42,
            work_factor: 0.1,
            pose: Pose::new(Vec3::new(1.5, -2.25, 0.125), Quat::new(0.7072, 0.0, -0.7072, 1e-17)),
        };
        let tag = Time::from_nanos(67_000_000);
        let bytes = encode_camera(&rec, tag);
        assert_eq!(bytes.len(), 80);
        let back = decode_camera(&bytes, tag.as_nanos(), &ID).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn imu_sample_round_trips_bit_exactly() {
        let s = ImuSample {
            timestamp: Time::from_nanos(2_000_000),
            gyro: Vec3::new(0.01, -0.02, 0.03),
            accel: Vec3::new(-9.81, 0.001, 1e-300),
        };
        let tag = Time::from_nanos(2_000_000);
        let bytes = encode_imu(&s, tag);
        assert_eq!(bytes.len(), 56);
        assert_eq!(decode_imu(&bytes, tag.as_nanos(), &ID).unwrap(), s);
    }

    #[test]
    fn dilation_scales_timestamp_deltas() {
        let s = ImuSample { timestamp: Time::from_nanos(900), gyro: Vec3::ZERO, accel: Vec3::ZERO };
        let bytes = encode_imu(&s, Time::from_nanos(1_000)); // delta −100
        let t = SessionTransform { offset_ns: 0, dilation: 2.0 };
        // Popped at transformed tag 2_000: timestamp = 2_000 + 2·(−100).
        let back = decode_imu(&bytes, 2_000, &t).unwrap();
        assert_eq!(back.timestamp, Time::from_nanos(1_800));
    }

    #[test]
    fn truncated_payloads_decode_to_none() {
        let s = ImuSample { timestamp: Time::ZERO, gyro: Vec3::ZERO, accel: Vec3::ZERO };
        let bytes = encode_imu(&s, Time::ZERO);
        assert!(decode_imu(&bytes[..bytes.len() - 1], 0, &ID).is_none());
        assert!(decode_camera(&bytes, 0, &ID).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_imu(&long, 0, &ID).is_none(), "trailing bytes rejected");
    }
}
