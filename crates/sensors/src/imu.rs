//! The IMU error model.
//!
//! Samples a [`Trajectory`] into gyroscope and accelerometer readings
//! with the standard MEMS error model: additive white noise plus a bias
//! random walk, with gravity folded into the specific force. Parameters
//! default to ZED-Mini-class values (the paper's sensor, Table II).

use illixr_core::Time;
use illixr_math::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trajectory::Trajectory;
use crate::types::ImuSample;

/// Standard gravity, m/s².
pub const GRAVITY: f64 = 9.80665;

/// IMU noise/bias parameters (continuous-time densities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuNoise {
    /// Gyro white-noise density, rad/s/√Hz.
    pub gyro_noise_density: f64,
    /// Accel white-noise density, m/s²/√Hz.
    pub accel_noise_density: f64,
    /// Gyro bias random-walk density, rad/s²/√Hz.
    pub gyro_bias_walk: f64,
    /// Accel bias random-walk density, m/s³/√Hz.
    pub accel_bias_walk: f64,
}

impl Default for ImuNoise {
    /// ZED-Mini-class MEMS IMU.
    fn default() -> Self {
        Self {
            gyro_noise_density: 8.7e-4,
            accel_noise_density: 1.4e-3,
            gyro_bias_walk: 1.0e-5,
            accel_bias_walk: 8.0e-5,
        }
    }
}

/// Generates IMU samples along a trajectory.
///
/// # Examples
///
/// ```
/// use illixr_sensors::{ImuModel, Trajectory};
/// use illixr_core::Time;
///
/// let traj = Trajectory::walking(1);
/// let mut imu = ImuModel::new(traj, Default::default(), 500.0, 1);
/// let s = imu.next_sample();
/// assert_eq!(s.timestamp, Time::ZERO);
/// // A stationary-ish headset still measures ~1 g of specific force.
/// assert!(s.accel.norm() > 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct ImuModel {
    trajectory: Trajectory,
    noise: ImuNoise,
    rate_hz: f64,
    rng: StdRng,
    gyro_bias: Vec3,
    accel_bias: Vec3,
    next_index: u64,
}

impl ImuModel {
    /// Creates a model sampling `trajectory` at `rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics when `rate_hz` is not positive.
    pub fn new(trajectory: Trajectory, noise: ImuNoise, rate_hz: f64, seed: u64) -> Self {
        assert!(rate_hz > 0.0, "IMU rate must be positive");
        Self {
            trajectory,
            noise,
            rate_hz,
            rng: StdRng::seed_from_u64(seed ^ 0x1b1),
            gyro_bias: Vec3::ZERO,
            accel_bias: Vec3::ZERO,
            next_index: 0,
        }
    }

    /// The sampling rate.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// The ideal (noise-free) sample at time `t` — used by tests and by
    /// integrator accuracy analysis.
    pub fn ideal_sample(&self, t: Time) -> ImuSample {
        let pose = self.trajectory.pose(t);
        let a_world = self.trajectory.acceleration(t) + Vec3::new(0.0, GRAVITY, 0.0);
        ImuSample {
            timestamp: t,
            gyro: self.trajectory.angular_velocity(t),
            accel: pose.orientation.inverse().rotate(a_world),
        }
    }

    /// Generates the next sample in the regular 1/rate sequence,
    /// advancing bias random walks.
    pub fn next_sample(&mut self) -> ImuSample {
        let dt = 1.0 / self.rate_hz;
        let t = Time::from_secs_f64(self.next_index as f64 * dt);
        self.next_index += 1;
        // Discretized densities.
        let gyro_sigma = self.noise.gyro_noise_density * self.rate_hz.sqrt();
        let accel_sigma = self.noise.accel_noise_density * self.rate_hz.sqrt();
        let gyro_walk = self.noise.gyro_bias_walk * dt.sqrt();
        let accel_walk = self.noise.accel_bias_walk * dt.sqrt();
        let gyro_step = self.gaussian_vec() * gyro_walk;
        self.gyro_bias += gyro_step;
        let accel_step = self.gaussian_vec() * accel_walk;
        self.accel_bias += accel_step;
        let ideal = self.ideal_sample(t);
        ImuSample {
            timestamp: t,
            gyro: ideal.gyro + self.gyro_bias + self.gaussian_vec() * gyro_sigma,
            accel: ideal.accel + self.accel_bias + self.gaussian_vec() * accel_sigma,
        }
    }

    fn gaussian_vec(&mut self) -> Vec3 {
        Vec3::new(self.gaussian(), self.gaussian(), self.gaussian())
    }

    fn gaussian(&mut self) -> f64 {
        // Box-Muller.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::MotionProfile;

    #[test]
    fn ideal_sample_measures_gravity_when_still() {
        // A "gentle" trajectory at t where acceleration is small still
        // reads close to 1 g.
        let traj = Trajectory::new(MotionProfile::Gentle, 2);
        let imu = ImuModel::new(traj, ImuNoise::default(), 500.0, 2);
        let s = imu.ideal_sample(Time::ZERO);
        assert!((s.accel.norm() - GRAVITY).abs() < 2.0, "norm {}", s.accel.norm());
    }

    #[test]
    fn samples_advance_at_rate() {
        let traj = Trajectory::walking(1);
        let mut imu = ImuModel::new(traj, ImuNoise::default(), 500.0, 1);
        let a = imu.next_sample();
        let b = imu.next_sample();
        assert_eq!((b.timestamp - a.timestamp).as_micros(), 2000);
    }

    #[test]
    fn noisy_samples_center_on_ideal() {
        let traj = Trajectory::new(MotionProfile::Gentle, 3);
        let mut imu = ImuModel::new(traj.clone(), ImuNoise::default(), 500.0, 3);
        let mut err_sum = Vec3::ZERO;
        let n = 2000;
        for _ in 0..n {
            let s = imu.next_sample();
            let ideal = imu.ideal_sample(s.timestamp);
            err_sum += s.gyro - ideal.gyro;
        }
        let mean_err = err_sum / n as f64;
        // Mean error should be tiny (bias walk is slow).
        assert!(mean_err.norm() < 0.01, "mean err {mean_err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let mut imu = ImuModel::new(Trajectory::walking(9), ImuNoise::default(), 500.0, 9);
            (0..100).map(|_| imu.next_sample()).collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let _ = ImuModel::new(Trajectory::walking(1), ImuNoise::default(), 0.0, 1);
    }
}
