//! Smooth synthetic head trajectories.
//!
//! A trajectory is a sum of sinusoids per translational axis plus
//! sinusoidal yaw/pitch/roll — infinitely differentiable, so the IMU
//! model can sample exact analytic velocity, acceleration and angular
//! velocity (no numerical differentiation noise). Presets mimic the kinds
//! of motion in the paper's experiments: a user walking a practiced loop
//! in a lab, and the EuRoC drone sequences.

use illixr_core::Time;
use illixr_math::{Pose, Quat, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One sinusoidal term: `amplitude · sin(2π·freq·t + phase)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Sinusoid {
    amplitude: f64,
    freq_hz: f64,
    phase: f64,
}

impl Sinusoid {
    fn value(&self, t: f64) -> f64 {
        self.amplitude * (2.0 * std::f64::consts::PI * self.freq_hz * t + self.phase).sin()
    }
    fn d1(&self, t: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * self.freq_hz;
        self.amplitude * w * (w * t + self.phase).cos()
    }
    fn d2(&self, t: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * self.freq_hz;
        -self.amplitude * w * w * (w * t + self.phase).sin()
    }
}

/// Motion intensity presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MotionProfile {
    /// Slow head motion while seated (AR demo viewing).
    Gentle,
    /// A user walking a loop in a lab — the paper's live trajectory.
    Walking,
    /// Aggressive motion akin to EuRoC "medium/difficult" sequences.
    Vigorous,
}

/// A smooth, deterministic 6-DoF trajectory.
///
/// # Examples
///
/// ```
/// use illixr_sensors::Trajectory;
/// use illixr_core::Time;
///
/// let traj = Trajectory::walking(42);
/// let pose = traj.pose(Time::from_millis(500));
/// assert!(pose.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Trajectory {
    position: [Vec<Sinusoid>; 3],
    attitude: [Vec<Sinusoid>; 3], // yaw, pitch, roll
}

impl Trajectory {
    /// Creates a trajectory from a motion profile and RNG seed.
    pub fn new(profile: MotionProfile, seed: u64) -> Self {
        let (pos_amp, pos_freq, att_amp, att_freq, terms) = match profile {
            MotionProfile::Gentle => (0.08, 0.3, 0.12, 0.25, 2),
            MotionProfile::Walking => (0.5, 0.5, 0.35, 0.6, 3),
            MotionProfile::Vigorous => (1.0, 1.1, 0.7, 1.3, 4),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen_terms = |amp: f64, freq: f64| -> Vec<Sinusoid> {
            (0..terms)
                .map(|k| Sinusoid {
                    // Higher harmonics have smaller amplitudes (pink-ish).
                    amplitude: amp * rng.gen_range(0.5..1.0) / (k + 1) as f64,
                    freq_hz: freq * rng.gen_range(0.6..1.4) * (k + 1) as f64,
                    phase: rng.gen_range(0.0..std::f64::consts::TAU),
                })
                .collect()
        };
        Self {
            position: [
                gen_terms(pos_amp, pos_freq),
                gen_terms(pos_amp, pos_freq),
                gen_terms(pos_amp * 0.3, pos_freq),
            ],
            attitude: [
                gen_terms(att_amp, att_freq),
                gen_terms(att_amp * 0.5, att_freq),
                gen_terms(att_amp * 0.3, att_freq),
            ],
        }
    }

    /// A walking-profile trajectory (the paper's live setup).
    pub fn walking(seed: u64) -> Self {
        Self::new(MotionProfile::Walking, seed)
    }

    /// A gentle seated trajectory.
    pub fn gentle(seed: u64) -> Self {
        Self::new(MotionProfile::Gentle, seed)
    }

    fn sum(terms: &[Sinusoid], t: f64, f: impl Fn(&Sinusoid, f64) -> f64) -> f64 {
        terms.iter().map(|s| f(s, t)).sum()
    }

    /// Euler angles (yaw, pitch, roll) at time `t` in seconds.
    fn euler(&self, t: f64) -> (f64, f64, f64) {
        (
            Self::sum(&self.attitude[0], t, Sinusoid::value),
            Self::sum(&self.attitude[1], t, Sinusoid::value),
            Self::sum(&self.attitude[2], t, Sinusoid::value),
        )
    }

    /// Pose (body → world) at time `t`.
    pub fn pose(&self, t: Time) -> Pose {
        let ts = t.as_secs_f64();
        let p = Vec3::new(
            Self::sum(&self.position[0], ts, Sinusoid::value),
            Self::sum(&self.position[1], ts, Sinusoid::value),
            Self::sum(&self.position[2], ts, Sinusoid::value),
        );
        let (yaw, pitch, roll) = self.euler(ts);
        Pose::new(p, Quat::from_euler(yaw, pitch, roll))
    }

    /// Linear velocity in the world frame at time `t`, m/s.
    pub fn velocity(&self, t: Time) -> Vec3 {
        let ts = t.as_secs_f64();
        Vec3::new(
            Self::sum(&self.position[0], ts, Sinusoid::d1),
            Self::sum(&self.position[1], ts, Sinusoid::d1),
            Self::sum(&self.position[2], ts, Sinusoid::d1),
        )
    }

    /// Linear acceleration in the world frame at time `t`, m/s².
    pub fn acceleration(&self, t: Time) -> Vec3 {
        let ts = t.as_secs_f64();
        Vec3::new(
            Self::sum(&self.position[0], ts, Sinusoid::d2),
            Self::sum(&self.position[1], ts, Sinusoid::d2),
            Self::sum(&self.position[2], ts, Sinusoid::d2),
        )
    }

    /// Angular velocity in the **body** frame at time `t`, rad/s.
    ///
    /// Computed from the ZYX Euler-rate kinematics:
    /// `ω_body = E(yaw,pitch,roll) · (yaẇ, pitcḣ, rolḣ)`.
    pub fn angular_velocity(&self, t: Time) -> Vec3 {
        let ts = t.as_secs_f64();
        let (_, pitch, roll) = self.euler(ts);
        let dyaw = Self::sum(&self.attitude[0], ts, Sinusoid::d1);
        let dpitch = Self::sum(&self.attitude[1], ts, Sinusoid::d1);
        let droll = Self::sum(&self.attitude[2], ts, Sinusoid::d1);
        // Body rates for ZYX (yaw-pitch-roll) Euler angles.
        let (sr, cr) = roll.sin_cos();
        let (sp, cp) = pitch.sin_cos();
        Vec3::new(droll - dyaw * sp, dpitch * cr + dyaw * cp * sr, -dpitch * sr + dyaw * cp * cr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let a = Trajectory::walking(7);
        let b = Trajectory::walking(7);
        let t = Time::from_millis(1234);
        assert_eq!(a.pose(t), b.pose(t));
        let c = Trajectory::walking(8);
        assert_ne!(a.pose(t), c.pose(t));
    }

    #[test]
    fn velocity_matches_finite_difference() {
        let traj = Trajectory::walking(3);
        let t = 2.0;
        let h = 1e-5;
        let p1 = traj.pose(Time::from_secs_f64(t - h)).position;
        let p2 = traj.pose(Time::from_secs_f64(t + h)).position;
        let fd = (p2 - p1) / (2.0 * h);
        let v = traj.velocity(Time::from_secs_f64(t));
        assert!((fd - v).norm() < 1e-5, "fd {fd} analytic {v}");
    }

    #[test]
    fn acceleration_matches_finite_difference() {
        let traj = Trajectory::walking(3);
        let t = 1.5;
        let h = 1e-4;
        let v1 = traj.velocity(Time::from_secs_f64(t - h));
        let v2 = traj.velocity(Time::from_secs_f64(t + h));
        let fd = (v2 - v1) / (2.0 * h);
        let a = traj.acceleration(Time::from_secs_f64(t));
        assert!((fd - a).norm() < 1e-4, "fd {fd} analytic {a}");
    }

    #[test]
    fn angular_velocity_matches_quaternion_derivative() {
        let traj = Trajectory::walking(5);
        let t = 3.1;
        let h = 1e-6;
        let q1 = traj.pose(Time::from_secs_f64(t)).orientation;
        let q2 = traj.pose(Time::from_secs_f64(t + h)).orientation;
        // ω_body ≈ 2/h · vec(q1⁻¹ q2)
        let dq = q1.inverse() * q2;
        let fd = Vec3::new(dq.x, dq.y, dq.z) * (2.0 / h);
        let w = traj.angular_velocity(Time::from_secs_f64(t));
        assert!((fd - w).norm() < 1e-3, "fd {fd} analytic {w}");
    }

    #[test]
    fn vigorous_moves_more_than_gentle() {
        let g = Trajectory::new(MotionProfile::Gentle, 1);
        let v = Trajectory::new(MotionProfile::Vigorous, 1);
        let mut g_speed = 0.0;
        let mut v_speed = 0.0;
        for i in 0..100 {
            let t = Time::from_millis(i * 100);
            g_speed += g.velocity(t).norm();
            v_speed += v.velocity(t).norm();
        }
        assert!(v_speed > 2.0 * g_speed);
    }

    #[test]
    fn poses_are_always_finite() {
        let traj = Trajectory::new(MotionProfile::Vigorous, 99);
        for i in 0..1000 {
            let t = Time::from_millis(i * 37);
            assert!(traj.pose(t).is_finite());
        }
    }
}
