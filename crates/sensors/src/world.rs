//! The synthetic landmark world the camera observes.
//!
//! A room-sized box populated with point landmarks. Frames are rendered
//! by projecting landmarks through the stereo rig and splatting small
//! Gaussian blobs over a low-frequency shaded background — enough real
//! image structure for the VIO front end's FAST detector and KLT tracker
//! to operate on actual pixels, which is what makes VIO's runtime
//! input-dependent (paper §IV-B). The same world provides analytic depth
//! images (distance to the room walls) for scene reconstruction.

use illixr_image::GrayImage;
use illixr_math::{Pose, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::camera::StereoRig;

/// A box room with point landmarks.
#[derive(Debug, Clone)]
pub struct LandmarkWorld {
    landmarks: Vec<Vec3>,
    /// Half-extents of the room along x, y, z.
    half_extent: Vec3,
}

impl LandmarkWorld {
    /// Creates a world with `num_landmarks` points scattered on the walls
    /// of a `2·half_extent` box, deterministically from `seed`.
    pub fn new(num_landmarks: usize, half_extent: Vec3, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x576f_726c_6400); // "World" << 8
        let mut landmarks = Vec::with_capacity(num_landmarks);
        for _ in 0..num_landmarks {
            // Pick a wall (one coordinate pinned to ±half extent) so
            // landmarks sit on surfaces, like visual texture in a room.
            let axis = rng.gen_range(0..3usize);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let mut p = Vec3::new(
                rng.gen_range(-half_extent.x..half_extent.x),
                rng.gen_range(-half_extent.y..half_extent.y),
                rng.gen_range(-half_extent.z..half_extent.z),
            );
            p[axis] = sign * half_extent[axis];
            landmarks.push(p);
        }
        Self { landmarks, half_extent }
    }

    /// A default lab-sized room (8 × 5 × 8 m) with 240 landmarks.
    pub fn lab(seed: u64) -> Self {
        Self::new(240, Vec3::new(4.0, 2.5, 4.0), seed)
    }

    /// The landmark positions.
    pub fn landmarks(&self) -> &[Vec3] {
        &self.landmarks
    }

    /// Renders the intensity image seen by `eye` (0 = left, 1 = right) of
    /// the rig at `body_pose`.
    pub fn render(&self, rig: &StereoRig, body_pose: &Pose, eye: usize) -> GrayImage {
        let cam = rig.camera;
        // Low-frequency background shading keyed to view direction so the
        // image is not flat (KLT needs *some* gradient everywhere).
        let fwd = body_pose.transform_vector(Vec3::UNIT_Z);
        let mut img = GrayImage::from_fn(cam.width, cam.height, |x, y| {
            let u = x as f32 / cam.width as f32;
            let v = y as f32 / cam.height as f32;
            0.28 + 0.08 * (u * 6.0 + fwd.x as f32).sin() * (v * 5.0 + fwd.z as f32).cos()
        });
        // Splat landmarks as Gaussian blobs; nearer landmarks are larger.
        for (i, &lm) in self.landmarks.iter().enumerate() {
            let Some(px) = rig.project_world(body_pose, lm, eye) else { continue };
            let cam_pose = body_pose.compose(&rig.body_from_left);
            let depth = cam_pose.inverse().transform_point(lm).z;
            if depth <= 0.2 {
                continue;
            }
            let radius = (3.5 / depth as f32).clamp(1.2, 5.0);
            let brightness = 0.55 + 0.4 * ((i * 2654435761) % 97) as f32 / 97.0;
            splat_gaussian(&mut img, px.x as f32, px.y as f32, radius, brightness);
        }
        img
    }

    /// Renders a depth image (meters to the room walls) for the left eye.
    ///
    /// This is the synthetic stand-in for the RGB-D input that
    /// ElasticFusion consumes (dyson_lab dataset in the paper).
    pub fn render_depth(&self, rig: &StereoRig, body_pose: &Pose) -> GrayImage {
        let cam = rig.camera;
        let cam_pose = body_pose.compose(&rig.body_from_left);
        let origin = cam_pose.position;
        GrayImage::from_fn(cam.width, cam.height, |x, y| {
            let ray_cam = cam.unproject(illixr_math::Vec2::new(x as f64, y as f64)).normalized();
            let ray_world = cam_pose.transform_vector(ray_cam);
            match self.ray_to_box(origin, ray_world) {
                Some(t) => t as f32,
                None => 0.0, // invalid depth (outside the room looking out)
            }
        })
    }

    /// Distance along `dir` from `origin` to the inside of the room box.
    fn ray_to_box(&self, origin: Vec3, dir: Vec3) -> Option<f64> {
        let mut best: Option<f64> = None;
        for axis in 0..3 {
            for sign in [-1.0, 1.0] {
                let wall = sign * self.half_extent[axis];
                let d = dir[axis];
                if d.abs() < 1e-12 {
                    continue;
                }
                let t = (wall - origin[axis]) / d;
                if t <= 1e-6 {
                    continue;
                }
                // Check the hit point is within the other two extents.
                let hit = origin + dir * t;
                let ok = (0..3).all(|a| a == axis || hit[a].abs() <= self.half_extent[a] + 1e-9);
                if ok && best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }
}

/// Additively splats a Gaussian blob (clamped to [0, 1]).
fn splat_gaussian(img: &mut GrayImage, cx: f32, cy: f32, radius: f32, brightness: f32) {
    let r = (radius * 2.5).ceil() as i32;
    let inv_2s2 = 1.0 / (2.0 * radius * radius);
    for dy in -r..=r {
        for dx in -r..=r {
            let x = cx as i32 + dx;
            let y = cy as i32 + dy;
            if x < 0 || y < 0 || x as usize >= img.width() || y as usize >= img.height() {
                continue;
            }
            let fx = x as f32 - cx;
            let fy = y as f32 - cy;
            let w = (-(fx * fx + fy * fy) * inv_2s2).exp();
            let old = img.get(x as usize, y as usize);
            img.set(x as usize, y as usize, (old + brightness * w).min(1.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::PinholeCamera;

    fn setup() -> (LandmarkWorld, StereoRig) {
        (
            LandmarkWorld::new(120, Vec3::new(4.0, 2.5, 4.0), 7),
            StereoRig::zed_mini(PinholeCamera::qvga()),
        )
    }

    #[test]
    fn landmarks_on_walls() {
        let (world, _) = setup();
        for lm in world.landmarks() {
            let on_wall = (lm.x.abs() - 4.0).abs() < 1e-9
                || (lm.y.abs() - 2.5).abs() < 1e-9
                || (lm.z.abs() - 4.0).abs() < 1e-9;
            assert!(on_wall, "landmark {lm} not on a wall");
        }
    }

    #[test]
    fn render_has_texture() {
        let (world, rig) = setup();
        let img = world.render(&rig, &Pose::IDENTITY, 0);
        let mean = img.mean();
        assert!(mean > 0.1 && mean < 0.9, "mean {mean}");
        // Variance must be non-trivial (blobs + background).
        let var: f32 = img.as_slice().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>()
            / img.as_slice().len() as f32;
        assert!(var > 1e-4, "variance {var}");
    }

    #[test]
    fn render_changes_with_pose() {
        let (world, rig) = setup();
        let a = world.render(&rig, &Pose::IDENTITY, 0);
        let moved = Pose::new(Vec3::new(0.5, 0.0, 0.0), illixr_math::Quat::IDENTITY);
        let b = world.render(&rig, &moved, 0);
        assert!(a.mean_abs_diff(&b) > 1e-4);
    }

    #[test]
    fn stereo_eyes_differ() {
        let (world, rig) = setup();
        let l = world.render(&rig, &Pose::IDENTITY, 0);
        let r = world.render(&rig, &Pose::IDENTITY, 1);
        assert!(l.mean_abs_diff(&r) > 1e-5);
    }

    #[test]
    fn depth_inside_room_is_bounded() {
        let (world, rig) = setup();
        let depth = world.render_depth(&rig, &Pose::IDENTITY);
        let diag = (4.0f32 * 4.0 + 2.5 * 2.5 + 4.0 * 4.0).sqrt() * 2.0;
        for &d in depth.as_slice() {
            assert!(d > 0.0 && d <= diag, "depth {d}");
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = LandmarkWorld::new(50, Vec3::new(1.0, 1.0, 1.0), 3);
        let b = LandmarkWorld::new(50, Vec3::new(1.0, 1.0, 1.0), 3);
        assert_eq!(a.landmarks(), b.landmarks());
    }
}
