//! Pinhole and stereo camera models.

use illixr_math::{Pose, Vec2, Vec3};

/// A pinhole camera intrinsic model.
///
/// The camera frame follows the usual computer-vision convention:
/// +X right, +Y down, +Z forward (into the scene).
///
/// # Examples
///
/// ```
/// use illixr_sensors::PinholeCamera;
/// use illixr_math::Vec3;
///
/// let cam = PinholeCamera::vga();
/// let px = cam.project(Vec3::new(0.0, 0.0, 2.0)).unwrap();
/// assert!((px.x - cam.cx).abs() < 1e-9); // on-axis point lands at the principal point
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinholeCamera {
    /// Focal length (pixels), x.
    pub fx: f64,
    /// Focal length (pixels), y.
    pub fy: f64,
    /// Principal point x.
    pub cx: f64,
    /// Principal point y.
    pub cy: f64,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
}

impl PinholeCamera {
    /// The VGA configuration used in the integrated experiments
    /// (Table III: VGA resolution for the VIO camera).
    pub fn vga() -> Self {
        Self { fx: 380.0, fy: 380.0, cx: 320.0, cy: 240.0, width: 640, height: 480 }
    }

    /// A quarter-VGA configuration, handy for fast tests.
    pub fn qvga() -> Self {
        Self { fx: 190.0, fy: 190.0, cx: 160.0, cy: 120.0, width: 320, height: 240 }
    }

    /// Projects a point in the **camera** frame to pixel coordinates.
    ///
    /// Returns `None` when the point is behind the camera or projects
    /// outside the image.
    pub fn project(&self, p_cam: Vec3) -> Option<Vec2> {
        if p_cam.z <= 1e-6 {
            return None;
        }
        let u = self.fx * p_cam.x / p_cam.z + self.cx;
        let v = self.fy * p_cam.y / p_cam.z + self.cy;
        if u < 0.0 || v < 0.0 || u >= self.width as f64 || v >= self.height as f64 {
            return None;
        }
        Some(Vec2::new(u, v))
    }

    /// Back-projects a pixel to the unit-depth ray direction in the
    /// camera frame.
    pub fn unproject(&self, px: Vec2) -> Vec3 {
        Vec3::new((px.x - self.cx) / self.fx, (px.y - self.cy) / self.fy, 1.0)
    }

    /// Horizontal field of view, radians.
    pub fn fov_x(&self) -> f64 {
        2.0 * (self.width as f64 / (2.0 * self.fx)).atan()
    }
}

/// A stereo rig: two identical pinhole cameras offset along the body +X
/// axis (ZED-Mini style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StereoRig {
    /// Per-eye intrinsics.
    pub camera: PinholeCamera,
    /// Baseline in meters (ZED Mini: 63 mm).
    pub baseline: f64,
    /// Extrinsic pose of the *left camera* in the body (IMU) frame.
    pub body_from_left: Pose,
}

impl StereoRig {
    /// A ZED-Mini-like rig: 63 mm baseline, camera looking along body −Z
    /// remapped to the CV convention.
    pub fn zed_mini(camera: PinholeCamera) -> Self {
        Self { camera, baseline: 0.063, body_from_left: Pose::IDENTITY }
    }

    /// World-frame camera centers `(left, right)` for a body pose.
    pub fn camera_centers(&self, body_pose: &Pose) -> (Vec3, Vec3) {
        let left = body_pose.compose(&self.body_from_left);
        let right_offset = Vec3::new(self.baseline, 0.0, 0.0);
        (left.position, left.transform_point(right_offset))
    }

    /// Projects a world point into the left (eye 0) or right (eye 1)
    /// camera for a given body pose.
    pub fn project_world(&self, body_pose: &Pose, p_world: Vec3, eye: usize) -> Option<Vec2> {
        let left = body_pose.compose(&self.body_from_left);
        let mut cam_pose = left;
        if eye == 1 {
            cam_pose.position = left.transform_point(Vec3::new(self.baseline, 0.0, 0.0));
        }
        let p_cam = cam_pose.inverse().transform_point(p_world);
        self.camera.project(p_cam)
    }

    /// Depth from disparity: `z = f·b / d`.
    ///
    /// Returns `None` for non-positive disparity.
    pub fn depth_from_disparity(&self, disparity_px: f64) -> Option<f64> {
        if disparity_px <= 0.0 {
            return None;
        }
        Some(self.camera.fx * self.baseline / disparity_px)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_math::Quat;

    #[test]
    fn project_unproject_roundtrip() {
        let cam = PinholeCamera::vga();
        let p = Vec3::new(0.3, -0.2, 2.5);
        let px = cam.project(p).unwrap();
        let ray = cam.unproject(px);
        // Ray at the point's depth recovers the point.
        let recon = ray * p.z;
        assert!((recon - p).norm() < 1e-9);
    }

    #[test]
    fn behind_camera_does_not_project() {
        let cam = PinholeCamera::vga();
        assert!(cam.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
    }

    #[test]
    fn off_image_points_rejected() {
        let cam = PinholeCamera::vga();
        assert!(cam.project(Vec3::new(100.0, 0.0, 1.0)).is_none());
    }

    #[test]
    fn stereo_disparity_matches_depth() {
        let rig = StereoRig::zed_mini(PinholeCamera::vga());
        let body = Pose::IDENTITY;
        let p = Vec3::new(0.1, 0.05, 3.0);
        let l = rig.project_world(&body, p, 0).unwrap();
        let r = rig.project_world(&body, p, 1).unwrap();
        let disparity = l.x - r.x;
        let depth = rig.depth_from_disparity(disparity).unwrap();
        assert!((depth - 3.0).abs() < 1e-6, "depth {depth}");
    }

    #[test]
    fn moving_body_moves_projection() {
        let rig = StereoRig::zed_mini(PinholeCamera::vga());
        let p = Vec3::new(0.0, 0.0, 4.0);
        let a = rig.project_world(&Pose::IDENTITY, p, 0).unwrap();
        let shifted = Pose::new(Vec3::new(0.5, 0.0, 0.0), Quat::IDENTITY);
        let b = rig.project_world(&shifted, p, 0).unwrap();
        assert!(b.x < a.x); // camera moved right → point moves left in image
    }

    #[test]
    fn fov_reasonable_for_vga() {
        let cam = PinholeCamera::vga();
        let deg = cam.fov_x().to_degrees();
        assert!(deg > 60.0 && deg < 100.0, "fov {deg}");
    }
}
