//! Data types flowing on the perception pipeline's event streams.

use std::sync::Arc;

use illixr_core::Time;
use illixr_image::GrayImage;
use illixr_math::{Pose, Vec3};

/// One inertial measurement (paper Table III: 500 Hz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Sample timestamp.
    pub timestamp: Time,
    /// Angular velocity in the body frame, rad/s.
    pub gyro: Vec3,
    /// Specific force in the body frame (acceleration minus gravity,
    /// expressed in body coordinates), m/s².
    pub accel: Vec3,
}

/// One stereo camera frame (paper Table III: 15 Hz, VGA).
///
/// Images are shared so the switchboard can fan a frame out to multiple
/// consumers without copying — the paper's zero-copy event streams.
#[derive(Debug, Clone)]
pub struct StereoFrame {
    /// Capture timestamp.
    pub timestamp: Time,
    /// Left camera image.
    pub left: Arc<GrayImage>,
    /// Right camera image.
    pub right: Arc<GrayImage>,
    /// Frame sequence number.
    pub seq: u64,
}

/// A pose estimate on the `pose` streams: slow+accurate from VIO, fast
/// from the IMU integrator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoseEstimate {
    /// The time this pose describes (sensor timestamp, not computation
    /// completion time). The motion-to-photon calculation uses this as
    /// the age of the pose.
    pub timestamp: Time,
    /// Estimated pose of the headset in the world frame.
    pub pose: Pose,
    /// Estimated linear velocity in the world frame (m/s).
    pub velocity: Vec3,
}

impl PoseEstimate {
    /// An identity estimate at time zero (startup placeholder).
    pub fn identity() -> Self {
        Self { timestamp: Time::ZERO, pose: Pose::IDENTITY, velocity: Vec3::ZERO }
    }
}

/// Ground-truth state at a point in time (available from synthetic
/// datasets, the role EuRoC's Vicon ground truth plays in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// Timestamp.
    pub timestamp: Time,
    /// True pose.
    pub pose: Pose,
    /// True linear velocity (world frame).
    pub velocity: Vec3,
}

/// Standard stream names used by the reference pipeline assembly.
pub mod streams {
    /// Stereo camera frames (`StereoFrame`).
    pub const CAMERA: &str = "camera";
    /// IMU samples (`ImuSample`).
    pub const IMU: &str = "imu";
    /// Slow, accurate pose from VIO (`PoseEstimate`).
    pub const SLOW_POSE: &str = "slow_pose";
    /// Fast pose from the IMU integrator (`PoseEstimate`).
    pub const FAST_POSE: &str = "fast_pose";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pose_estimate_identity() {
        let p = PoseEstimate::identity();
        assert_eq!(p.timestamp, Time::ZERO);
        assert_eq!(p.pose, Pose::IDENTITY);
    }

    #[test]
    fn stereo_frame_shares_images() {
        let img = Arc::new(GrayImage::new(4, 4));
        let f =
            StereoFrame { timestamp: Time::ZERO, left: img.clone(), right: img.clone(), seq: 0 };
        let g = f.clone();
        assert!(Arc::ptr_eq(&f.left, &g.left));
    }
}
