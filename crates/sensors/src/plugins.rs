//! Camera and IMU plugins.
//!
//! Two interchangeable providers publish the same `camera` and `imu`
//! streams (paper §II-B, Table II lists ZED and RealSense variants):
//!
//! * [`SyntheticCameraPlugin`] + [`SyntheticImuPlugin`] — the
//!   "live-synthetic" pair, generating sensor data on the fly from a
//!   trajectory + world (the stand-in for walking a ZED Mini through a
//!   lab);
//! * [`OfflineImuCameraPlugin`] — the offline player, replaying a
//!   pre-generated [`SyntheticDataset`] (the stand-in for EuRoC
//!   playback). Downstream plugins cannot tell the difference.

use std::sync::Arc;

use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::switchboard::Writer;
#[cfg(test)]
use illixr_core::Time;

use illixr_math::Pose;

use crate::camera::StereoRig;
use crate::dataset::SyntheticDataset;
use crate::imu::{ImuModel, ImuNoise};
use crate::trajectory::Trajectory;
use crate::types::{streams, ImuSample, StereoFrame};
use crate::wire;
use crate::world::LandmarkWorld;

/// Publishes synthetic stereo frames on the `camera` stream.
///
/// Each `iterate` renders the frame for the current clock time from the
/// world, so the frame content truly depends on the trajectory. The
/// context's fault plan can drop frames (a skipped iteration) or freeze
/// the feed (re-publishing the last frame with its stale timestamp, the
/// way a wedged camera driver repeats its DMA buffer).
pub struct SyntheticCameraPlugin {
    trajectory: Trajectory,
    world: Arc<LandmarkWorld>,
    rig: StereoRig,
    writer: Option<Writer<StereoFrame>>,
    seq: u64,
    last_frame: Option<StereoFrame>,
    /// Pose behind `last_frame`, kept so a frozen (repeated) frame can
    /// be recorded at the boundary by its pose rather than its pixels.
    last_pose: Option<Pose>,
}

impl SyntheticCameraPlugin {
    /// Creates the plugin.
    pub fn new(trajectory: Trajectory, world: Arc<LandmarkWorld>, rig: StereoRig) -> Self {
        Self { trajectory, world, rig, writer: None, seq: 0, last_frame: None, last_pose: None }
    }

    /// Sequence number the next fresh frame will carry. Part of the
    /// failover snapshot surface.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// `(timestamp, seq)` of the last *fresh* frame published, if any.
    /// Enough to reconstruct the frame at restore time: the content is
    /// a pure function of the trajectory pose at that timestamp.
    pub fn last_frame_info(&self) -> Option<(illixr_core::Time, u64)> {
        self.last_frame.as_ref().map(|f| (f.timestamp, f.seq))
    }

    /// Restores the plugin to a snapshotted state: the next sequence
    /// number plus the identity of the last fresh frame, which is
    /// re-rendered from the trajectory (deterministic, so the restored
    /// frame is pixel-identical to the snapshotted one). Nothing is
    /// published.
    pub fn restore_state(&mut self, seq: u64, last: Option<(illixr_core::Time, u64)>) {
        self.seq = seq;
        match last {
            Some((timestamp, frame_seq)) => {
                let pose = self.trajectory.pose(timestamp);
                let left = Arc::new(self.world.render(&self.rig, &pose, 0));
                let right = Arc::new(self.world.render(&self.rig, &pose, 1));
                self.last_frame = Some(StereoFrame { timestamp, left, right, seq: frame_seq });
                self.last_pose = Some(pose);
            }
            None => {
                self.last_frame = None;
                self.last_pose = None;
            }
        }
    }

    /// Replay branch: publish every recorded frame that has come due,
    /// re-rendering each from its recorded pose. The popped payload is
    /// re-recorded verbatim so a replayed run's trace is byte-identical
    /// to its input.
    fn replay(&mut self, ctx: &PluginContext, now: illixr_core::Time) -> Option<IterationReport> {
        let src = ctx.boundary.source()?.clone();
        let writer = self.writer.as_ref().expect("start() must run before iterate()");
        let mut last_work = None;
        while let Some((tag, payload)) = src.next_due(streams::CAMERA, now.as_nanos()) {
            let rec = wire::decode_camera(&payload, tag, &src.transform())
                .expect("corrupt camera boundary record");
            let left = Arc::new(self.world.render(&self.rig, &rec.pose, 0));
            let right = Arc::new(self.world.render(&self.rig, &rec.pose, 1));
            writer.put(StereoFrame { timestamp: rec.timestamp, left, right, seq: rec.seq });
            ctx.boundary.record(streams::CAMERA, tag, payload);
            last_work = Some(rec.work_factor);
        }
        Some(match last_work {
            Some(w) => IterationReport::with_work(w),
            None => IterationReport::skipped(),
        })
    }
}

impl Plugin for SyntheticCameraPlugin {
    fn name(&self) -> &str {
        "camera"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.writer =
            Some(ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").writer());
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        let t = ctx.clock.now();
        if let Some(report) = self.replay(ctx, t) {
            return report;
        }
        let seq = self.seq;
        self.seq += 1;
        let writer = self.writer.as_ref().expect("start() must run before iterate()");
        if !ctx.fault.is_quiet() {
            let faults = ctx.fault.sensor("camera");
            if faults.drop_frame(t.as_nanos(), seq) {
                return IterationReport::skipped();
            }
            if faults.frozen(t.as_nanos()) {
                if let Some(last) = &self.last_frame {
                    // Repeat the stale frame (old timestamp, old
                    // content) under a fresh sequence number.
                    if ctx.boundary.recorder().is_some() {
                        let rec = wire::CameraRecord {
                            timestamp: last.timestamp,
                            seq,
                            work_factor: 0.1,
                            pose: self.last_pose.expect("last_frame implies last_pose"),
                        };
                        ctx.boundary.record(
                            streams::CAMERA,
                            t.as_nanos(),
                            wire::encode_camera(&rec, t),
                        );
                    }
                    writer.put(StereoFrame { seq, ..last.clone() });
                    return IterationReport::with_work(0.1);
                }
            }
        }
        let pose = self.trajectory.pose(t);
        let left = Arc::new(self.world.render(&self.rig, &pose, 0));
        let right = Arc::new(self.world.render(&self.rig, &pose, 1));
        let frame = StereoFrame { timestamp: t, left, right, seq };
        self.last_frame = Some(frame.clone());
        self.last_pose = Some(pose);
        if ctx.boundary.recorder().is_some() {
            let rec = wire::CameraRecord { timestamp: t, seq, work_factor: 1.0, pose };
            ctx.boundary.record(streams::CAMERA, t.as_nanos(), wire::encode_camera(&rec, t));
        }
        writer.put(frame);
        IterationReport::nominal()
    }
}

/// Publishes synthetic IMU samples on the `imu` stream.
///
/// The context's fault plan can open sample gaps (the sample is still
/// drawn from the model — keeping its noise stream aligned with the
/// unfaulted run — but not published), add a bias jump to both
/// measurement axes inside a window, or overlay a wideband noise burst.
pub struct SyntheticImuPlugin {
    model: ImuModel,
    writer: Option<Writer<ImuSample>>,
    seq: u64,
}

impl SyntheticImuPlugin {
    /// Creates the plugin sampling at `rate_hz` (paper: 500 Hz).
    pub fn new(trajectory: Trajectory, noise: ImuNoise, rate_hz: f64, seed: u64) -> Self {
        Self { model: ImuModel::new(trajectory, noise, rate_hz, seed), writer: None, seq: 0 }
    }

    /// Sequence number the next sample will carry — equal to the number
    /// of `iterate` calls so far, since the model draws a sample every
    /// call even when a gap fault swallows the publish. The failover
    /// restore path fast-forwards a fresh plugin by iterating this many
    /// times before subscribing readers.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Plugin for SyntheticImuPlugin {
    fn name(&self) -> &str {
        "imu"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.writer =
            Some(ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").writer());
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        if let Some(src) = ctx.boundary.source().cloned() {
            // Replay: publish every recorded (post-fault) sample that
            // has come due; the model and the fault plan never run.
            let now = ctx.clock.now();
            let writer = self.writer.as_ref().expect("start() must run before iterate()");
            let mut published = false;
            while let Some((tag, payload)) = src.next_due(streams::IMU, now.as_nanos()) {
                let sample = wire::decode_imu(&payload, tag, &src.transform())
                    .expect("corrupt imu boundary record");
                writer.put(sample);
                ctx.boundary.record(streams::IMU, tag, payload);
                published = true;
            }
            return if published { IterationReport::nominal() } else { IterationReport::skipped() };
        }
        let mut sample = self.model.next_sample();
        let seq = self.seq;
        self.seq += 1;
        if !ctx.fault.is_quiet() {
            let faults = ctx.fault.sensor("imu");
            let t_ns = sample.timestamp.as_nanos();
            if faults.imu_gap(t_ns, seq) {
                return IterationReport::skipped();
            }
            let bias = faults.bias(t_ns);
            let noise = faults.noise(t_ns, seq);
            if bias != 0.0 || noise != 0.0 {
                let accel_err = bias + noise;
                // Gyro axes are rad/s; scale the same disturbance down.
                let gyro_err = 0.1 * accel_err;
                sample.accel += illixr_math::Vec3::new(accel_err, accel_err, accel_err);
                sample.gyro += illixr_math::Vec3::new(gyro_err, gyro_err, gyro_err);
            }
        }
        if ctx.boundary.recorder().is_some() {
            ctx.boundary.record(
                streams::IMU,
                ctx.clock.now().as_nanos(),
                wire::encode_imu(&sample, ctx.clock.now()),
            );
        }
        self.writer.as_ref().expect("start() must run before iterate()").put(sample);
        IterationReport::nominal()
    }
}

/// Replays a pre-generated dataset onto **both** the `camera` and `imu`
/// streams — the offline camera+IMU component of paper §II-B.
///
/// Drive it at the IMU rate; camera frames are emitted whenever a camera
/// timestamp falls due.
pub struct OfflineImuCameraPlugin {
    dataset: Arc<SyntheticDataset>,
    rig: StereoRig,
    imu_writer: Option<Writer<ImuSample>>,
    cam_writer: Option<Writer<StereoFrame>>,
    next_imu: usize,
    next_cam: usize,
}

impl OfflineImuCameraPlugin {
    /// Creates the player.
    pub fn new(dataset: Arc<SyntheticDataset>, rig: StereoRig) -> Self {
        Self { dataset, rig, imu_writer: None, cam_writer: None, next_imu: 0, next_cam: 0 }
    }

    /// True when the entire dataset has been replayed.
    pub fn finished(&self) -> bool {
        self.next_imu >= self.dataset.imu.len()
    }
}

impl Plugin for OfflineImuCameraPlugin {
    fn name(&self) -> &str {
        "offline_imu_cam"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.imu_writer =
            Some(ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").writer());
        self.cam_writer =
            Some(ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").writer());
    }

    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
        let now = ctx.clock.now();
        let mut emitted = 0u32;
        // Emit every IMU sample that has come due.
        while self.next_imu < self.dataset.imu.len()
            && self.dataset.imu[self.next_imu].timestamp <= now
        {
            self.imu_writer
                .as_ref()
                .expect("start() must run before iterate()")
                .put(self.dataset.imu[self.next_imu]);
            self.next_imu += 1;
            emitted += 1;
        }
        // Emit camera frames that have come due.
        while self.next_cam < self.dataset.camera_times.len()
            && self.dataset.camera_times[self.next_cam] <= now
        {
            let t = self.dataset.camera_times[self.next_cam];
            let (left, right) = self.dataset.render_frame(&self.rig, self.next_cam);
            self.cam_writer.as_ref().expect("start() must run before iterate()").put(StereoFrame {
                timestamp: t,
                left: Arc::new(left),
                right: Arc::new(right),
                seq: self.next_cam as u64,
            });
            self.next_cam += 1;
            emitted += 1;
        }
        if emitted == 0 {
            IterationReport::skipped()
        } else {
            IterationReport::with_work(emitted as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::PinholeCamera;
    use illixr_core::{RuntimeBuilder, SimClock};

    fn sim_ctx() -> (PluginContext, SimClock) {
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone())).build();
        (ctx, clock)
    }

    #[test]
    fn synthetic_camera_publishes_frames() {
        let (ctx, clock) = sim_ctx();
        let reader =
            ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(16);
        let world = Arc::new(LandmarkWorld::new(50, illixr_math::Vec3::new(3.0, 2.0, 3.0), 1));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let mut plugin = SyntheticCameraPlugin::new(Trajectory::walking(1), world, rig);
        plugin.start(&ctx);
        clock.advance_to(Time::from_millis(66));
        plugin.iterate(&ctx);
        let frame = reader.try_recv().unwrap();
        assert_eq!(frame.timestamp, Time::from_millis(66));
        assert_eq!(frame.left.width(), 320);
    }

    #[test]
    fn synthetic_imu_publishes_at_fixed_cadence() {
        let (ctx, _clock) = sim_ctx();
        let reader =
            ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(64);
        let mut plugin =
            SyntheticImuPlugin::new(Trajectory::walking(2), ImuNoise::default(), 500.0, 2);
        plugin.start(&ctx);
        for _ in 0..5 {
            plugin.iterate(&ctx);
        }
        let samples = reader.drain();
        assert_eq!(samples.len(), 5);
        assert_eq!((samples[1].timestamp - samples[0].timestamp).as_micros(), 2000);
    }

    #[test]
    fn offline_player_is_stream_compatible() {
        let (ctx, clock) = sim_ctx();
        let imu_reader =
            ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(4096);
        let cam_reader =
            ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(64);
        let ds = Arc::new(SyntheticDataset::generate(
            Trajectory::walking(3),
            LandmarkWorld::new(40, illixr_math::Vec3::new(3.0, 2.0, 3.0), 3),
            ImuNoise::default(),
            0.5,
            15.0,
            500.0,
            3,
        ));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let mut plugin = OfflineImuCameraPlugin::new(ds.clone(), rig);
        plugin.start(&ctx);
        // First tick at t=0 publishes the first samples.
        plugin.iterate(&ctx);
        assert!(!imu_reader.is_empty());
        assert_eq!(cam_reader.len(), 1);
        // Advance 100 ms: ~50 IMU samples and 1–2 camera frames due.
        clock.advance_to(Time::from_millis(100));
        plugin.iterate(&ctx);
        assert!(imu_reader.len() >= 50);
        assert!(cam_reader.len() >= 2);
        assert!(!plugin.finished());
    }

    #[test]
    fn camera_freeze_window_repeats_the_stale_frame() {
        use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
        let clock = SimClock::new();
        let plan = FaultPlan::new(9).with_window(FaultWindow::new(
            FaultKind::CameraFreeze,
            "camera",
            Time::from_millis(50).as_nanos(),
            Time::from_millis(200).as_nanos(),
            1.0,
        ));
        let ctx =
            RuntimeBuilder::new(Arc::new(clock.clone())).with_fault_plan(Arc::new(plan)).build();
        let reader =
            ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(16);
        let world = Arc::new(LandmarkWorld::new(50, illixr_math::Vec3::new(3.0, 2.0, 3.0), 1));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let mut plugin = SyntheticCameraPlugin::new(Trajectory::walking(1), world, rig);
        plugin.start(&ctx);
        clock.advance_to(Time::from_millis(33));
        plugin.iterate(&ctx); // before the window: fresh frame
        clock.advance_to(Time::from_millis(66));
        plugin.iterate(&ctx); // inside the window: frozen
        let frames = reader.drain();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].timestamp, frames[0].timestamp, "frozen frame keeps stale stamp");
        assert_eq!(frames[1].seq, 1, "sequence numbering still advances");
        assert!(Arc::ptr_eq(&frames[0].left, &frames[1].left), "same image repeated");
    }

    #[test]
    fn imu_gap_skips_publish_but_keeps_the_model_stream_aligned() {
        use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow};
        // Faulted run: gap window covering samples 2..4 (4 ms..8 ms).
        let plan = FaultPlan::new(5).with_window(FaultWindow::new(
            FaultKind::ImuGap,
            "imu",
            Time::from_millis(3).as_nanos(),
            Time::from_millis(8).as_nanos(),
            1.0,
        ));
        let ctx =
            RuntimeBuilder::new(Arc::new(SimClock::new())).with_fault_plan(Arc::new(plan)).build();
        let reader =
            ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(64);
        let mut plugin =
            SyntheticImuPlugin::new(Trajectory::walking(2), ImuNoise::default(), 500.0, 2);
        plugin.start(&ctx);
        for _ in 0..5 {
            plugin.iterate(&ctx);
        }
        let faulted = reader.drain();
        assert!(faulted.len() < 5, "gap window suppressed samples");

        // Unfaulted run with the same model seed: published samples
        // outside the gap are bit-identical (the model still advanced
        // through the gap).
        let (ctx2, _clock) = sim_ctx();
        let reader2 =
            ctx2.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(64);
        let mut plugin2 =
            SyntheticImuPlugin::new(Trajectory::walking(2), ImuNoise::default(), 500.0, 2);
        plugin2.start(&ctx2);
        for _ in 0..5 {
            plugin2.iterate(&ctx2);
        }
        let clean = reader2.drain();
        assert_eq!(clean.len(), 5);
        for f in &faulted {
            assert!(
                clean.iter().any(|c| c.data == f.data),
                "surviving samples match the unfaulted stream"
            );
        }
    }

    #[test]
    fn recorded_faulted_sensors_replay_bit_identically_under_a_quiet_plan() {
        use illixr_core::boundary::{TraceRecorder, TraceSource};
        use illixr_core::fault::{FaultKind, FaultPlan, FaultWindow, StochasticRates};

        let world = || Arc::new(LandmarkWorld::new(50, illixr_math::Vec3::new(3.0, 2.0, 3.0), 1));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());

        // Record a run with a camera freeze, IMU noise bursts and
        // stochastic drops.
        let plan = FaultPlan::new(13)
            .with_window(FaultWindow::new(
                FaultKind::CameraFreeze,
                "camera",
                Time::from_millis(100).as_nanos(),
                Time::from_millis(250).as_nanos(),
                1.0,
            ))
            .with_window(FaultWindow::new(
                FaultKind::ImuNoiseBurst,
                "imu",
                Time::from_millis(50).as_nanos(),
                Time::from_millis(300).as_nanos(),
                0.5,
            ))
            .with_rates(StochasticRates { camera_drop: 0.2, ..StochasticRates::ZERO });
        let recorder = TraceRecorder::new(13, 0);
        let clock = SimClock::new();
        let ctx = RuntimeBuilder::new(Arc::new(clock.clone()))
            .with_fault_plan(Arc::new(plan))
            .with_recorder(recorder.clone())
            .build();
        let cam_reader =
            ctx.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(64);
        let imu_reader =
            ctx.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(4096);
        let mut camera = SyntheticCameraPlugin::new(Trajectory::walking(1), world(), rig);
        let mut imu =
            SyntheticImuPlugin::new(Trajectory::walking(1), ImuNoise::default(), 500.0, 13);
        camera.start(&ctx);
        imu.start(&ctx);
        for step in 0..6u64 {
            clock.advance_to(Time::from_millis(step * 66));
            camera.iterate(&ctx);
            for _ in 0..33 {
                imu.iterate(&ctx);
            }
        }
        let rec_frames = cam_reader.drain();
        let rec_samples = imu_reader.drain();
        let trace = Arc::new(recorder.snapshot());
        assert!(trace.stream("camera").is_some() && trace.stream("imu").is_some());

        // Replay under a quiet plan, same iterate schedule: published
        // values must match bit-for-bit and the re-recorded trace must
        // equal the original byte-for-byte.
        let rerec = TraceRecorder::new(13, 0);
        let clock2 = SimClock::new();
        let ctx2 = RuntimeBuilder::new(Arc::new(clock2.clone()))
            .with_trace(TraceSource::new(trace.clone()))
            .with_recorder(rerec.clone())
            .build();
        let cam_reader2 =
            ctx2.switchboard.topic::<StereoFrame>(streams::CAMERA).expect("stream").sync_reader(64);
        let imu_reader2 =
            ctx2.switchboard.topic::<ImuSample>(streams::IMU).expect("stream").sync_reader(4096);
        let mut camera2 = SyntheticCameraPlugin::new(Trajectory::walking(99), world(), rig);
        let mut imu2 =
            SyntheticImuPlugin::new(Trajectory::walking(99), ImuNoise::default(), 500.0, 7);
        camera2.start(&ctx2);
        imu2.start(&ctx2);
        for step in 0..6u64 {
            clock2.advance_to(Time::from_millis(step * 66));
            camera2.iterate(&ctx2);
            for _ in 0..33 {
                imu2.iterate(&ctx2);
            }
        }
        let rep_frames = cam_reader2.drain();
        let rep_samples = imu_reader2.drain();
        assert_eq!(rec_frames.len(), rep_frames.len());
        for (a, b) in rec_frames.iter().zip(rep_frames.iter()) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.seq, b.seq);
            assert_eq!(
                a.left.as_slice(),
                b.left.as_slice(),
                "re-rendered frame must be pixel-exact"
            );
            assert_eq!(a.right.as_slice(), b.right.as_slice());
        }
        assert_eq!(
            rec_samples.iter().map(|s| s.data).collect::<Vec<_>>(),
            rep_samples.iter().map(|s| s.data).collect::<Vec<_>>()
        );
        assert_eq!(rerec.snapshot().encode(), trace.encode());
    }

    #[test]
    fn offline_player_reports_skip_when_idle() {
        let (ctx, _clock) = sim_ctx();
        let ds = Arc::new(SyntheticDataset::vicon_room_like(5, 0.1));
        let rig = StereoRig::zed_mini(PinholeCamera::qvga());
        let mut plugin = OfflineImuCameraPlugin::new(ds, rig);
        plugin.start(&ctx);
        plugin.iterate(&ctx); // consumes t=0 data
        let report = plugin.iterate(&ctx); // clock unchanged → nothing due
        assert!(!report.did_work);
    }
}
