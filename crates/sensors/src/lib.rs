//! Sensor substrate: the synthetic equivalent of ILLIXR's ZED Mini
//! camera + IMU front end.
//!
//! The paper's live experiments walk a physical camera through a lab
//! (§III-A) and its offline experiments replay the EuRoC *Vicon Room 1
//! Medium* dataset. This crate replaces both with deterministic synthetic
//! equivalents that exercise the same code paths:
//!
//! * [`trajectory`] — smooth 6-DoF head trajectories (sums of sinusoids,
//!   so velocity/acceleration/angular-velocity are analytic);
//! * [`imu`] — an IMU error model (white noise + bias random walk +
//!   gravity) sampling the trajectory at 500 Hz;
//! * [`camera`] — pinhole/stereo projection models;
//! * [`world`] — a landmark world rendered into real grayscale images
//!   that the VIO front end detects and tracks features on;
//! * [`dataset`] — pre-generated sequences with ground truth (the
//!   EuRoC-replacement), plus CSV save/load for the offline-player plugin;
//! * [`plugins`] — the `camera` and `imu` plugins, in interchangeable
//!   *live-synthetic* and *offline-player* variants publishing to the same
//!   switchboard streams (paper §II-B: "appearing indistinguishable from a
//!   real camera/IMU to the rest of the system");
//! * [`wire`] — boundary payload codecs: how a camera frame (by pose)
//!   and an IMU sample cross the record/replay determinism boundary.

pub mod camera;
pub mod dataset;
pub mod imu;
pub mod plugins;
pub mod trajectory;
pub mod types;
pub mod wire;
pub mod world;

pub use camera::{PinholeCamera, StereoRig};
pub use dataset::SyntheticDataset;
pub use imu::ImuModel;
pub use plugins::{OfflineImuCameraPlugin, SyntheticCameraPlugin, SyntheticImuPlugin};
pub use trajectory::Trajectory;
pub use types::{ImuSample, PoseEstimate, StereoFrame};
pub use world::LandmarkWorld;
