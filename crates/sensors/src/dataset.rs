//! Pre-generated sensor sequences with ground truth — the EuRoC
//! replacement.
//!
//! A [`SyntheticDataset`] holds a time-ordered IMU stream, camera frame
//! timestamps and ground-truth states for a fixed duration. The offline
//! camera+IMU plugin replays it, "appearing indistinguishable from a real
//! camera/IMU to the rest of the system" (paper §II-B). IMU and ground
//! truth round-trip through a simple CSV format so sequences can be
//! archived and shared like EuRoC bags.

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::Path;

use illixr_core::Time;
use illixr_math::{Pose, Quat, Vec3};

use crate::camera::StereoRig;
use crate::imu::{ImuModel, ImuNoise};
use crate::trajectory::Trajectory;
use crate::types::{GroundTruth, ImuSample};
use crate::world::LandmarkWorld;

/// Errors from dataset I/O.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A CSV line could not be parsed.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "dataset i/o error: {e}"),
            Self::Parse { line, message } => {
                write!(f, "dataset parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A generated sensor sequence.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// IMU samples, time-ordered.
    pub imu: Vec<ImuSample>,
    /// Camera frame timestamps, time-ordered (frames themselves are
    /// rendered on demand from the world + ground truth, keeping datasets
    /// small, like storing a trajectory instead of a video).
    pub camera_times: Vec<Time>,
    /// Ground truth at IMU rate.
    pub ground_truth: Vec<GroundTruth>,
    /// The trajectory that generated this dataset.
    pub trajectory: Trajectory,
    /// The world observed by the camera.
    pub world: LandmarkWorld,
}

impl SyntheticDataset {
    /// Generates a sequence of `duration_s` seconds with the given rates
    /// (paper defaults: camera 15 Hz, IMU 500 Hz).
    ///
    /// # Panics
    ///
    /// Panics when rates or duration are not positive.
    pub fn generate(
        trajectory: Trajectory,
        world: LandmarkWorld,
        noise: ImuNoise,
        duration_s: f64,
        camera_hz: f64,
        imu_hz: f64,
        seed: u64,
    ) -> Self {
        assert!(
            duration_s > 0.0 && camera_hz > 0.0 && imu_hz > 0.0,
            "rates/duration must be positive"
        );
        let mut imu_model = ImuModel::new(trajectory.clone(), noise, imu_hz, seed);
        let n_imu = (duration_s * imu_hz).ceil() as usize;
        let mut imu = Vec::with_capacity(n_imu);
        let mut ground_truth = Vec::with_capacity(n_imu);
        for _ in 0..n_imu {
            let s = imu_model.next_sample();
            ground_truth.push(GroundTruth {
                timestamp: s.timestamp,
                pose: trajectory.pose(s.timestamp),
                velocity: trajectory.velocity(s.timestamp),
            });
            imu.push(s);
        }
        let n_cam = (duration_s * camera_hz).ceil() as usize;
        let camera_times = (0..n_cam).map(|k| Time::from_secs_f64(k as f64 / camera_hz)).collect();
        Self { imu, camera_times, ground_truth, trajectory, world }
    }

    /// A ready-made 10-second walking sequence on the lab world — the
    /// stand-in for EuRoC *Vicon Room 1 Medium*.
    pub fn vicon_room_like(seed: u64, duration_s: f64) -> Self {
        Self::generate(
            Trajectory::walking(seed),
            LandmarkWorld::lab(seed),
            ImuNoise::default(),
            duration_s,
            15.0,
            500.0,
            seed,
        )
    }

    /// Renders the camera frame for camera index `k` (left, right).
    pub fn render_frame(
        &self,
        rig: &StereoRig,
        k: usize,
    ) -> (illixr_image::GrayImage, illixr_image::GrayImage) {
        let t = self.camera_times[k];
        let pose = self.trajectory.pose(t);
        (self.world.render(rig, &pose, 0), self.world.render(rig, &pose, 1))
    }

    /// Ground-truth pose interpolated at an arbitrary time.
    pub fn ground_truth_pose(&self, t: Time) -> Pose {
        self.trajectory.pose(t)
    }

    /// Sequence duration.
    pub fn duration(&self) -> Time {
        self.imu.last().map(|s| s.timestamp).unwrap_or(Time::ZERO)
    }

    /// Writes the IMU stream and ground truth as CSV
    /// (`t_ns,gx,gy,gz,ax,ay,az,px,py,pz,qw,qx,qy,qz`).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save_csv(&self, path: &Path) -> Result<(), DatasetError> {
        let f = std::fs::File::create(path)?;
        let mut w = BufWriter::new(f);
        writeln!(w, "t_ns,gx,gy,gz,ax,ay,az,px,py,pz,qw,qx,qy,qz")?;
        for (s, gt) in self.imu.iter().zip(&self.ground_truth) {
            let p = gt.pose.position;
            let q = gt.pose.orientation;
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.timestamp.as_nanos(),
                s.gyro.x,
                s.gyro.y,
                s.gyro.z,
                s.accel.x,
                s.accel.y,
                s.accel.z,
                p.x,
                p.y,
                p.z,
                q.w,
                q.x,
                q.y,
                q.z,
            )?;
        }
        Ok(())
    }

    /// Reads back an IMU+ground-truth CSV produced by
    /// [`SyntheticDataset::save_csv`].
    ///
    /// Returns `(imu, ground_truth)`; the caller re-attaches a world and
    /// camera cadence.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Parse`] on malformed rows.
    pub fn load_csv(path: &Path) -> Result<(Vec<ImuSample>, Vec<GroundTruth>), DatasetError> {
        let f = std::fs::File::open(path)?;
        let reader = BufReader::new(f);
        let mut imu = Vec::new();
        let mut gt = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            if i == 0 || line.trim().is_empty() {
                continue; // header
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 14 {
                return Err(DatasetError::Parse {
                    line: i + 1,
                    message: format!("expected 14 fields, found {}", fields.len()),
                });
            }
            let parse = |s: &str| -> Result<f64, DatasetError> {
                s.trim().parse::<f64>().map_err(|e| DatasetError::Parse {
                    line: i + 1,
                    message: format!("bad float '{s}': {e}"),
                })
            };
            let t_ns: u64 = fields[0].trim().parse().map_err(|e| DatasetError::Parse {
                line: i + 1,
                message: format!("bad timestamp '{}': {e}", fields[0]),
            })?;
            let t = Time::from_nanos(t_ns);
            imu.push(ImuSample {
                timestamp: t,
                gyro: Vec3::new(parse(fields[1])?, parse(fields[2])?, parse(fields[3])?),
                accel: Vec3::new(parse(fields[4])?, parse(fields[5])?, parse(fields[6])?),
            });
            let pose = Pose::new(
                Vec3::new(parse(fields[7])?, parse(fields[8])?, parse(fields[9])?),
                Quat::new(
                    parse(fields[10])?,
                    parse(fields[11])?,
                    parse(fields[12])?,
                    parse(fields[13])?,
                ),
            );
            gt.push(GroundTruth { timestamp: t, pose, velocity: Vec3::ZERO });
        }
        Ok((imu, gt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_expected_counts() {
        let ds = SyntheticDataset::vicon_room_like(1, 2.0);
        assert_eq!(ds.imu.len(), 1000); // 2 s × 500 Hz
        assert_eq!(ds.camera_times.len(), 30); // 2 s × 15 Hz
        assert_eq!(ds.ground_truth.len(), ds.imu.len());
    }

    #[test]
    fn timestamps_are_monotone() {
        let ds = SyntheticDataset::vicon_room_like(2, 1.0);
        for w in ds.imu.windows(2) {
            assert!(w[1].timestamp > w[0].timestamp);
        }
        for w in ds.camera_times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn ground_truth_matches_trajectory() {
        let ds = SyntheticDataset::vicon_room_like(3, 1.0);
        let gt = &ds.ground_truth[250];
        let p = ds.trajectory.pose(gt.timestamp);
        assert!(gt.pose.translation_distance(&p) < 1e-12);
    }

    #[test]
    fn csv_roundtrip() {
        let ds = SyntheticDataset::vicon_room_like(4, 0.5);
        let dir = std::env::temp_dir().join("illixr_ds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seq.csv");
        ds.save_csv(&path).unwrap();
        let (imu, gt) = SyntheticDataset::load_csv(&path).unwrap();
        assert_eq!(imu.len(), ds.imu.len());
        assert_eq!(gt.len(), ds.ground_truth.len());
        let a = &ds.imu[100];
        let b = &imu[100];
        assert_eq!(a.timestamp, b.timestamp);
        assert!((a.gyro - b.gyro).norm() < 1e-9);
        assert!(ds.ground_truth[100].pose.translation_distance(&gt[100].pose) < 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed_rows() {
        let dir = std::env::temp_dir().join("illixr_ds_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "header\n1,2,3\n").unwrap();
        let err = SyntheticDataset::load_csv(&path).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { line: 2, .. }));
        std::fs::remove_file(&path).ok();
    }
}
