//! Small fixed-size vectors used throughout the XR pipelines.

use core::fmt;
use core::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

use crate::Real;

macro_rules! impl_vector_common {
    ($name:ident, $n:expr, [$($field:ident => $idx:expr),+]) => {
        impl $name {
            /// The zero vector.
            pub const ZERO: Self = Self { $($field: 0.0),+ };

            /// Creates a vector from components.
            #[inline]
            pub const fn new($($field: Real),+) -> Self {
                Self { $($field),+ }
            }

            /// Creates a vector with all components equal to `v`.
            #[inline]
            pub const fn splat(v: Real) -> Self {
                Self { $($field: v),+ }
            }

            /// Dot product with `other`.
            #[inline]
            pub fn dot(self, other: Self) -> Real {
                0.0 $(+ self.$field * other.$field)+
            }

            /// Squared Euclidean norm.
            #[inline]
            pub fn norm_squared(self) -> Real {
                self.dot(self)
            }

            /// Euclidean norm.
            #[inline]
            pub fn norm(self) -> Real {
                self.norm_squared().sqrt()
            }

            /// Returns the unit vector in the same direction, or zero if the
            /// vector is (numerically) zero.
            #[inline]
            pub fn normalized(self) -> Self {
                let n = self.norm();
                if n <= Real::EPSILON {
                    Self::ZERO
                } else {
                    self / n
                }
            }

            /// Component-wise (Hadamard) product.
            #[inline]
            pub fn component_mul(self, other: Self) -> Self {
                Self { $($field: self.$field * other.$field),+ }
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self { $($field: self.$field.min(other.$field)),+ }
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self { $($field: self.$field.max(other.$field)),+ }
            }

            /// Component-wise absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self { $($field: self.$field.abs()),+ }
            }

            /// Linear interpolation: `self * (1 - t) + other * t`.
            #[inline]
            pub fn lerp(self, other: Self, t: Real) -> Self {
                self * (1.0 - t) + other * t
            }

            /// Largest component magnitude (infinity norm).
            #[inline]
            pub fn max_abs(self) -> Real {
                let mut m: Real = 0.0;
                $( m = m.max(self.$field.abs()); )+
                m
            }

            /// Returns the components as an array.
            #[inline]
            pub fn to_array(self) -> [Real; $n] {
                [$(self.$field),+]
            }

            /// Creates a vector from an array of components.
            #[inline]
            pub fn from_array(a: [Real; $n]) -> Self {
                Self { $($field: a[$idx]),+ }
            }

            /// True when all components are finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                true $(&& self.$field.is_finite())+
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self { $($field: self.$field + rhs.$field),+ }
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                $(self.$field += rhs.$field;)+
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self { $($field: self.$field - rhs.$field),+ }
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                $(self.$field -= rhs.$field;)+
            }
        }

        impl Mul<Real> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Real) -> Self {
                Self { $($field: self.$field * rhs),+ }
            }
        }

        impl Mul<$name> for Real {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                rhs * self
            }
        }

        impl MulAssign<Real> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: Real) {
                $(self.$field *= rhs;)+
            }
        }

        impl Div<Real> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: Real) -> Self {
                Self { $($field: self.$field / rhs),+ }
            }
        }

        impl DivAssign<Real> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: Real) {
                $(self.$field /= rhs;)+
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self { $($field: -self.$field),+ }
            }
        }

        impl Index<usize> for $name {
            type Output = Real;
            #[inline]
            fn index(&self, i: usize) -> &Real {
                match i {
                    $($idx => &self.$field,)+
                    _ => panic!("vector index {i} out of range for {}", stringify!($name)),
                }
            }
        }

        impl IndexMut<usize> for $name {
            #[inline]
            fn index_mut(&mut self, i: usize) -> &mut Real {
                match i {
                    $($idx => &mut self.$field,)+
                    _ => panic!("vector index {i} out of range for {}", stringify!($name)),
                }
            }
        }

        impl Default for $name {
            #[inline]
            fn default() -> Self {
                Self::ZERO
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "(")?;
                let a = self.to_array();
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:.6}")?;
                }
                write!(f, ")")
            }
        }

        impl From<[Real; $n]> for $name {
            #[inline]
            fn from(a: [Real; $n]) -> Self {
                Self::from_array(a)
            }
        }

        impl From<$name> for [Real; $n] {
            #[inline]
            fn from(v: $name) -> Self {
                v.to_array()
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }
    };
}

/// A 2-component vector (pixel coordinates, image-plane points).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec2 {
    /// X component.
    pub x: Real,
    /// Y component.
    pub y: Real,
}

impl_vector_common!(Vec2, 2, [x => 0, y => 1]);

impl Vec2 {
    /// Unit vector along X.
    pub const UNIT_X: Self = Self { x: 1.0, y: 0.0 };
    /// Unit vector along Y.
    pub const UNIT_Y: Self = Self { x: 0.0, y: 1.0 };

    /// The 2-D cross product (z component of the 3-D cross product).
    #[inline]
    pub fn cross(self, other: Self) -> Real {
        self.x * other.y - self.y * other.x
    }

    /// Rotates the vector counter-clockwise by `angle` radians.
    #[inline]
    pub fn rotated(self, angle: Real) -> Self {
        let (s, c) = angle.sin_cos();
        Self::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }
}

/// A 3-component vector (positions, velocities, angular rates, RGB colours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// X component.
    pub x: Real,
    /// Y component.
    pub y: Real,
    /// Z component.
    pub z: Real,
}

impl_vector_common!(Vec3, 3, [x => 0, y => 1, z => 2]);

impl Vec3 {
    /// Unit vector along X.
    pub const UNIT_X: Self = Self { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along Y.
    pub const UNIT_Y: Self = Self { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along Z.
    pub const UNIT_Z: Self = Self { x: 0.0, y: 0.0, z: 1.0 };

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Self) -> Self {
        Self::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Extends to a [`Vec4`] with the given `w` component.
    #[inline]
    pub fn extend(self, w: Real) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }

    /// Projects onto the XY plane, dropping Z.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

/// A 4-component vector (homogeneous coordinates, RGBA colours, quaternion
/// coefficient blocks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec4 {
    /// X component.
    pub x: Real,
    /// Y component.
    pub y: Real,
    /// Z component.
    pub z: Real,
    /// W component.
    pub w: Real,
}

impl_vector_common!(Vec4, 4, [x => 0, y => 1, z => 2, w => 3]);

impl Vec4 {
    /// Drops the `w` component.
    #[inline]
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective divide: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns non-finite components when `w == 0`.
    #[inline]
    pub fn project(self) -> Vec3 {
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec3_norm_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::UNIT_X.rotated(std::f64::consts::FRAC_PI_2);
        assert!((v - Vec2::UNIT_Y).norm() < 1e-12);
    }

    #[test]
    fn vec4_project() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing_roundtrip() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        v[1] = 9.0;
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 9.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec2::UNIT_X;
        let _ = v[2];
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn sum_of_vectors() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }
}
