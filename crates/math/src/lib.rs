//! Linear algebra and geometry substrate for ILLIXR-rs.
//!
//! This crate provides everything the XR pipelines need from a maths library,
//! implemented from scratch: small fixed-size vectors and matrices
//! ([`Vec3`], [`Mat3`], [`Mat4`]), unit quaternions ([`Quat`]) and rigid-body
//! poses ([`Pose`]), dynamically sized matrices ([`DMatrix`], [`DVector`])
//! with the decompositions the VIO filter relies on (Cholesky, Householder
//! QR, LU), SO(3) exponential/logarithm maps, and streaming statistics.
//!
//! # Examples
//!
//! ```
//! use illixr_math::{Quat, Vec3, Pose};
//!
//! let pose = Pose::new(Vec3::new(1.0, 2.0, 3.0), Quat::from_axis_angle(Vec3::UNIT_Y, 0.5));
//! let p_world = pose.transform_point(Vec3::new(0.0, 0.0, -1.0));
//! assert!((p_world - pose.position).norm() > 0.9);
//! ```

pub mod decomp;
pub mod dmatrix;
pub mod matrix;
pub mod pose;
pub mod quat;
pub mod so3;
pub mod stats;
pub mod vector;

pub use decomp::{Cholesky, Lu, Qr, Svd};
pub use dmatrix::{DMatrix, DVector};
pub use matrix::{Mat2, Mat3, Mat4};
pub use pose::Pose;
pub use quat::Quat;
pub use so3::{skew, so3_exp, so3_log};
pub use stats::{percentile, OnlineStats};
pub use vector::{Vec2, Vec3, Vec4};

/// Convenience alias used throughout the workspace for scalar values.
pub type Real = f64;

/// Numerical tolerance used by the in-crate tests and a few guard checks.
pub const EPS: Real = 1e-9;
