//! Small fixed-size square matrices (row-major).

use core::fmt;
use core::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::vector::{Vec2, Vec3, Vec4};
use crate::Real;

/// A 2×2 matrix, row-major.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat2 {
    /// Row-major elements: `m[row][col]`.
    pub m: [[Real; 2]; 2],
}

/// A 3×3 matrix, row-major. Used for rotations, camera intrinsics and
/// covariance blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major elements: `m[row][col]`.
    pub m: [[Real; 3]; 3],
}

/// A 4×4 matrix, row-major. Used for homogeneous transforms and projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Row-major elements: `m[row][col]`.
    pub m: [[Real; 4]; 4],
}

macro_rules! impl_matrix_common {
    ($name:ident, $n:expr, $vec:ident) => {
        impl $name {
            /// The zero matrix.
            pub const ZERO: Self = Self { m: [[0.0; $n]; $n] };

            /// The identity matrix.
            #[inline]
            pub fn identity() -> Self {
                let mut m = [[0.0; $n]; $n];
                let mut i = 0;
                while i < $n {
                    m[i][i] = 1.0;
                    i += 1;
                }
                Self { m }
            }

            /// Creates a matrix from row-major data.
            #[inline]
            pub const fn from_rows(m: [[Real; $n]; $n]) -> Self {
                Self { m }
            }

            /// Creates a diagonal matrix from the given vector.
            #[inline]
            pub fn from_diagonal(d: $vec) -> Self {
                let mut out = Self::ZERO;
                for i in 0..$n {
                    out.m[i][i] = d[i];
                }
                out
            }

            /// Returns the transpose.
            #[inline]
            pub fn transpose(&self) -> Self {
                let mut out = Self::ZERO;
                for r in 0..$n {
                    for c in 0..$n {
                        out.m[c][r] = self.m[r][c];
                    }
                }
                out
            }

            /// Returns the trace (sum of diagonal elements).
            #[inline]
            pub fn trace(&self) -> Real {
                let mut t = 0.0;
                for i in 0..$n {
                    t += self.m[i][i];
                }
                t
            }

            /// Multiplies every element by `s`.
            #[inline]
            pub fn scale(&self, s: Real) -> Self {
                let mut out = *self;
                for r in 0..$n {
                    for c in 0..$n {
                        out.m[r][c] *= s;
                    }
                }
                out
            }

            /// Returns row `r` as a vector.
            ///
            /// # Panics
            ///
            /// Panics when `r` is out of range.
            #[inline]
            pub fn row(&self, r: usize) -> $vec {
                let mut v = $vec::ZERO;
                for c in 0..$n {
                    v[c] = self.m[r][c];
                }
                v
            }

            /// Returns column `c` as a vector.
            ///
            /// # Panics
            ///
            /// Panics when `c` is out of range.
            #[inline]
            pub fn col(&self, c: usize) -> $vec {
                let mut v = $vec::ZERO;
                for r in 0..$n {
                    v[r] = self.m[r][c];
                }
                v
            }

            /// Frobenius norm.
            #[inline]
            pub fn frobenius_norm(&self) -> Real {
                let mut s = 0.0;
                for r in 0..$n {
                    for c in 0..$n {
                        s += self.m[r][c] * self.m[r][c];
                    }
                }
                s.sqrt()
            }

            /// True when all entries are finite.
            #[inline]
            pub fn is_finite(&self) -> bool {
                self.m.iter().all(|row| row.iter().all(|v| v.is_finite()))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                let mut out = self;
                for r in 0..$n {
                    for c in 0..$n {
                        out.m[r][c] += rhs.m[r][c];
                    }
                }
                out
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                let mut out = self;
                for r in 0..$n {
                    for c in 0..$n {
                        out.m[r][c] -= rhs.m[r][c];
                    }
                }
                out
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self.scale(-1.0)
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                let mut out = Self::ZERO;
                for r in 0..$n {
                    for c in 0..$n {
                        let mut acc = 0.0;
                        for k in 0..$n {
                            acc += self.m[r][k] * rhs.m[k][c];
                        }
                        out.m[r][c] = acc;
                    }
                }
                out
            }
        }

        impl Mul<$vec> for $name {
            type Output = $vec;
            #[inline]
            fn mul(self, v: $vec) -> $vec {
                let mut out = $vec::ZERO;
                for r in 0..$n {
                    let mut acc = 0.0;
                    for c in 0..$n {
                        acc += self.m[r][c] * v[c];
                    }
                    out[r] = acc;
                }
                out
            }
        }

        impl Mul<Real> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, s: Real) -> Self {
                self.scale(s)
            }
        }

        impl Index<(usize, usize)> for $name {
            type Output = Real;
            #[inline]
            fn index(&self, (r, c): (usize, usize)) -> &Real {
                &self.m[r][c]
            }
        }

        impl IndexMut<(usize, usize)> for $name {
            #[inline]
            fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Real {
                &mut self.m[r][c]
            }
        }

        impl Default for $name {
            #[inline]
            fn default() -> Self {
                Self::identity()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for r in 0..$n {
                    write!(f, "[")?;
                    for c in 0..$n {
                        if c > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{:.6}", self.m[r][c])?;
                    }
                    writeln!(f, "]")?;
                }
                Ok(())
            }
        }
    };
}

impl_matrix_common!(Mat2, 2, Vec2);
impl_matrix_common!(Mat3, 3, Vec3);
impl_matrix_common!(Mat4, 4, Vec4);

impl Mat2 {
    /// Determinant.
    #[inline]
    pub fn determinant(&self) -> Real {
        self.m[0][0] * self.m[1][1] - self.m[0][1] * self.m[1][0]
    }

    /// Inverse, or `None` when singular.
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if det.abs() < 1e-300 {
            return None;
        }
        let inv = 1.0 / det;
        Some(Self::from_rows([
            [self.m[1][1] * inv, -self.m[0][1] * inv],
            [-self.m[1][0] * inv, self.m[0][0] * inv],
        ]))
    }

    /// A rotation by `angle` radians.
    pub fn rotation(angle: Real) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_rows([[c, -s], [s, c]])
    }
}

impl Mat3 {
    /// Determinant by cofactor expansion.
    pub fn determinant(&self) -> Real {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse via the adjugate, or `None` when singular.
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if det.abs() < 1e-300 {
            return None;
        }
        let m = &self.m;
        let inv = 1.0 / det;
        let mut out = Self::ZERO;
        out.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv;
        out.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv;
        out.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv;
        out.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv;
        out.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv;
        out.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv;
        out.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv;
        out.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv;
        out.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv;
        Some(out)
    }

    /// Outer product `a * bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        let mut out = Self::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = a[r] * b[c];
            }
        }
        out
    }

    /// Embeds this 3×3 matrix as the upper-left block of a 4×4 homogeneous
    /// transform (translation zero).
    pub fn to_homogeneous(&self) -> Mat4 {
        let mut out = Mat4::identity();
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c];
            }
        }
        out
    }
}

impl Mat4 {
    /// Builds a rigid transform from rotation `r` and translation `t`.
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Self {
        let mut out = r.to_homogeneous();
        out.m[0][3] = t.x;
        out.m[1][3] = t.y;
        out.m[2][3] = t.z;
        out
    }

    /// Transforms a 3-D point (applies translation).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        (*self * p.extend(1.0)).project()
    }

    /// Transforms a 3-D direction (ignores translation, no perspective divide).
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        (*self * v.extend(0.0)).truncate()
    }

    /// Right-handed perspective projection (OpenGL convention, depth in
    /// `[-1, 1]`).
    ///
    /// `fovy_rad` is the vertical field of view in radians.
    ///
    /// # Panics
    ///
    /// Panics if `aspect`, `fovy_rad`, or `far - near` is non-positive.
    pub fn perspective(fovy_rad: Real, aspect: Real, near: Real, far: Real) -> Self {
        assert!(fovy_rad > 0.0 && aspect > 0.0 && far > near, "invalid perspective parameters");
        let f = 1.0 / (fovy_rad / 2.0).tan();
        let mut out = Self::ZERO;
        out.m[0][0] = f / aspect;
        out.m[1][1] = f;
        out.m[2][2] = (far + near) / (near - far);
        out.m[2][3] = 2.0 * far * near / (near - far);
        out.m[3][2] = -1.0;
        out
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_rows([
            [s.x, s.y, s.z, -s.dot(eye)],
            [u.x, u.y, u.z, -u.dot(eye)],
            [-f.x, -f.y, -f.z, f.dot(eye)],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Inverse of a rigid transform (rotation + translation only) — much
    /// cheaper and better conditioned than a general inverse.
    pub fn rigid_inverse(&self) -> Self {
        let mut r_t = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                r_t.m[r][c] = self.m[c][r];
            }
        }
        let t = Vec3::new(self.m[0][3], self.m[1][3], self.m[2][3]);
        let new_t = -(r_t * t);
        Self::from_rotation_translation(r_t, new_t)
    }

    /// General inverse via Gauss-Jordan elimination, or `None` when singular.
    pub fn inverse(&self) -> Option<Self> {
        let mut a = self.m;
        let mut inv = Self::identity().m;
        for col in 0..4 {
            // Partial pivoting.
            let mut pivot = col;
            for r in (col + 1)..4 {
                if a[r][col].abs() > a[pivot][col].abs() {
                    pivot = r;
                }
            }
            if a[pivot][col].abs() < 1e-300 {
                return None;
            }
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let d = a[col][col];
            for c in 0..4 {
                a[col][c] /= d;
                inv[col][c] /= d;
            }
            for r in 0..4 {
                if r != col {
                    let f = a[r][col];
                    for c in 0..4 {
                        a[r][c] -= f * a[col][c];
                        inv[r][c] -= f * inv[col][c];
                    }
                }
            }
        }
        Some(Self { m: inv })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3::from_rows([[2.0, 1.0, 0.5], [0.0, 3.0, -1.0], [1.0, 0.0, 4.0]]);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        assert!((id - Mat3::identity()).frobenius_norm() < 1e-12);
    }

    #[test]
    fn mat3_singular_has_no_inverse() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]]);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn mat4_inverse_roundtrip() {
        let m = Mat4::from_rows([
            [1.0, 2.0, 0.0, 1.0],
            [0.0, 1.0, 3.0, -2.0],
            [4.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.5, 1.0],
        ]);
        let inv = m.inverse().unwrap();
        let id = m * inv;
        assert!((id - Mat4::identity()).frobenius_norm() < 1e-10);
    }

    #[test]
    fn rigid_inverse_matches_general_inverse() {
        let r = Mat2::rotation(0.3);
        let mut rot = Mat3::identity();
        rot.m[0][0] = r.m[0][0];
        rot.m[0][1] = r.m[0][1];
        rot.m[1][0] = r.m[1][0];
        rot.m[1][1] = r.m[1][1];
        let t = Vec3::new(1.0, -2.0, 0.5);
        let m = Mat4::from_rotation_translation(rot, t);
        let a = m.rigid_inverse();
        let b = m.inverse().unwrap();
        assert!((a - b).frobenius_norm() < 1e-12);
    }

    #[test]
    fn perspective_maps_near_far_planes() {
        let p = Mat4::perspective(std::f64::consts::FRAC_PI_2, 1.0, 0.1, 100.0);
        let near = p.transform_point(Vec3::new(0.0, 0.0, -0.1));
        let far = p.transform_point(Vec3::new(0.0, 0.0, -100.0));
        assert!((near.z + 1.0).abs() < 1e-9);
        assert!((far.z - 1.0).abs() < 1e-9);
    }

    #[test]
    fn look_at_centers_target() {
        let v = Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::UNIT_Y);
        let p = v.transform_point(Vec3::ZERO);
        assert!(p.x.abs() < 1e-12 && p.y.abs() < 1e-12);
        assert!((p.z + 5.0).abs() < 1e-12);
    }

    #[test]
    fn matvec_is_row_major() {
        let m = Mat3::from_rows([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]);
        let v = m * Vec3::new(1.0, 0.0, 0.0);
        assert_eq!(v, Vec3::new(1.0, 4.0, 7.0));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::from_rows([
            [1.0, 2.0, 3.0, 4.0],
            [5.0, 6.0, 7.0, 8.0],
            [9.0, 10.0, 11.0, 12.0],
            [13.0, 14.0, 15.0, 16.0],
        ]);
        assert_eq!(m.transpose().transpose(), m);
    }
}
