//! Dynamically sized matrices and vectors.
//!
//! These back the VIO filter's state covariance and Jacobians, whose sizes
//! change at run time as features are added and marginalized. Storage is
//! row-major `Vec<f64>`.

use core::fmt;
use core::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::vector::Vec3;
use crate::Real;

/// A dynamically sized column vector.
pub type DVector = DMatrix;

/// A dynamically sized dense matrix (row-major).
///
/// A [`DVector`] is simply a `DMatrix` with one column.
///
/// # Examples
///
/// ```
/// use illixr_math::DMatrix;
/// let a = DMatrix::identity(3);
/// let b = DMatrix::from_fn(3, 3, |r, c| (r + c) as f64);
/// let c = &a * &b;
/// assert_eq!(c[(1, 2)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Real>,
}

impl DMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Real) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_row_slice(rows: usize, cols: usize, data: &[Real]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data: data.to_vec() }
    }

    /// Creates a column vector from a slice.
    pub fn column(data: &[Real]) -> Self {
        Self::from_row_slice(data.len(), 1, data)
    }

    /// Creates a 3-element column vector from a [`Vec3`].
    pub fn from_vec3(v: Vec3) -> Self {
        Self::column(&[v.x, v.y, v.z])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix has either zero rows or zero columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Underlying row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[Real] {
        &self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Copies `block` into this matrix with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics when the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &DMatrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols, "block out of range");
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(r0 + r, c0 + c)] = block[(r, c)];
            }
        }
    }

    /// Extracts the `rows × cols` block whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics when the block does not fit.
    pub fn block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> DMatrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols, "block out of range");
        DMatrix::from_fn(rows, cols, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: Real) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|v| v * s).collect() }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> Real {
        self.data.iter().map(|v| v * v).sum::<Real>().sqrt()
    }

    /// Euclidean norm — alias of the Frobenius norm, reads naturally for
    /// vectors.
    #[inline]
    pub fn norm(&self) -> Real {
        self.frobenius_norm()
    }

    /// Dot product between two vectors (matrices treated as flat arrays).
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn dot(&self, other: &Self) -> Real {
        assert_eq!(self.data.len(), other.data.len(), "dot: shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn mul_transpose(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "mul_transpose: inner dimension mismatch");
        let mut out = Self::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            for c in 0..other.rows {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.data[r * self.cols + k] * other.data[c * other.cols + k];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn transpose_mul(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "transpose_mul: inner dimension mismatch");
        let mut out = Self::zeros(self.cols, other.cols);
        for r in 0..self.cols {
            for c in 0..other.cols {
                let mut acc = 0.0;
                for k in 0..self.rows {
                    acc += self.data[k * self.cols + r] * other.data[k * other.cols + c];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ) / 2`. Keeps covariance matrices
    /// numerically symmetric across filter updates.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = (self[(r, c)] + self[(c, r)]) * 0.5;
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }

    /// Removes the given (sorted, unique) row/column indices from a square
    /// matrix — the marginalization primitive of the MSCKF.
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not square or indices are out of range.
    pub fn remove_rows_cols(&self, indices: &[usize]) -> Self {
        assert_eq!(self.rows, self.cols, "remove_rows_cols requires a square matrix");
        let keep: Vec<usize> = (0..self.rows).filter(|i| !indices.contains(i)).collect();
        DMatrix::from_fn(keep.len(), keep.len(), |r, c| self[(keep[r], keep[c])])
    }

    /// Removes the given rows from a vector/matrix.
    pub fn remove_rows(&self, indices: &[usize]) -> Self {
        let keep: Vec<usize> = (0..self.rows).filter(|i| !indices.contains(i)).collect();
        DMatrix::from_fn(keep.len(), self.cols, |r, c| self[(keep[r], c)])
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics when the column counts differ.
    pub fn vstack(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut out = Self::zeros(self.rows + other.rows, self.cols);
        out.set_block(0, 0, self);
        out.set_block(self.rows, 0, other);
        out
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> Real {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// True when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = Real;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Real {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Real {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Index<usize> for DMatrix {
    type Output = Real;
    /// Flat indexing — natural for vectors.
    #[inline]
    fn index(&self, i: usize) -> &Real {
        &self.data[i]
    }
}

impl IndexMut<usize> for DMatrix {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut Real {
        &mut self.data[i]
    }
}

impl Add for &DMatrix {
    type Output = DMatrix;
    fn add(self, rhs: Self) -> DMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add: shape mismatch");
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &DMatrix {
    type Output = DMatrix;
    fn sub(self, rhs: Self) -> DMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub: shape mismatch");
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &DMatrix {
    type Output = DMatrix;
    fn mul(self, rhs: Self) -> DMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "mul: inner dimension mismatch ({}x{} * {}x{})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = DMatrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order for cache-friendly row-major access.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let row_out = i * rhs.cols;
                let row_rhs = k * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[row_out + j] += a * rhs.data[row_rhs + j];
                }
            }
        }
        out
    }
}

impl fmt::Display for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMatrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:+.4}", self[(r, c)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = DMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let id = DMatrix::identity(3);
        assert_eq!(&id * &a, a);
    }

    #[test]
    fn mul_matches_known_product() {
        let a = DMatrix::from_row_slice(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DMatrix::from_row_slice(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = &a * &b;
        assert_eq!(c, DMatrix::from_row_slice(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn transpose_mul_consistency() {
        let a = DMatrix::from_fn(4, 3, |r, c| (r as f64 - c as f64) * 0.5);
        let b = DMatrix::from_fn(4, 2, |r, c| (r * c) as f64 + 1.0);
        let direct = &a.transpose() * &b;
        assert!((&direct - &a.transpose_mul(&b)).frobenius_norm() < 1e-12);
    }

    #[test]
    fn mul_transpose_consistency() {
        let a = DMatrix::from_fn(3, 4, |r, c| (r + 2 * c) as f64);
        let b = DMatrix::from_fn(2, 4, |r, c| (c as f64) - (r as f64));
        let direct = &a * &b.transpose();
        assert!((&direct - &a.mul_transpose(&b)).frobenius_norm() < 1e-12);
    }

    #[test]
    fn block_roundtrip() {
        let mut m = DMatrix::zeros(5, 5);
        let b = DMatrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64 + 1.0);
        m.set_block(1, 2, &b);
        assert_eq!(m.block(1, 2, 2, 3), b);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn remove_rows_cols_marginalization() {
        let m = DMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let out = m.remove_rows_cols(&[1, 2]);
        assert_eq!(out.rows(), 2);
        assert_eq!(out[(0, 0)], 0.0);
        assert_eq!(out[(0, 1)], 3.0);
        assert_eq!(out[(1, 0)], 12.0);
        assert_eq!(out[(1, 1)], 15.0);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut m = DMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        m.symmetrize();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], m[(c, r)]);
            }
        }
    }

    #[test]
    fn vstack_shapes() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::identity(3);
        let c = a.vstack(&b);
        assert_eq!((c.rows(), c.cols()), (5, 3));
        assert_eq!(c[(2, 0)], 1.0);
    }

    #[test]
    #[should_panic]
    fn mul_shape_mismatch_panics() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::zeros(2, 3);
        let _ = &a * &b;
    }
}
