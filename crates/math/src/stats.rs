//! Streaming and batch statistics used by the telemetry and QoE layers.

use crate::Real;

/// Numerically stable streaming mean/variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use illixr_math::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: Real,
    m2: Real,
    min: Real,
    max: Real,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: Real::INFINITY, max: Real::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: Real) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as Real;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> Real {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> Real {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as Real
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> Real {
        self.variance().sqrt()
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> Real {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as Real
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> Real {
        self.population_variance().sqrt()
    }

    /// Minimum sample (`+∞` when empty).
    pub fn min(&self) -> Real {
        self.min
    }

    /// Maximum sample (`-∞` when empty).
    pub fn max(&self) -> Real {
        self.max
    }

    /// Coefficient of variation (std-dev / mean), 0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> Real {
        let m = self.mean();
        if m.abs() < Real::EPSILON {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as Real / total as Real;
        let m2 =
            self.m2 + other.m2 + delta * delta * (self.n as Real * other.n as Real) / total as Real;
        self.n = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Returns the `p`-th percentile (0–100) of `data` by linear interpolation.
///
/// Returns `None` when `data` is empty. The input does not need to be sorted.
pub fn percentile(data: &[Real], p: Real) -> Option<Real> {
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<Real> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as Real;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as Real;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Batch mean of a slice (0 when empty).
pub fn mean(data: &[Real]) -> Real {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<Real>() / data.len() as Real
    }
}

/// Batch unbiased standard deviation of a slice (0 when `len < 2`).
pub fn std_dev(data: &[Real]) -> Real {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    (data.iter().map(|x| (x - m) * (x - m)).sum::<Real>() / (data.len() - 1) as Real).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_batch() {
        let data = [1.5, 2.5, 3.5, -1.0, 0.0, 10.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert!((s.mean() - mean(&data)).abs() < 1e-12);
        assert!((s.std_dev() - std_dev(&data)).abs() < 1e-12);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn merge_matches_combined() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a_data.iter().for_each(|&x| a.push(x));
        b_data.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        let all: Vec<f64> = a_data.iter().chain(&b_data).copied().collect();
        assert!((a.mean() - mean(&all)).abs() < 1e-12);
        assert!((a.std_dev() - std_dev(&all)).abs() < 1e-12);
    }

    #[test]
    fn percentile_basics() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 100.0), Some(5.0));
        assert_eq!(percentile(&data, 50.0), Some(3.0));
        assert_eq!(percentile(&data, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.count(), 0);
    }
}
