//! SO(3) helpers: skew-symmetric matrices, exponential and logarithm maps.
//!
//! These are the workhorses of the VIO error-state filter: the
//! exponential map converts small rotation-vector perturbations into
//! rotation matrices, the logarithm does the inverse.

use crate::matrix::Mat3;
use crate::vector::Vec3;
use crate::Real;

/// The skew-symmetric (cross-product) matrix `[v]×` such that
/// `skew(v) * w == v.cross(w)`.
pub fn skew(v: Vec3) -> Mat3 {
    Mat3::from_rows([[0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0]])
}

/// SO(3) exponential map: rotation vector → rotation matrix (Rodrigues).
pub fn so3_exp(phi: Vec3) -> Mat3 {
    let theta = phi.norm();
    let k = skew(phi);
    if theta < 1e-9 {
        // Second-order Taylor expansion.
        return Mat3::identity() + k + (k * k).scale(0.5);
    }
    let a = theta.sin() / theta;
    let b = (1.0 - theta.cos()) / (theta * theta);
    Mat3::identity() + k.scale(a) + (k * k).scale(b)
}

/// SO(3) logarithm map: rotation matrix → rotation vector.
///
/// The result has angle in `[0, π]`.
pub fn so3_log(r: &Mat3) -> Vec3 {
    let cos_theta = ((r.trace() - 1.0) * 0.5).clamp(-1.0, 1.0);
    let theta = cos_theta.acos();
    if theta < 1e-9 {
        // Near identity: vee of the antisymmetric part.
        return Vec3::new(
            (r.m[2][1] - r.m[1][2]) * 0.5,
            (r.m[0][2] - r.m[2][0]) * 0.5,
            (r.m[1][0] - r.m[0][1]) * 0.5,
        );
    }
    if (std::f64::consts::PI - theta) < 1e-6 {
        // Near π the antisymmetric part vanishes; recover the axis from the
        // symmetric part: R ≈ 2aaᵀ - I.
        let diag = Vec3::new(r.m[0][0], r.m[1][1], r.m[2][2]);
        let axis_sq = (diag + Vec3::splat(1.0)) * 0.5;
        let mut axis = Vec3::new(
            axis_sq.x.max(0.0).sqrt(),
            axis_sq.y.max(0.0).sqrt(),
            axis_sq.z.max(0.0).sqrt(),
        );
        // Fix signs using off-diagonal terms relative to the largest axis component.
        if axis.x >= axis.y && axis.x >= axis.z {
            axis.y = axis.y.copysign(r.m[0][1] + r.m[1][0]);
            axis.z = axis.z.copysign(r.m[0][2] + r.m[2][0]);
        } else if axis.y >= axis.z {
            axis.x = axis.x.copysign(r.m[0][1] + r.m[1][0]);
            axis.z = axis.z.copysign(r.m[1][2] + r.m[2][1]);
        } else {
            axis.x = axis.x.copysign(r.m[0][2] + r.m[2][0]);
            axis.y = axis.y.copysign(r.m[1][2] + r.m[2][1]);
        }
        return axis.normalized() * theta;
    }
    let factor = theta / (2.0 * theta.sin());
    Vec3::new(
        (r.m[2][1] - r.m[1][2]) * factor,
        (r.m[0][2] - r.m[2][0]) * factor,
        (r.m[1][0] - r.m[0][1]) * factor,
    )
}

/// The right Jacobian of SO(3), used when propagating IMU noise through the
/// exponential map.
pub fn so3_right_jacobian(phi: Vec3) -> Mat3 {
    let theta = phi.norm();
    let k = skew(phi);
    if theta < 1e-9 {
        return Mat3::identity() - k.scale(0.5) + (k * k).scale(1.0 / 6.0);
    }
    let t2 = theta * theta;
    let a = (1.0 - theta.cos()) / t2;
    let b = (theta - theta.sin()) / (t2 * theta);
    Mat3::identity() - k.scale(a) + (k * k).scale(b)
}

/// Returns `x` wrapped into `(-π, π]`.
pub fn wrap_angle(x: Real) -> Real {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = x % two_pi;
    if a > std::f64::consts::PI {
        a -= two_pi;
    } else if a <= -std::f64::consts::PI {
        a += two_pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quat::Quat;
    use std::f64::consts::PI;

    #[test]
    fn skew_matches_cross() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        let w = Vec3::new(0.3, 0.7, -1.1);
        assert!(((skew(v) * w) - v.cross(w)).norm() < 1e-12);
    }

    #[test]
    fn exp_log_roundtrip() {
        for phi in [
            Vec3::new(0.1, 0.2, -0.3),
            Vec3::new(1.5, -0.5, 0.8),
            Vec3::new(1e-12, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        ] {
            let r = so3_exp(phi);
            let back = so3_log(&r);
            assert!((back - phi).norm() < 1e-8, "phi={phi:?} back={back:?}");
        }
    }

    #[test]
    fn log_near_pi() {
        let phi = Vec3::new(0.0, 0.0, PI - 1e-8);
        let r = so3_exp(phi);
        let back = so3_log(&r);
        assert!((back.norm() - phi.norm()).abs() < 1e-6);
        assert!(back.normalized().dot(phi.normalized()).abs() > 0.999);
    }

    #[test]
    fn exp_matches_quaternion() {
        let phi = Vec3::new(0.4, -0.2, 0.9);
        let r1 = so3_exp(phi);
        let r2 = Quat::from_rotation_vector(phi).to_rotation_matrix();
        assert!((r1 - r2).frobenius_norm() < 1e-10);
    }

    #[test]
    fn exp_is_orthonormal() {
        let r = so3_exp(Vec3::new(0.7, 0.1, -2.0));
        let should_be_id = r * r.transpose();
        assert!((should_be_id - Mat3::identity()).frobenius_norm() < 1e-12);
        assert!((r.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn right_jacobian_small_angle_is_identity() {
        let j = so3_right_jacobian(Vec3::splat(1e-12));
        assert!((j - Mat3::identity()).frobenius_norm() < 1e-9);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(0.5) - 0.5).abs() < 1e-15);
    }
}
