//! Unit quaternions for representing orientations.

use core::fmt;
use core::ops::{Mul, Neg};

use crate::matrix::Mat3;
use crate::vector::Vec3;
use crate::Real;

/// A quaternion `w + xi + yj + zk`.
///
/// Orientation-representing quaternions are kept (approximately) unit-norm;
/// most constructors normalize. The convention follows Hamilton products with
/// `rotate` applying the rotation `q v q⁻¹`.
///
/// # Examples
///
/// ```
/// use illixr_math::{Quat, Vec3};
/// let q = Quat::from_axis_angle(Vec3::UNIT_Z, std::f64::consts::FRAC_PI_2);
/// let v = q.rotate(Vec3::UNIT_X);
/// assert!((v - Vec3::UNIT_Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: Real,
    /// First imaginary coefficient.
    pub x: Real,
    /// Second imaginary coefficient.
    pub y: Real,
    /// Third imaginary coefficient.
    pub z: Real,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a quaternion from raw coefficients (not normalized).
    #[inline]
    pub const fn new(w: Real, x: Real, y: Real, z: Real) -> Self {
        Self { w, x, y, z }
    }

    /// Creates a rotation of `angle` radians about `axis`.
    ///
    /// The axis is normalized internally; a zero axis yields the identity.
    pub fn from_axis_angle(axis: Vec3, angle: Real) -> Self {
        let n = axis.norm();
        if n <= Real::EPSILON {
            return Self::IDENTITY;
        }
        let half = angle * 0.5;
        let (s, c) = half.sin_cos();
        let a = axis / n;
        Self::new(c, a.x * s, a.y * s, a.z * s)
    }

    /// Creates a rotation from a rotation vector (axis scaled by angle).
    pub fn from_rotation_vector(rv: Vec3) -> Self {
        let angle = rv.norm();
        if angle <= 1e-12 {
            // First-order expansion keeps integration smooth near zero.
            Self::new(1.0, rv.x * 0.5, rv.y * 0.5, rv.z * 0.5).normalized()
        } else {
            Self::from_axis_angle(rv, angle)
        }
    }

    /// Creates a rotation from yaw (Z), pitch (Y), roll (X) Tait-Bryan
    /// angles, applied in that order (ZYX extrinsic).
    pub fn from_euler(yaw: Real, pitch: Real, roll: Real) -> Self {
        let qz = Self::from_axis_angle(Vec3::UNIT_Z, yaw);
        let qy = Self::from_axis_angle(Vec3::UNIT_Y, pitch);
        let qx = Self::from_axis_angle(Vec3::UNIT_X, roll);
        (qz * qy * qx).normalized()
    }

    /// The quaternion's Euclidean norm.
    #[inline]
    pub fn norm(self) -> Real {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized (unit) quaternion; identity when degenerate.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n <= Real::EPSILON {
            Self::IDENTITY
        } else {
            Self::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// The conjugate (inverse for unit quaternions).
    #[inline]
    pub fn conjugate(self) -> Self {
        Self::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Alias of [`Quat::conjugate`] for unit quaternions.
    #[inline]
    pub fn inverse(self) -> Self {
        self.conjugate()
    }

    /// Quaternion dot product (cosine of half the angle between rotations
    /// for unit quaternions).
    #[inline]
    pub fn dot(self, other: Self) -> Real {
        self.w * other.w + self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Rotates a vector by this (unit) quaternion.
    #[inline]
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2 * u × (u × v + w v), u = (x, y, z)
        let u = Vec3::new(self.x, self.y, self.z);
        let t = u.cross(v) * 2.0;
        v + t * self.w + u.cross(t)
    }

    /// Converts to a rotation matrix.
    pub fn to_rotation_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows([
            [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)],
            [2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)],
            [2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)],
        ])
    }

    /// Converts a rotation matrix to a quaternion (Shepperd's method).
    pub fn from_rotation_matrix(m: &Mat3) -> Self {
        let t = m.trace();
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Self::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Self::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Self::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Self::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        };
        q.normalized()
    }

    /// Rotation angle in radians (in `[0, π]`).
    pub fn angle(self) -> Real {
        let q = self.normalized();
        2.0 * q.w.abs().min(1.0).acos()
    }

    /// Rotation vector (axis × angle) — the SO(3) logarithm.
    pub fn to_rotation_vector(self) -> Vec3 {
        let q = if self.w < 0.0 { -self } else { self }.normalized();
        let u = Vec3::new(q.x, q.y, q.z);
        let sin_half = u.norm();
        if sin_half < 1e-12 {
            u * 2.0
        } else {
            let angle = 2.0 * sin_half.atan2(q.w);
            u * (angle / sin_half)
        }
    }

    /// Spherical linear interpolation from `self` to `other`.
    ///
    /// Takes the shortest arc; `t` is clamped to `[0, 1]`.
    pub fn slerp(self, other: Self, t: Real) -> Self {
        let t = t.clamp(0.0, 1.0);
        let mut b = other;
        let mut dot = self.dot(b);
        if dot < 0.0 {
            b = -b;
            dot = -dot;
        }
        if dot > 0.9995 {
            // Nearly parallel: fall back to normalized lerp.
            return Self::new(
                self.w + (b.w - self.w) * t,
                self.x + (b.x - self.x) * t,
                self.y + (b.y - self.y) * t,
                self.z + (b.z - self.z) * t,
            )
            .normalized();
        }
        let theta0 = dot.clamp(-1.0, 1.0).acos();
        let theta = theta0 * t;
        let s0 = ((1.0 - t) * theta0).sin() / theta0.sin();
        let s1 = theta.sin() / theta0.sin();
        Self::new(
            self.w * s0 + b.w * s1,
            self.x * s0 + b.x * s1,
            self.y * s0 + b.y * s1,
            self.z * s0 + b.z * s1,
        )
        .normalized()
    }

    /// The geodesic angle between two orientations, in radians.
    pub fn angle_to(self, other: Self) -> Real {
        (self.inverse() * other).angle()
    }

    /// True when all coefficients are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Mul for Quat {
    type Output = Self;

    /// Hamilton product: `self * rhs` applies `rhs` first, then `self`.
    #[inline]
    fn mul(self, r: Self) -> Self {
        Self::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

impl Neg for Quat {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.w, -self.x, -self.y, -self.z)
    }
}

impl Default for Quat {
    #[inline]
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl fmt::Display for Quat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6} + {:.6}i + {:.6}j + {:.6}k)", self.w, self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn rotate_matches_matrix() {
        let q = Quat::from_euler(0.3, -0.7, 1.1);
        let m = q.to_rotation_matrix();
        let v = Vec3::new(0.2, -1.5, 3.0);
        assert!((q.rotate(v) - m * v).norm() < 1e-12);
    }

    #[test]
    fn matrix_roundtrip() {
        let q = Quat::from_euler(-2.0, 0.4, 0.9);
        let q2 = Quat::from_rotation_matrix(&q.to_rotation_matrix());
        // q and -q are the same rotation.
        let d = q.dot(q2).abs();
        assert!((d - 1.0).abs() < 1e-10);
    }

    #[test]
    fn rotation_vector_roundtrip() {
        let rv = Vec3::new(0.1, -0.4, 0.25);
        let q = Quat::from_rotation_vector(rv);
        assert!((q.to_rotation_vector() - rv).norm() < 1e-10);
    }

    #[test]
    fn small_rotation_vector_roundtrip() {
        let rv = Vec3::new(1e-14, -2e-14, 3e-15);
        let q = Quat::from_rotation_vector(rv);
        assert!(q.is_finite());
        assert!((q.to_rotation_vector() - rv).norm() < 1e-12);
    }

    #[test]
    fn composition_order() {
        let qz = Quat::from_axis_angle(Vec3::UNIT_Z, FRAC_PI_2);
        let qx = Quat::from_axis_angle(Vec3::UNIT_X, FRAC_PI_2);
        // (qz * qx) applies qx first.
        let v = (qz * qx).rotate(Vec3::UNIT_Y);
        let expected = qz.rotate(qx.rotate(Vec3::UNIT_Y));
        assert!((v - expected).norm() < 1e-12);
    }

    #[test]
    fn slerp_halfway() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::UNIT_Y, PI / 2.0);
        let mid = a.slerp(b, 0.5);
        assert!((mid.angle() - PI / 4.0).abs() < 1e-10);
    }

    #[test]
    fn slerp_takes_shortest_arc() {
        let a = Quat::from_axis_angle(Vec3::UNIT_Z, 0.1);
        let b = -Quat::from_axis_angle(Vec3::UNIT_Z, 0.2); // same rotation, opposite sign
        let mid = a.slerp(b, 0.5);
        assert!((mid.angle() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let q = Quat::from_euler(0.5, 1.0, -0.3);
        let r = q * q.inverse();
        assert!((r.angle()).abs() < 1e-10);
    }

    #[test]
    fn angle_to_is_symmetric() {
        let a = Quat::from_euler(0.1, 0.2, 0.3);
        let b = Quat::from_euler(-0.4, 0.0, 1.0);
        assert!((a.angle_to(b) - b.angle_to(a)).abs() < 1e-12);
    }
}
