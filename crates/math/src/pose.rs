//! Rigid-body poses (SE(3)): the common currency of the perception and
//! visual pipelines.

use core::fmt;

use crate::matrix::Mat4;
use crate::quat::Quat;
use crate::vector::Vec3;
use crate::Real;

/// A rigid-body pose: position plus orientation.
///
/// The pose maps points from the *body* frame to the *world* frame:
/// `p_world = orientation * p_body + position`.
///
/// # Examples
///
/// ```
/// use illixr_math::{Pose, Quat, Vec3};
/// let t = Pose::new(Vec3::new(0.0, 1.0, 0.0), Quat::IDENTITY);
/// assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(0.0, 1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Position of the body origin in the world frame.
    pub position: Vec3,
    /// Orientation of the body frame relative to the world frame.
    pub orientation: Quat,
}

impl Pose {
    /// The identity pose.
    pub const IDENTITY: Self = Self { position: Vec3::ZERO, orientation: Quat::IDENTITY };

    /// Creates a pose from position and orientation.
    #[inline]
    pub fn new(position: Vec3, orientation: Quat) -> Self {
        Self { position, orientation: orientation.normalized() }
    }

    /// Maps a point from the body frame to the world frame.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.orientation.rotate(p) + self.position
    }

    /// Maps a direction from the body frame to the world frame.
    #[inline]
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        self.orientation.rotate(v)
    }

    /// The inverse pose (world → body).
    pub fn inverse(&self) -> Self {
        let inv_q = self.orientation.inverse();
        Self { position: -(inv_q.rotate(self.position)), orientation: inv_q }
    }

    /// Pose composition: `self ∘ other` applies `other` first.
    pub fn compose(&self, other: &Self) -> Self {
        Self {
            position: self.transform_point(other.position),
            orientation: (self.orientation * other.orientation).normalized(),
        }
    }

    /// The relative pose taking `self` to `other`: `self⁻¹ ∘ other`.
    pub fn relative_to(&self, other: &Self) -> Self {
        self.inverse().compose(other)
    }

    /// Converts to a homogeneous 4×4 transform.
    pub fn to_matrix(&self) -> Mat4 {
        Mat4::from_rotation_translation(self.orientation.to_rotation_matrix(), self.position)
    }

    /// Interpolates between two poses (lerp position, slerp orientation).
    pub fn interpolate(&self, other: &Self, t: Real) -> Self {
        Self {
            position: self.position.lerp(other.position, t),
            orientation: self.orientation.slerp(other.orientation, t),
        }
    }

    /// Translation distance to another pose.
    #[inline]
    pub fn translation_distance(&self, other: &Self) -> Real {
        (self.position - other.position).norm()
    }

    /// Rotation angle to another pose, in radians.
    #[inline]
    pub fn rotation_distance(&self, other: &Self) -> Real {
        self.orientation.angle_to(other.orientation)
    }

    /// True when position and orientation are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.position.is_finite() && self.orientation.is_finite()
    }
}

impl Default for Pose {
    #[inline]
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pose[p={}, q={}]", self.position, self.orientation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn example() -> Pose {
        Pose::new(Vec3::new(1.0, -2.0, 0.5), Quat::from_euler(0.3, -0.6, 1.2))
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = example();
        let id = p.compose(&p.inverse());
        assert!(id.translation_distance(&Pose::IDENTITY) < 1e-12);
        assert!(id.rotation_distance(&Pose::IDENTITY) < 1e-10);
    }

    #[test]
    fn compose_matches_matrix_product() {
        let a = example();
        let b = Pose::new(Vec3::new(0.2, 0.1, -3.0), Quat::from_euler(-1.0, 0.2, 0.0));
        let c = a.compose(&b);
        let mc = a.to_matrix() * b.to_matrix();
        let p = Vec3::new(0.5, 0.6, 0.7);
        assert!((c.transform_point(p) - mc.transform_point(p)).norm() < 1e-12);
    }

    #[test]
    fn relative_to_recovers_composition() {
        let a = example();
        let rel =
            Pose::new(Vec3::new(0.0, 0.0, -1.0), Quat::from_axis_angle(Vec3::UNIT_Y, FRAC_PI_2));
        let b = a.compose(&rel);
        let back = a.relative_to(&b);
        assert!(back.translation_distance(&rel) < 1e-12);
        assert!(back.rotation_distance(&rel) < 1e-10);
    }

    #[test]
    fn interpolate_endpoints() {
        let a = example();
        let b = Pose::new(Vec3::new(5.0, 5.0, 5.0), Quat::from_euler(1.0, 1.0, 1.0));
        assert!(a.interpolate(&b, 0.0).translation_distance(&a) < 1e-12);
        assert!(a.interpolate(&b, 1.0).translation_distance(&b) < 1e-12);
    }

    #[test]
    fn transform_point_matches_matrix() {
        let a = example();
        let p = Vec3::new(-1.0, 2.0, 3.0);
        assert!((a.transform_point(p) - a.to_matrix().transform_point(p)).norm() < 1e-12);
    }
}
