//! Matrix decompositions: Cholesky, Householder QR, and LU.
//!
//! These are the numerical kernels highlighted by the paper's task
//! breakdowns (Table VI lists Cholesky, QR, SVD and Gauss-Newton as the
//! compute patterns shared between VIO and scene reconstruction).

use crate::dmatrix::DMatrix;
use crate::Real;

/// Error returned when a decomposition cannot proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompError {
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
    /// The matrix is singular to working precision (LU).
    Singular,
    /// The input shape is not supported by the decomposition.
    BadShape,
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            Self::Singular => write!(f, "matrix is singular to working precision"),
            Self::BadShape => write!(f, "matrix shape is not supported by this decomposition"),
        }
    }
}

impl std::error::Error for DecompError {}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// # Examples
///
/// ```
/// use illixr_math::{Cholesky, DMatrix};
/// let a = DMatrix::from_row_slice(2, 2, &[4.0, 2.0, 2.0, 3.0]);
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&DMatrix::column(&[1.0, 2.0]));
/// let back = &a * &x;
/// assert!((back[(0, 0)] - 1.0).abs() < 1e-12);
/// # Ok::<(), illixr_math::decomp::DecompError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMatrix,
}

impl Cholesky {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::BadShape`] for non-square input and
    /// [`DecompError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &DMatrix) -> Result<Self, DecompError> {
        if a.rows() != a.cols() {
            return Err(DecompError::BadShape);
        }
        let n = a.rows();
        let mut l = DMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(DecompError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &DMatrix {
        &self.l
    }

    /// Solves `A x = b` for each column of `b`.
    pub fn solve(&self, b: &DMatrix) -> DMatrix {
        let n = self.l.rows();
        assert_eq!(b.rows(), n, "solve: rhs row mismatch");
        let mut x = b.clone();
        for col in 0..b.cols() {
            // Forward substitution: L y = b.
            for i in 0..n {
                let mut sum = x[(i, col)];
                for k in 0..i {
                    sum -= self.l[(i, k)] * x[(k, col)];
                }
                x[(i, col)] = sum / self.l[(i, i)];
            }
            // Back substitution: Lᵀ x = y.
            for i in (0..n).rev() {
                let mut sum = x[(i, col)];
                for k in (i + 1)..n {
                    sum -= self.l[(k, i)] * x[(k, col)];
                }
                x[(i, col)] = sum / self.l[(i, i)];
            }
        }
        x
    }

    /// The inverse of the factorized matrix.
    pub fn inverse(&self) -> DMatrix {
        self.solve(&DMatrix::identity(self.l.rows()))
    }

    /// Log-determinant of the factorized matrix (numerically stable).
    pub fn log_determinant(&self) -> Real {
        let mut s = 0.0;
        for i in 0..self.l.rows() {
            s += self.l[(i, i)].ln();
        }
        2.0 * s
    }
}

/// Householder QR factorization `A = Q R` of an `m × n` matrix with `m ≥ n`.
///
/// Used by the MSCKF measurement compression and null-space projection.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Householder vectors stored below the diagonal; `R` on and above it.
    qr: DMatrix,
    /// Householder scalar coefficients.
    tau: Vec<Real>,
}

impl Qr {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::BadShape`] when `a` has more columns than rows.
    pub fn new(a: &DMatrix) -> Result<Self, DecompError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(DecompError::BadShape);
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalize so v[k] = 1 implicitly.
            for i in (k + 1)..m {
                let v = qr[(i, k)] / v0;
                qr[(i, k)] = v;
            }
            tau[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                dot *= tau[k];
                qr[(k, j)] -= dot;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= dot * vik;
                }
            }
        }
        Ok(Self { qr, tau })
    }

    /// The upper-triangular factor `R` (thin, `n × n`).
    pub fn r(&self) -> DMatrix {
        let n = self.qr.cols();
        DMatrix::from_fn(n, n, |r, c| if c >= r { self.qr[(r, c)] } else { 0.0 })
    }

    /// Applies `Qᵀ` to `b` in place and returns the result.
    pub fn q_transpose_mul(&self, b: &DMatrix) -> DMatrix {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        assert_eq!(b.rows(), m, "q_transpose_mul: row mismatch");
        let mut out = b.clone();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            for j in 0..out.cols() {
                let mut dot = out[(k, j)];
                for i in (k + 1)..m {
                    dot += self.qr[(i, k)] * out[(i, j)];
                }
                dot *= self.tau[k];
                out[(k, j)] -= dot;
                for i in (k + 1)..m {
                    let vik = self.qr[(i, k)];
                    out[(i, j)] -= dot * vik;
                }
            }
        }
        out
    }

    /// Solves the least-squares problem `min ‖A x - b‖₂`.
    ///
    /// # Panics
    ///
    /// Panics when a diagonal entry of `R` is numerically zero (rank
    /// deficiency); MSCKF callers gate against this with chi² checks.
    pub fn solve_least_squares(&self, b: &DMatrix) -> DMatrix {
        let n = self.qr.cols();
        let qtb = self.q_transpose_mul(b);
        let mut x = DMatrix::zeros(n, b.cols());
        for col in 0..b.cols() {
            for i in (0..n).rev() {
                let mut sum = qtb[(i, col)];
                for k in (i + 1)..n {
                    sum -= self.qr[(i, k)] * x[(k, col)];
                }
                let d = self.qr[(i, i)];
                assert!(d.abs() > 1e-300, "rank-deficient least-squares system");
                x[(i, col)] = sum / d;
            }
        }
        x
    }
}

/// LU factorization with partial pivoting, `P A = L U`.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DMatrix,
    perm: Vec<usize>,
    sign: Real,
}

impl Lu {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::BadShape`] for non-square input and
    /// [`DecompError::Singular`] when no usable pivot exists.
    pub fn new(a: &DMatrix) -> Result<Self, DecompError> {
        if a.rows() != a.cols() {
            return Err(DecompError::BadShape);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot.
            let mut p = k;
            for i in (k + 1)..n {
                if lu[(i, k)].abs() > lu[(p, k)].abs() {
                    p = i;
                }
            }
            if lu[(p, k)].abs() < 1e-300 {
                return Err(DecompError::Singular);
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            for i in (k + 1)..n {
                let f = lu[(i, k)] / lu[(k, k)];
                lu[(i, k)] = f;
                for c in (k + 1)..n {
                    let v = lu[(k, c)];
                    lu[(i, c)] -= f * v;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b` for each column of `b`.
    pub fn solve(&self, b: &DMatrix) -> DMatrix {
        let n = self.lu.rows();
        assert_eq!(b.rows(), n, "solve: rhs row mismatch");
        let mut x = DMatrix::zeros(n, b.cols());
        for col in 0..b.cols() {
            // Apply permutation and forward substitution.
            for i in 0..n {
                let mut sum = b[(self.perm[i], col)];
                for k in 0..i {
                    sum -= self.lu[(i, k)] * x[(k, col)];
                }
                x[(i, col)] = sum;
            }
            // Back substitution.
            for i in (0..n).rev() {
                let mut sum = x[(i, col)];
                for k in (i + 1)..n {
                    sum -= self.lu[(i, k)] * x[(k, col)];
                }
                x[(i, col)] = sum / self.lu[(i, i)];
            }
        }
        x
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> Real {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// The inverse of the factorized matrix.
    pub fn inverse(&self) -> DMatrix {
        self.solve(&DMatrix::identity(self.lu.rows()))
    }
}

/// One-sided Jacobi singular value decomposition of an `m × n` matrix
/// with `m ≥ n`: `A = U Σ Vᵀ` with orthonormal-column `U` (m × n),
/// non-negative singular values in non-increasing order, and orthogonal
/// `V` (n × n).
///
/// Table VI lists SVD among the compute patterns of VIO's feature
/// initialization and update tasks; this is the workspace's
/// implementation of that kernel.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × n`.
    pub u: DMatrix,
    /// Singular values, non-increasing.
    pub sigma: Vec<Real>,
    /// Right singular vectors, `n × n`.
    pub v: DMatrix,
}

impl Svd {
    /// Computes the SVD by one-sided Jacobi rotations.
    ///
    /// # Errors
    ///
    /// Returns [`DecompError::BadShape`] when `a` has more columns than
    /// rows.
    pub fn new(a: &DMatrix) -> Result<Self, DecompError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(DecompError::BadShape);
        }
        let mut u = a.clone();
        let mut v = DMatrix::identity(n);
        // Sweep until all column pairs are (numerically) orthogonal.
        let tol = 1e-14;
        for _sweep in 0..60 {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Gram entries for columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        app += up * up;
                        aqq += uq * uq;
                        apq += up * uq;
                    }
                    off = apq.abs().max(off);
                    if apq.abs() <= tol * (app * aqq).sqrt().max(1e-300) {
                        continue;
                    }
                    // Jacobi rotation zeroing the (p, q) Gram entry.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let up = u[(i, p)];
                        let uq = u[(i, q)];
                        u[(i, p)] = c * up - s * uq;
                        u[(i, q)] = s * up + c * uq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off < 1e-13 {
                break;
            }
        }
        // Column norms are the singular values; normalize U's columns.
        let mut order: Vec<usize> = (0..n).collect();
        let mut sigma = vec![0.0; n];
        for (j, s_j) in sigma.iter_mut().enumerate() {
            let mut norm = 0.0;
            for i in 0..m {
                norm += u[(i, j)] * u[(i, j)];
            }
            *s_j = norm.sqrt();
        }
        order.sort_by(|&a_i, &b_i| sigma[b_i].partial_cmp(&sigma[a_i]).expect("finite"));
        let mut u_sorted = DMatrix::zeros(m, n);
        let mut v_sorted = DMatrix::zeros(n, n);
        let mut sigma_sorted = vec![0.0; n];
        for (dst, &src) in order.iter().enumerate() {
            sigma_sorted[dst] = sigma[src];
            let inv = if sigma[src] > 1e-300 { 1.0 / sigma[src] } else { 0.0 };
            for i in 0..m {
                u_sorted[(i, dst)] = u[(i, src)] * inv;
            }
            for i in 0..n {
                v_sorted[(i, dst)] = v[(i, src)];
            }
        }
        Ok(Self { u: u_sorted, sigma: sigma_sorted, v: v_sorted })
    }

    /// Reconstructs `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> DMatrix {
        let n = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..n {
            for i in 0..us.rows() {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.mul_transpose(&self.v)
    }

    /// Numerical rank with the given tolerance relative to the largest
    /// singular value.
    pub fn rank(&self, rel_tol: Real) -> usize {
        let max = self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|&&s| s > rel_tol * max).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> DMatrix {
        // A = B Bᵀ + n I is symmetric positive definite.
        let b = DMatrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 5) as f64 - 2.0);
        let mut a = b.mul_transpose(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn cholesky_reconstruction() {
        let a = spd(6);
        let chol = Cholesky::new(&a).unwrap();
        let recon = chol.l().mul_transpose(chol.l());
        assert!((&recon - &a).frobenius_norm() < 1e-9);
    }

    #[test]
    fn cholesky_solve_roundtrip() {
        let a = spd(5);
        let x_true = DMatrix::column(&[1.0, -2.0, 0.5, 3.0, -1.5]);
        let b = &a * &x_true;
        let x = Cholesky::new(&a).unwrap().solve(&b);
        assert!((&x - &x_true).frobenius_norm() < 1e-9);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DMatrix::from_row_slice(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        assert_eq!(Cholesky::new(&a).unwrap_err(), DecompError::NotPositiveDefinite);
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert_eq!(Cholesky::new(&DMatrix::zeros(2, 3)).unwrap_err(), DecompError::BadShape);
    }

    #[test]
    fn qr_least_squares_overdetermined() {
        // Fit y = 2x + 1 through exact points.
        let a = DMatrix::from_fn(5, 2, |r, c| if c == 0 { r as f64 } else { 1.0 });
        let b = DMatrix::from_fn(5, 1, |r, _| 2.0 * r as f64 + 1.0);
        let x = Qr::new(&a).unwrap().solve_least_squares(&b);
        assert!((x[(0, 0)] - 2.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn qr_r_matches_product_norm() {
        let a = DMatrix::from_fn(6, 3, |r, c| ((r + 1) * (c + 2)) as f64 % 7.0 - 3.0);
        let qr = Qr::new(&a).unwrap();
        // ‖R‖_F == ‖A‖_F because Q is orthogonal.
        assert!((qr.r().frobenius_norm() - a.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn qr_qt_preserves_norm() {
        let a = DMatrix::from_fn(6, 3, |r, c| (r as f64 * 0.3 - c as f64 * 1.2).sin());
        let qr = Qr::new(&a).unwrap();
        let b = DMatrix::from_fn(6, 1, |r, _| r as f64 + 0.5);
        let qtb = qr.q_transpose_mul(&b);
        assert!((qtb.frobenius_norm() - b.frobenius_norm()).abs() < 1e-9);
    }

    #[test]
    fn lu_solve_and_determinant() {
        let a = DMatrix::from_row_slice(3, 3, &[2.0, 1.0, 1.0, 4.0, -6.0, 0.0, -2.0, 7.0, 2.0]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() - (-16.0)).abs() < 1e-9);
        let b = DMatrix::column(&[5.0, -2.0, 9.0]);
        let x = lu.solve(&b);
        assert!((&(&a * &x) - &b).frobenius_norm() < 1e-9);
    }

    #[test]
    fn lu_inverse_roundtrip() {
        let a = DMatrix::from_row_slice(3, 3, &[1.0, 0.5, 0.0, 0.2, 2.0, 0.3, 0.0, 0.1, 1.5]);
        let inv = Lu::new(&a).unwrap().inverse();
        let id = &a * &inv;
        assert!((&id - &DMatrix::identity(3)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn svd_reconstructs_matrix() {
        let a = DMatrix::from_fn(6, 4, |r, c| ((r * 3 + c * 7) % 11) as f64 - 5.0);
        let svd = Svd::new(&a).unwrap();
        assert!((&svd.reconstruct() - &a).frobenius_norm() < 1e-9);
        // Singular values non-increasing and non-negative.
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] && w[1] >= 0.0);
        }
    }

    #[test]
    fn svd_factors_are_orthonormal() {
        let a = DMatrix::from_fn(5, 3, |r, c| (r as f64 * 0.7 - c as f64 * 1.3).sin());
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u.transpose_mul(&svd.u);
        let vtv = svd.v.transpose_mul(&svd.v);
        assert!((&utu - &DMatrix::identity(3)).frobenius_norm() < 1e-9, "UᵀU not I");
        assert!((&vtv - &DMatrix::identity(3)).frobenius_norm() < 1e-9, "VᵀV not I");
    }

    #[test]
    fn svd_detects_rank_deficiency() {
        // Rank-1 matrix: outer product.
        let a = DMatrix::from_fn(4, 3, |r, c| (r as f64 + 1.0) * (c as f64 + 2.0));
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.sigma[1] < 1e-9 * svd.sigma[0]);
    }

    #[test]
    fn svd_of_diagonal_matrix() {
        let a = DMatrix::from_fn(3, 3, |r, c| if r == c { (3 - r) as f64 } else { 0.0 });
        let svd = Svd::new(&a).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-12);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-12);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_rejects_wide_matrix() {
        assert!(matches!(Svd::new(&DMatrix::zeros(2, 5)), Err(DecompError::BadShape)));
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DMatrix::from_row_slice(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(Lu::new(&a).unwrap_err(), DecompError::Singular);
    }
}
