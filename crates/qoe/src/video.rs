//! Temporal video-quality metrics.
//!
//! §II-C: *"both SSIM and FLIP are image metrics, whereas the final
//! output of the visual pipeline is a video, requiring consideration of
//! aspects such as temporal coherence and smoothness (jitter) as well."*
//! This module provides the testbed's first temporal metrics: a
//! frame-difference jitter score over displayed images, and a pose-judder
//! score over the displayed pose sequence (the quantity users perceive
//! when frames are dropped or reprojection works from stale poses).

use illixr_image::RgbImage;
use illixr_math::Pose;

/// Mean absolute difference between consecutive frames.
///
/// Returns one value per frame pair (empty for fewer than two frames).
pub fn frame_difference_series(frames: &[RgbImage]) -> Vec<f64> {
    frames.windows(2).map(|w| w[0].mean_abs_diff(&w[1]) as f64).collect()
}

/// Temporal jitter: coefficient of variation of the frame-difference
/// series. Smooth video changes by a consistent amount per frame
/// (jitter → 0); dropped/repeated frames alternate between zero and
/// double-sized differences (jitter grows).
///
/// Returns `None` for fewer than three frames.
pub fn temporal_jitter(frames: &[RgbImage]) -> Option<f64> {
    let diffs = frame_difference_series(frames);
    if diffs.len() < 2 {
        return None;
    }
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    if mean <= 1e-12 {
        return Some(0.0); // static video is perfectly smooth
    }
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / diffs.len() as f64;
    Some(var.sqrt() / mean)
}

/// Pose judder: root-mean-square second difference of displayed
/// positions, meters — a discrete acceleration measure. A smoothly
/// tracked display has near-zero judder; every dropped pose update
/// contributes a spike.
///
/// Returns `None` for fewer than three poses.
pub fn pose_judder(displayed: &[Pose]) -> Option<f64> {
    if displayed.len() < 3 {
        return None;
    }
    let mut acc = 0.0;
    let mut n = 0;
    for w in displayed.windows(3) {
        let second_diff = (w[2].position - w[1].position) - (w[1].position - w[0].position);
        acc += second_diff.norm_squared();
        n += 1;
    }
    Some((acc / n as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_math::{Quat, Vec3};

    fn sliding_frame(offset: f32) -> RgbImage {
        RgbImage::from_fn(32, 32, |x, y| {
            let v = ((x as f32 + offset) * 0.2).sin() * 0.5 + 0.5;
            [v, v * 0.8, y as f32 / 32.0]
        })
    }

    #[test]
    fn smooth_motion_has_low_jitter() {
        let frames: Vec<RgbImage> = (0..10).map(|k| sliding_frame(k as f32)).collect();
        let j = temporal_jitter(&frames).unwrap();
        assert!(j < 0.2, "smooth video jitter {j}");
    }

    #[test]
    fn dropped_frames_raise_jitter() {
        // Every other frame repeats (a 30 fps app on a 60 Hz display
        // without reprojection).
        let frames: Vec<RgbImage> = (0..10).map(|k| sliding_frame((k / 2 * 2) as f32)).collect();
        let smooth: Vec<RgbImage> = (0..10).map(|k| sliding_frame(k as f32)).collect();
        let j_dropped = temporal_jitter(&frames).unwrap();
        let j_smooth = temporal_jitter(&smooth).unwrap();
        assert!(j_dropped > 3.0 * j_smooth, "dropped {j_dropped} vs smooth {j_smooth}");
    }

    #[test]
    fn static_video_is_perfectly_smooth() {
        let frames: Vec<RgbImage> = (0..5).map(|_| sliding_frame(0.0)).collect();
        assert_eq!(temporal_jitter(&frames), Some(0.0));
    }

    #[test]
    fn constant_velocity_has_zero_judder() {
        let poses: Vec<Pose> = (0..10)
            .map(|k| Pose::new(Vec3::new(k as f64 * 0.01, 0.0, 0.0), Quat::IDENTITY))
            .collect();
        assert!(pose_judder(&poses).unwrap() < 1e-12);
    }

    #[test]
    fn held_poses_produce_judder() {
        // Pose updates arrive every other display frame.
        let held: Vec<Pose> = (0..10)
            .map(|k| Pose::new(Vec3::new((k / 2 * 2) as f64 * 0.01, 0.0, 0.0), Quat::IDENTITY))
            .collect();
        let j = pose_judder(&held).unwrap();
        assert!(j > 0.005, "judder {j}");
    }

    #[test]
    fn short_sequences_return_none() {
        assert!(temporal_jitter(&[sliding_frame(0.0)]).is_none());
        assert!(pose_judder(&[Pose::IDENTITY, Pose::IDENTITY]).is_none());
    }
}
