//! Motion-to-photon latency.
//!
//! §III-E: *"latency = t_imu_age + t_reprojection + t_swap"* — the age
//! of the IMU sample behind the pose used for the final warp, plus the
//! reprojection time itself, plus the wait until the frame buffer is
//! accepted at the next vsync. `t_display` is excluded, as in the paper.
//! If reprojection misses vsync, the extra wait shows up in `t_swap`.

use std::time::Duration;

use illixr_core::Time;

/// One per-frame MTP measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtpSample {
    /// When the reprojected frame was accepted for display (the vsync it
    /// made).
    pub display_vsync: Time,
    /// Age of the pose when the warp started.
    pub imu_age: Duration,
    /// Reprojection execution time.
    pub reprojection: Duration,
    /// Wait from warp completion to the accepting vsync.
    pub swap: Duration,
}

impl MtpSample {
    /// Total motion-to-photon latency.
    pub fn total(&self) -> Duration {
        self.imu_age + self.reprojection + self.swap
    }
}

/// Computes MTP samples from warp timings against a fixed vsync cadence.
#[derive(Debug, Clone, Copy)]
pub struct MtpCalculator {
    vsync_period: Duration,
}

impl MtpCalculator {
    /// Creates a calculator for a display refreshing every
    /// `vsync_period` (Table III: 120 Hz → 8.33 ms).
    ///
    /// # Panics
    ///
    /// Panics when the period is zero.
    pub fn new(vsync_period: Duration) -> Self {
        assert!(!vsync_period.is_zero(), "vsync period must be positive");
        Self { vsync_period }
    }

    /// The next vsync boundary at or after `t`.
    pub fn next_vsync(&self, t: Time) -> Time {
        let period = self.vsync_period.as_nanos() as u64;
        let n = t.as_nanos().div_ceil(period);
        Time::from_nanos(n * period)
    }

    /// Builds an MTP sample for one reprojection invocation.
    ///
    /// * `pose_timestamp` — sensor time of the pose used for the warp;
    /// * `warp_start` / `warp_end` — reprojection execution interval.
    pub fn sample(&self, pose_timestamp: Time, warp_start: Time, warp_end: Time) -> MtpSample {
        let vsync = self.next_vsync(warp_end);
        MtpSample {
            display_vsync: vsync,
            imu_age: warp_start - pose_timestamp,
            reprojection: warp_end - warp_start,
            swap: vsync - warp_end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calc() -> MtpCalculator {
        MtpCalculator::new(Duration::from_nanos(8_333_333)) // 120 Hz
    }

    #[test]
    fn sample_decomposes_latency() {
        let c = calc();
        let s = c.sample(Time::from_millis(10), Time::from_millis(12), Time::from_micros(12_800));
        assert_eq!(s.imu_age, Duration::from_millis(2));
        assert_eq!(s.reprojection, Duration::from_micros(800));
        // Next vsync after 12.8 ms is 16.667 ms.
        assert_eq!(s.display_vsync, Time::from_nanos(2 * 8_333_333));
        assert_eq!(s.total(), s.imu_age + s.reprojection + s.swap);
    }

    #[test]
    fn missing_vsync_inflates_swap() {
        let c = calc();
        // Warp finishing right after a vsync waits almost a full period.
        let just_after = Time::from_nanos(8_333_334);
        let s = c.sample(Time::ZERO, Time::from_millis(8), just_after);
        assert!(s.swap > Duration::from_millis(8), "swap {:?}", s.swap);
    }

    #[test]
    fn finishing_on_vsync_has_zero_swap() {
        let c = calc();
        let on_vsync = Time::from_nanos(8_333_333);
        let s = c.sample(Time::ZERO, Time::from_millis(8), on_vsync);
        assert_eq!(s.swap, Duration::ZERO);
    }

    #[test]
    fn next_vsync_boundaries() {
        let c = calc();
        assert_eq!(c.next_vsync(Time::ZERO), Time::ZERO);
        assert_eq!(c.next_vsync(Time::from_nanos(1)), Time::from_nanos(8_333_333));
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let _ = MtpCalculator::new(Duration::ZERO);
    }
}
