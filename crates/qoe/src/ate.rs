//! Trajectory accuracy metrics for the VIO ablation (§V-E reports
//! average trajectory error in centimeters).

use illixr_math::Pose;

/// Mean absolute trajectory error (translation) over paired
/// estimated/ground-truth poses, meters.
///
/// Returns `None` for empty input.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn absolute_trajectory_error(estimated: &[Pose], ground_truth: &[Pose]) -> Option<f64> {
    assert_eq!(estimated.len(), ground_truth.len(), "trajectory length mismatch");
    if estimated.is_empty() {
        return None;
    }
    let sum: f64 = estimated.iter().zip(ground_truth).map(|(e, g)| e.translation_distance(g)).sum();
    Some(sum / estimated.len() as f64)
}

/// Mean relative pose error: drift of the estimated relative motion per
/// consecutive pair, meters.
///
/// Returns `None` with fewer than two poses.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn relative_pose_error(estimated: &[Pose], ground_truth: &[Pose]) -> Option<f64> {
    assert_eq!(estimated.len(), ground_truth.len(), "trajectory length mismatch");
    if estimated.len() < 2 {
        return None;
    }
    let mut sum = 0.0;
    let mut count = 0;
    for i in 1..estimated.len() {
        let rel_est = estimated[i - 1].relative_to(&estimated[i]);
        let rel_gt = ground_truth[i - 1].relative_to(&ground_truth[i]);
        sum += rel_est.translation_distance(&rel_gt);
        count += 1;
    }
    Some(sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_math::{Quat, Vec3};

    fn line(n: usize, offset: f64) -> Vec<Pose> {
        (0..n)
            .map(|i| Pose::new(Vec3::new(i as f64 * 0.1 + offset, 0.0, 0.0), Quat::IDENTITY))
            .collect()
    }

    #[test]
    fn perfect_estimate_has_zero_error() {
        let gt = line(10, 0.0);
        assert_eq!(absolute_trajectory_error(&gt, &gt), Some(0.0));
        assert_eq!(relative_pose_error(&gt, &gt), Some(0.0));
    }

    #[test]
    fn constant_offset_shows_in_ate_not_rpe() {
        let gt = line(10, 0.0);
        let est = line(10, 0.05);
        assert!((absolute_trajectory_error(&est, &gt).unwrap() - 0.05).abs() < 1e-12);
        assert!(relative_pose_error(&est, &gt).unwrap() < 1e-12);
    }

    #[test]
    fn growing_drift_shows_in_both() {
        let gt = line(10, 0.0);
        let est: Vec<Pose> = gt
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Pose::new(p.position + Vec3::new(0.0, 0.01 * i as f64, 0.0), p.orientation)
            })
            .collect();
        assert!(absolute_trajectory_error(&est, &gt).unwrap() > 0.01);
        assert!(relative_pose_error(&est, &gt).unwrap() > 0.005);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(absolute_trajectory_error(&[], &[]), None);
        assert_eq!(relative_pose_error(&[Pose::IDENTITY], &[Pose::IDENTITY]), None);
    }
}
