//! Audio quality metrics.
//!
//! The paper measures no audio quality "beyond bitrate" and plans to add
//! AMBIQUAL (§II-C). This module provides the testbed's first step in
//! that direction: a log-spectral similarity score between a reference
//! and a degraded binaural stream, sensitive to the distortions an XR
//! audio pipeline introduces (dropped blocks, wrong rotation, filter
//! misconfiguration), plus interaural-cue error — the quantity spatial
//! hearing actually depends on.

use illixr_dsp::fft::{fft_in_place, next_power_of_two};
use illixr_dsp::Complex;

/// Result of comparing two stereo streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AudioQuality {
    /// Log-spectral similarity in `[0, 1]` (1 = spectra identical),
    /// averaged over both ears.
    pub spectral_similarity: f64,
    /// Absolute error of the interaural level difference, dB.
    pub ild_error_db: f64,
}

/// Compares a degraded stereo stream to a reference.
///
/// Both streams must have equal, nonzero length per channel.
///
/// # Panics
///
/// Panics on length mismatches or empty input.
pub fn compare_stereo(
    ref_left: &[f64],
    ref_right: &[f64],
    deg_left: &[f64],
    deg_right: &[f64],
) -> AudioQuality {
    assert!(!ref_left.is_empty(), "empty reference");
    assert_eq!(ref_left.len(), ref_right.len(), "reference channel mismatch");
    assert_eq!(deg_left.len(), deg_right.len(), "degraded channel mismatch");
    assert_eq!(ref_left.len(), deg_left.len(), "reference/degraded length mismatch");
    let sim_l = spectral_similarity(ref_left, deg_left);
    let sim_r = spectral_similarity(ref_right, deg_right);
    let ild_ref = ild_db(ref_left, ref_right);
    let ild_deg = ild_db(deg_left, deg_right);
    AudioQuality {
        spectral_similarity: 0.5 * (sim_l + sim_r),
        ild_error_db: (ild_ref - ild_deg).abs(),
    }
}

/// Interaural level difference in dB (left relative to right).
pub fn ild_db(left: &[f64], right: &[f64]) -> f64 {
    let rms = |x: &[f64]| {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len().max(1) as f64).sqrt().max(1e-12)
    };
    20.0 * (rms(left) / rms(right)).log10()
}

/// Log-spectral similarity of two signals in `[0, 1]`.
fn spectral_similarity(a: &[f64], b: &[f64]) -> f64 {
    let n = next_power_of_two(a.len());
    let spectrum = |x: &[f64]| -> Vec<f64> {
        let mut buf = vec![Complex::ZERO; n];
        for (dst, &src) in buf.iter_mut().zip(x) {
            dst.re = src;
        }
        fft_in_place(&mut buf);
        // Log magnitude over the positive frequencies, floored at -80 dB.
        buf[..n / 2].iter().map(|c| (c.abs().max(1e-4)).ln()).collect()
    };
    let sa = spectrum(a);
    let sb = spectrum(b);
    // RMS log-spectral distance → similarity via exp(-d).
    let d =
        (sa.iter().zip(&sb).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / sa.len() as f64).sqrt();
    (-d / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(len: usize, freq: f64, rate: f64, amp: f64) -> Vec<f64> {
        (0..len).map(|i| (std::f64::consts::TAU * freq * i as f64 / rate).sin() * amp).collect()
    }

    #[test]
    fn identical_streams_score_perfectly() {
        let l = tone(1024, 440.0, 48_000.0, 0.5);
        let r = tone(1024, 440.0, 48_000.0, 0.3);
        let q = compare_stereo(&l, &r, &l, &r);
        assert!(q.spectral_similarity > 0.999, "{q:?}");
        assert!(q.ild_error_db < 1e-9);
    }

    #[test]
    fn wrong_frequency_lowers_similarity() {
        let ref_sig = tone(1024, 440.0, 48_000.0, 0.5);
        let deg = tone(1024, 1200.0, 48_000.0, 0.5);
        let q = compare_stereo(&ref_sig, &ref_sig, &deg, &deg);
        assert!(q.spectral_similarity < 0.8, "{q:?}");
    }

    #[test]
    fn dropped_blocks_lower_similarity() {
        let ref_sig = tone(2048, 300.0, 48_000.0, 0.5);
        let mut deg = ref_sig.clone();
        for v in &mut deg[512..1024] {
            *v = 0.0; // a dropped block
        }
        let q = compare_stereo(&ref_sig, &ref_sig, &deg, &deg);
        assert!(q.spectral_similarity < 0.95, "{q:?}");
    }

    #[test]
    fn spatial_error_shows_in_ild() {
        // Reference: source on the left (left louder). Degraded: the
        // rotation stage failed and the image is centered.
        let l = tone(1024, 500.0, 48_000.0, 0.8);
        let r = tone(1024, 500.0, 48_000.0, 0.3);
        let c = tone(1024, 500.0, 48_000.0, 0.55);
        let q = compare_stereo(&l, &r, &c, &c);
        assert!(q.ild_error_db > 5.0, "{q:?}");
    }

    #[test]
    fn ild_sign_convention() {
        let loud = tone(256, 400.0, 48_000.0, 1.0);
        let quiet = tone(256, 400.0, 48_000.0, 0.1);
        assert!(ild_db(&loud, &quiet) > 0.0);
        assert!(ild_db(&quiet, &loud) < 0.0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let a = vec![0.0; 10];
        let b = vec![0.0; 12];
        let _ = compare_stereo(&a, &a, &b, &b);
    }
}
