//! Aggregation helpers for the paper's mean ± std tables.

use std::fmt;

/// A mean ± standard-deviation pair, printed like the paper's tables
/// ("3.1±1.1").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Computes mean ± std of a slice (std = 0 for fewer than two
    /// samples). Returns `None` for empty input.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let std = if samples.len() > 1 {
            (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        Some(Self { mean, std })
    }

    /// Scales both statistics (e.g. seconds → milliseconds).
    pub fn scaled(self, factor: f64) -> Self {
        Self { mean: self.mean * factor, std: self.std * factor }
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(1);
        write!(f, "{:.prec$}±{:.prec$}", self.mean, self.std)
    }
}

/// Formats a table row: a label column followed by value columns,
/// fixed-width, matching the harness's stdout tables.
pub fn format_row(label: &str, values: &[String], label_width: usize, col_width: usize) -> String {
    let mut row = format!("{label:<label_width$}");
    for v in values {
        row.push_str(&format!(" {v:>col_width$}"));
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_matches_known_values() {
        let s = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138089935).abs() < 1e-6); // sample std
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = MeanStd::of(&[3.5]).unwrap();
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn empty_is_none() {
        assert!(MeanStd::of(&[]).is_none());
    }

    #[test]
    fn display_matches_paper_style() {
        #[allow(clippy::approx_constant)] // a latency sample, not π
        let s = MeanStd { mean: 3.14, std: 1.06 };
        assert_eq!(format!("{s}"), "3.1±1.1");
        assert_eq!(format!("{s:.2}"), "3.14±1.06");
    }

    #[test]
    fn scaled_converts_units() {
        let s = MeanStd { mean: 0.0031, std: 0.0011 }.scaled(1e3);
        assert!((s.mean - 3.1).abs() < 1e-12);
    }

    #[test]
    fn format_row_aligns() {
        let row = format_row("Desktop", &["3.1±1.1".into(), "3.0±0.9".into()], 10, 9);
        assert!(row.starts_with("Desktop   "));
        assert!(row.contains("  3.1±1.1"));
    }
}
