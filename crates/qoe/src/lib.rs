//! Quality-of-experience metrics (paper §II-C, §III-E).
//!
//! * [`mtp`] — motion-to-photon latency:
//!   `latency = t_imu_age + t_reprojection + t_swap` (the exact formula
//!   of §III-E, excluding `t_display` like the paper);
//! * [`ate`] — absolute trajectory error for the VIO accuracy/performance
//!   ablation (§V-E);
//! * [`report`] — aggregation helpers that turn telemetry into the
//!   mean ± std rows of Tables IV and V;
//! * [`audio`] — a first audio-quality metric (log-spectral similarity +
//!   interaural-cue error), the §II-C "plan to add AMBIQUAL" direction;
//! * [`video`] — temporal coherence/jitter metrics, the §II-C
//!   "VMAF/Video ATLAS" direction for video rather than image quality.
//!
//! SSIM and FLIP — the offline image-quality metrics of Table V — live in
//! `illixr-image`, next to the pixel types they operate on.

pub mod ate;
pub mod audio;
pub mod mtp;
pub mod report;
pub mod video;

pub use ate::{absolute_trajectory_error, relative_pose_error};
pub use audio::{compare_stereo, AudioQuality};
pub use mtp::{MtpCalculator, MtpSample};
pub use report::MeanStd;
pub use video::{pose_judder, temporal_jitter};
