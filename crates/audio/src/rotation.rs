//! Soundfield manipulation from the listener pose: yaw rotation and
//! frontal zoom (Table VII "rotation" and "zoom" tasks).

use crate::ambisonics::Soundfield;

/// Rotates the soundfield by `yaw` radians about the vertical axis
/// (counter-clockwise listener rotation ⇒ field rotates clockwise).
///
/// Rotation about Z is exact and closed-form in ACN ordering: within
/// each order, the channel pairs with azimuthal index ±m mix with
/// `cos(m·yaw)` / `sin(m·yaw)`; the m = 0 channels are invariant.
pub fn rotate_yaw(field: &Soundfield, yaw: f64) -> Soundfield {
    let mut out = field.clone();
    let (s1, c1) = yaw.sin_cos();
    let (s2, c2) = (2.0 * yaw).sin_cos();
    let n = field.len();
    for i in 0..n {
        // Order 1: channels 1 (Y, m=-1) and 3 (X, m=+1).
        let y = field.data[1][i];
        let x = field.data[3][i];
        out.data[1][i] = c1 * y - s1 * x;
        out.data[3][i] = s1 * y + c1 * x;
        // Order 2, |m| = 1: channels 5 (T, m=-1) and 7 (S, m=+1).
        let t = field.data[5][i];
        let s = field.data[7][i];
        out.data[5][i] = c1 * t - s1 * s;
        out.data[7][i] = s1 * t + c1 * s;
        // Order 2, |m| = 2: channels 4 (V, m=-2) and 8 (U, m=+2).
        let v = field.data[4][i];
        let u = field.data[8][i];
        out.data[4][i] = c2 * v - s2 * u;
        out.data[8][i] = s2 * v + c2 * u;
        // Channels 0 (W), 2 (Z), 6 (R) are yaw-invariant.
    }
    out
}

/// Frontal zoom: emphasizes sound from the look direction (+X) and
/// de-emphasizes the rear, following the first-order "dominance"
/// transform. `amount` ∈ [-1, 1]; 0 is identity.
///
/// # Panics
///
/// Panics when `amount` is outside [-1, 1].
pub fn zoom_forward(field: &Soundfield, amount: f64) -> Soundfield {
    assert!((-1.0..=1.0).contains(&amount), "zoom amount must be in [-1, 1]");
    let mut out = field.clone();
    let a = amount;
    for i in 0..field.len() {
        let w = field.data[0][i];
        let x = field.data[3][i];
        // First-order dominance along +X (Lund/Gerzon form, SN3D).
        out.data[0][i] = w + a * x * 0.5;
        out.data[3][i] = x + a * w * 0.5;
        // Higher-order channels scale toward the front lobe.
        let gain = 1.0 + 0.25 * a;
        out.data[8][i] = field.data[8][i] * gain;
        out.data[4][i] = field.data[4][i] / gain;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ambisonics::{encode_block, sh_coefficients};

    #[test]
    fn rotating_by_zero_is_identity() {
        let field = encode_block(&[1.0, 0.5, -0.25], 0.7, 0.2);
        let out = rotate_yaw(&field, 0.0);
        assert_eq!(out, field);
    }

    #[test]
    fn rotation_moves_source_azimuth() {
        // A source at azimuth 0 rotated by -0.5 should equal a source
        // encoded at azimuth 0.5 (field rotation is opposite to listener
        // rotation by convention: rotate_yaw(θ) re-expresses the field
        // in a frame yawed by θ).
        let field = encode_block(&[1.0], 0.5, 0.0);
        let rotated = rotate_yaw(&field, 0.5);
        let direct = encode_block(&[1.0], 0.0, 0.0);
        for ch in 0..9 {
            assert!(
                (rotated.data[ch][0] - direct.data[ch][0]).abs() < 1e-9,
                "channel {ch}: {} vs {}",
                rotated.data[ch][0],
                direct.data[ch][0]
            );
        }
    }

    #[test]
    fn rotation_preserves_energy() {
        let field = encode_block(&[1.0, -1.0, 0.3], 1.1, 0.4);
        let rotated = rotate_yaw(&field, 2.0);
        assert!((rotated.energy() - field.energy()).abs() < 1e-9);
    }

    #[test]
    fn rotation_composes() {
        let field = encode_block(&[0.8], 0.3, 0.1);
        let once = rotate_yaw(&rotate_yaw(&field, 0.4), 0.3);
        let combined = rotate_yaw(&field, 0.7);
        for ch in 0..9 {
            assert!((once.data[ch][0] - combined.data[ch][0]).abs() < 1e-9);
        }
    }

    #[test]
    fn zoom_zero_is_identity() {
        let field = encode_block(&[1.0, 2.0], -0.8, 0.0);
        assert_eq!(zoom_forward(&field, 0.0), field);
    }

    #[test]
    fn zoom_boosts_frontal_sources() {
        let front = encode_block(&[1.0], 0.0, 0.0);
        let back = encode_block(&[1.0], std::f64::consts::PI, 0.0);
        let zf = zoom_forward(&front, 0.8);
        let zb = zoom_forward(&back, 0.8);
        // W channel (perceived loudness proxy) grows for front, shrinks
        // for back.
        assert!(zf.data[0][0] > 1.0);
        assert!(zb.data[0][0] < 1.0);
    }

    #[test]
    #[should_panic]
    fn zoom_out_of_range_panics() {
        let field = encode_block(&[1.0], 0.0, 0.0);
        let _ = zoom_forward(&field, 1.5);
    }

    #[test]
    fn sh_rotation_identity_on_invariant_channels() {
        let c = sh_coefficients(0.9, 0.5);
        let field = encode_block(&[1.0], 0.9, 0.5);
        let rotated = rotate_yaw(&field, 1.3);
        assert!((rotated.data[0][0] - c[0]).abs() < 1e-12);
        assert!((rotated.data[2][0] - c[2]).abs() < 1e-12);
        assert!((rotated.data[6][0] - c[6]).abs() < 1e-12);
    }
}
