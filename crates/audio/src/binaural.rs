//! Binauralization and the psychoacoustic filter (Table VII
//! "audio playback" tasks).
//!
//! The soundfield decodes to a ring of virtual speakers; each speaker
//! feed convolves with that direction's HRIR pair (streaming FFT
//! convolution — the paper's "FFT; frequency-domain convolution; IFFT;
//! butterfly pattern"), and the ear signals sum to stereo.

use illixr_dsp::convolution::OverlapSave;
use illixr_dsp::fft::{fft_in_place, ifft_in_place, next_power_of_two};
use illixr_dsp::Complex;

use crate::ambisonics::{sh_coefficients, Soundfield, CHANNELS};
use crate::hrtf::HrirBank;

/// A stereo audio block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StereoBlock {
    /// Left channel.
    pub left: Vec<f64>,
    /// Right channel.
    pub right: Vec<f64>,
}

/// Applies the psychoacoustic optimization filter: a frequency-domain
/// high-shelf that compensates the near-field bass boost of headphone
/// reproduction. Processes every soundfield channel (FFT → shape →
/// IFFT).
pub fn psychoacoustic_filter(field: &Soundfield, sample_rate: f64) -> Soundfield {
    let n = field.len();
    let fft_len = next_power_of_two(n.max(2));
    let mut out = field.clone();
    for ch in 0..CHANNELS {
        let mut buf = vec![Complex::ZERO; fft_len];
        for (dst, &src) in buf.iter_mut().zip(&field.data[ch]) {
            dst.re = src;
        }
        fft_in_place(&mut buf);
        for (k, v) in buf.iter_mut().enumerate() {
            // Bin frequency (symmetric for the upper half).
            let bin = if k <= fft_len / 2 { k } else { fft_len - k };
            let freq = bin as f64 * sample_rate / fft_len as f64;
            // Gentle shelf: -3 dB below 120 Hz, unity above 500 Hz.
            let gain = if freq < 120.0 {
                0.7
            } else if freq < 500.0 {
                0.7 + 0.3 * (freq - 120.0) / 380.0
            } else {
                1.0
            };
            *v = v.scale(gain);
        }
        ifft_in_place(&mut buf);
        for (dst, src) in out.data[ch].iter_mut().zip(&buf) {
            *dst = src.re;
        }
    }
    out
}

/// A streaming binaural decoder: soundfield blocks in, stereo out.
#[derive(Debug)]
pub struct BinauralDecoder {
    /// Per-speaker decode gains: `gains[speaker][channel]`.
    gains: Vec<[f64; CHANNELS]>,
    /// Per-speaker convolvers (left, right).
    convolvers: Vec<(OverlapSave, OverlapSave)>,
    block_len: usize,
}

impl BinauralDecoder {
    /// Creates a decoder over a horizontal ring of `bank.len()` virtual
    /// speakers operating on blocks of `block_len` samples.
    ///
    /// # Panics
    ///
    /// Panics when the bank is empty or `block_len` is zero.
    pub fn new(bank: &HrirBank, block_len: usize) -> Self {
        assert!(!bank.is_empty(), "HRIR bank must not be empty");
        assert!(block_len > 0, "block length must be positive");
        let n = bank.len();
        let mut gains = Vec::with_capacity(n);
        let mut convolvers = Vec::with_capacity(n);
        for i in 0..n {
            // "Projection" (pseudo-inverse-free) decode: speaker gain =
            // SH coefficients at the speaker direction / speaker count.
            let c = sh_coefficients(bank.azimuth(i), 0.0);
            let mut g = [0.0; CHANNELS];
            for (dst, &src) in g.iter_mut().zip(&c) {
                *dst = src / n as f64;
            }
            gains.push(g);
            let p = bank.pair(i);
            convolvers.push((
                OverlapSave::new(&p.left, block_len),
                OverlapSave::new(&p.right, block_len),
            ));
        }
        Self { gains, convolvers, block_len }
    }

    /// Number of virtual speakers.
    pub fn speakers(&self) -> usize {
        self.gains.len()
    }

    /// Processes one soundfield block into a stereo block.
    ///
    /// (Index-based channel loop is intentional: `gains` is a fixed-size
    /// array addressed by ACN channel number.)
    ///
    /// # Panics
    ///
    /// Panics when the block length differs from the constructor's.
    #[allow(clippy::needless_range_loop)]
    pub fn process(&mut self, field: &Soundfield) -> StereoBlock {
        assert_eq!(field.len(), self.block_len, "block length mismatch");
        let mut left = vec![0.0; self.block_len];
        let mut right = vec![0.0; self.block_len];
        let mut feed = vec![0.0; self.block_len];
        for (g, (conv_l, conv_r)) in self.gains.iter().zip(self.convolvers.iter_mut()) {
            // Decode: speaker feed = Σ_ch gain[ch] · field[ch].
            for (i, f) in feed.iter_mut().enumerate() {
                let mut acc = 0.0;
                for ch in 0..CHANNELS {
                    acc += g[ch] * field.data[ch][i];
                }
                *acc_assign(f) = acc;
            }
            // HRTF convolution (streaming, state carried across blocks).
            let l = conv_l.process(&feed);
            let r = conv_r.process(&feed);
            for i in 0..self.block_len {
                left[i] += l[i];
                right[i] += r[i];
            }
        }
        StereoBlock { left, right }
    }
}

#[inline]
fn acc_assign(f: &mut f64) -> &mut f64 {
    f
}

/// One-shot convenience: psychoacoustic filter + binaural decode of a
/// single block.
pub fn binauralize(field: &Soundfield, bank: &HrirBank, sample_rate: f64) -> StereoBlock {
    let filtered = psychoacoustic_filter(field, sample_rate);
    let mut decoder = BinauralDecoder::new(bank, field.len());
    decoder.process(&filtered)
}

/// A standard 8-speaker horizontal ring bank at `sample_rate`.
pub fn default_ring_bank(sample_rate: f64) -> HrirBank {
    let azimuths: Vec<f64> = (0..8).map(|i| i as f64 * std::f64::consts::TAU / 8.0).collect();
    HrirBank::synthesize(sample_rate, &azimuths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ambisonics::encode_block;

    fn tone(len: usize, freq: f64, rate: f64) -> Vec<f64> {
        (0..len).map(|i| (std::f64::consts::TAU * freq * i as f64 / rate).sin() * 0.5).collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn left_source_is_louder_in_left_ear() {
        let rate = 48_000.0;
        let bank = default_ring_bank(rate);
        let mut decoder = BinauralDecoder::new(&bank, 1024);
        // Source at +90° (left).
        let field = encode_block(&tone(1024, 440.0, rate), std::f64::consts::FRAC_PI_2, 0.0);
        // Run several blocks to pass the convolution warm-up.
        let mut out = StereoBlock::default();
        for _ in 0..4 {
            out = decoder.process(&field);
        }
        assert!(
            rms(&out.left) > 1.3 * rms(&out.right),
            "L {} R {}",
            rms(&out.left),
            rms(&out.right)
        );
    }

    #[test]
    fn frontal_source_is_balanced() {
        let rate = 48_000.0;
        let bank = default_ring_bank(rate);
        let mut decoder = BinauralDecoder::new(&bank, 1024);
        let field = encode_block(&tone(1024, 330.0, rate), 0.0, 0.0);
        let mut out = StereoBlock::default();
        for _ in 0..4 {
            out = decoder.process(&field);
        }
        let ratio = rms(&out.left) / rms(&out.right).max(1e-12);
        assert!((0.85..1.18).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn psychoacoustic_filter_attenuates_bass() {
        let rate = 48_000.0;
        let low = encode_block(&tone(2048, 60.0, rate), 0.0, 0.0);
        let high = encode_block(&tone(2048, 2000.0, rate), 0.0, 0.0);
        let low_f = psychoacoustic_filter(&low, rate);
        let high_f = psychoacoustic_filter(&high, rate);
        let low_ratio = rms(&low_f.data[0]) / rms(&low.data[0]);
        let high_ratio = rms(&high_f.data[0]) / rms(&high.data[0]);
        assert!(low_ratio < 0.8, "bass not attenuated: {low_ratio}");
        assert!(high_ratio > 0.95, "treble should pass: {high_ratio}");
    }

    #[test]
    fn streaming_blocks_are_continuous() {
        // No discontinuity between consecutive processed blocks: feed a
        // continuous tone split across blocks, check the seam.
        let rate = 48_000.0;
        let bank = default_ring_bank(rate);
        let mut decoder = BinauralDecoder::new(&bank, 256);
        let signal = tone(1024, 500.0, rate);
        let mut all_left = Vec::new();
        for chunk in signal.chunks(256) {
            let field = encode_block(chunk, 0.3, 0.0);
            all_left.extend(decoder.process(&field).left);
        }
        // Max sample-to-sample jump in the steady state should be small
        // relative to the amplitude (a tone at 500 Hz changes slowly).
        let max_jump = all_left[300..].windows(2).map(|w| (w[1] - w[0]).abs()).fold(0.0, f64::max);
        let amp = all_left[300..].iter().cloned().fold(0.0, |a: f64, b| a.max(b.abs()));
        assert!(max_jump < 0.25 * amp.max(1e-9), "seam discontinuity {max_jump} vs amp {amp}");
    }

    #[test]
    fn binauralize_one_shot_runs() {
        let rate = 48_000.0;
        let bank = default_ring_bank(rate);
        let field = encode_block(&tone(512, 250.0, rate), -0.5, 0.0);
        let out = binauralize(&field, &bank, rate);
        assert_eq!(out.left.len(), 512);
        assert!(rms(&out.left) + rms(&out.right) > 0.0);
    }
}
