//! The `audio_encoding` and `audio_playback` plugins (48 kHz,
//! 1024-sample blocks — paper Table III).

use std::sync::Arc;

use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
use illixr_core::switchboard::{AsyncReader, SyncReader, Writer};
use illixr_core::telemetry::TaskTimer;
use illixr_sensors::types::{streams, PoseEstimate};

use crate::ambisonics::{encode_block, normalize_block, Soundfield};
use crate::binaural::{default_ring_bank, psychoacoustic_filter, BinauralDecoder, StereoBlock};
use crate::rotation::{rotate_yaw, zoom_forward};
use crate::sources::SoundSource;

/// Stream carrying encoded soundfield blocks.
pub const SOUNDFIELD_STREAM: &str = "soundfield";
/// Stream carrying binauralized stereo blocks.
pub const BINAURAL_STREAM: &str = "binaural";

/// Default block size (samples) and rate, Table III.
pub const BLOCK_SIZE: usize = 1024;
/// Default sample rate, Hz.
pub const SAMPLE_RATE: f64 = 48_000.0;

/// The `audio_encoding` plugin: encodes all sources into one soundfield
/// block per invocation.
pub struct AudioEncodingPlugin {
    sources: Vec<SoundSource>,
    block_size: usize,
    writer: Option<Writer<Arc<Soundfield>>>,
    timer: Arc<TaskTimer>,
}

impl AudioEncodingPlugin {
    /// Creates the plugin with a default two-source scene (a lecturer
    /// ahead-left and an orbiting radio — the paper's two Freesound
    /// clips).
    pub fn with_default_scene(seed: u64) -> Self {
        Self::new(vec![
            SoundSource::lecture(SAMPLE_RATE, 0.5, seed),
            SoundSource::radio(SAMPLE_RATE, -1.0, seed + 1).with_orbit(0.3),
        ])
    }

    /// Creates the plugin from explicit sources.
    pub fn new(sources: Vec<SoundSource>) -> Self {
        Self { sources, block_size: BLOCK_SIZE, writer: None, timer: Arc::new(TaskTimer::new()) }
    }

    /// Task-level timing (Table VII instrumentation).
    pub fn task_timer(&self) -> Arc<TaskTimer> {
        self.timer.clone()
    }
}

impl Plugin for AudioEncodingPlugin {
    fn name(&self) -> &str {
        "audio_encoding"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.writer = Some(
            ctx.switchboard.topic::<Arc<Soundfield>>(SOUNDFIELD_STREAM).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
        let mut sum = Soundfield::silent(self.block_size);
        for src in &mut self.sources {
            // Source synthesis stands in for reading the clip from disk
            // and is not part of the Table VII task accounting.
            let raw = src.next_block(self.block_size);
            let as_i16: Vec<i16> =
                raw.iter().map(|&v| (v.clamp(-1.0, 1.0) * 32767.0) as i16).collect();
            // Normalization: INT16 to FP32 (Table VII).
            let mono = {
                let _g = self.timer.scope("normalization");
                normalize_block(&as_i16)
            };
            // Encoding: sample → soundfield mapping.
            let field = {
                let _g = self.timer.scope("encoding");
                encode_block(&mono, src.current_azimuth(), 0.0)
            };
            // Summation: HOA soundfield superposition.
            {
                let _g = self.timer.scope("summation");
                sum.add_assign(&field);
            }
        }
        self.writer.as_ref().expect("start() must run before iterate()").put(Arc::new(sum));
        IterationReport::with_work(self.sources.len() as f64 / 2.0)
    }
}

/// The `audio_playback` plugin: rotates the soundfield by the listener's
/// head yaw, applies the psychoacoustic filter and binauralizes.
pub struct AudioPlaybackPlugin {
    decoder: BinauralDecoder,
    field_reader: Option<SyncReader<Arc<Soundfield>>>,
    pose_reader: Option<AsyncReader<PoseEstimate>>,
    writer: Option<Writer<Arc<StereoBlock>>>,
    timer: Arc<TaskTimer>,
    zoom: f64,
}

impl AudioPlaybackPlugin {
    /// Creates the plugin with the default 8-speaker ring.
    pub fn new() -> Self {
        Self {
            decoder: BinauralDecoder::new(&default_ring_bank(SAMPLE_RATE), BLOCK_SIZE),
            field_reader: None,
            pose_reader: None,
            writer: None,
            timer: Arc::new(TaskTimer::new()),
            zoom: 0.15,
        }
    }

    /// Task-level timing (Table VII instrumentation).
    pub fn task_timer(&self) -> Arc<TaskTimer> {
        self.timer.clone()
    }
}

impl Default for AudioPlaybackPlugin {
    fn default() -> Self {
        Self::new()
    }
}

impl Plugin for AudioPlaybackPlugin {
    fn name(&self) -> &str {
        "audio_playback"
    }

    fn start(&mut self, ctx: &PluginContext) {
        self.field_reader = Some(
            ctx.switchboard
                .topic::<Arc<Soundfield>>(SOUNDFIELD_STREAM)
                .expect("stream")
                .sync_reader(8),
        );
        self.pose_reader = Some(
            ctx.switchboard
                .topic::<PoseEstimate>(streams::FAST_POSE)
                .expect("stream")
                .async_reader(),
        );
        self.writer = Some(
            ctx.switchboard.topic::<Arc<StereoBlock>>(BINAURAL_STREAM).expect("stream").writer(),
        );
    }

    fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
        let Some(event) = self.field_reader.as_ref().expect("started").try_recv() else {
            return IterationReport::skipped();
        };
        let field: &Soundfield = &event.data;
        // Head yaw from the freshest pose (asynchronous dependence).
        let yaw = self
            .pose_reader
            .as_ref()
            .expect("started")
            .latest()
            .map(|p| {
                // Extract yaw from the orientation: rotate body +X
                // (listener forward in audio convention) into the world
                // and take its horizontal angle.
                let fwd = p.pose.orientation.rotate(illixr_math::Vec3::UNIT_X);
                fwd.y.atan2(fwd.x)
            })
            .unwrap_or(0.0);
        let rotated = {
            let _g = self.timer.scope("rotation");
            rotate_yaw(field, yaw)
        };
        let zoomed = {
            let _g = self.timer.scope("zoom");
            zoom_forward(&rotated, self.zoom)
        };
        let filtered = {
            let _g = self.timer.scope("psychoacoustic filter");
            psychoacoustic_filter(&zoomed, SAMPLE_RATE)
        };
        let stereo = {
            let _g = self.timer.scope("binauralization");
            self.decoder.process(&filtered)
        };
        self.writer.as_ref().expect("start() must run before iterate()").put(Arc::new(stereo));
        IterationReport::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use illixr_core::plugin::RuntimeBuilder;
    use illixr_core::SimClock;
    use illixr_math::{Pose, Quat, Vec3};

    #[test]
    fn encoding_publishes_blocks_with_table_vii_tasks() {
        let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
        let reader = ctx
            .switchboard
            .topic::<Arc<Soundfield>>(SOUNDFIELD_STREAM)
            .expect("stream")
            .sync_reader(4);
        let mut enc = AudioEncodingPlugin::with_default_scene(1);
        enc.start(&ctx);
        enc.iterate(&ctx);
        let block = reader.try_recv().expect("block published");
        assert_eq!(block.len(), BLOCK_SIZE);
        assert!(block.energy() > 0.0);
        let names: Vec<String> = enc.task_timer().shares().into_iter().map(|(n, _)| n).collect();
        for expected in ["normalization", "encoding", "summation"] {
            assert!(names.iter().any(|n| n == expected), "missing '{expected}'");
        }
    }

    #[test]
    fn playback_consumes_every_block() {
        let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
        let out = ctx
            .switchboard
            .topic::<Arc<StereoBlock>>(BINAURAL_STREAM)
            .expect("stream")
            .sync_reader(8);
        let mut enc = AudioEncodingPlugin::with_default_scene(2);
        let mut play = AudioPlaybackPlugin::new();
        enc.start(&ctx);
        play.start(&ctx);
        for _ in 0..3 {
            enc.iterate(&ctx);
            assert!(play.iterate(&ctx).did_work);
        }
        assert!(!play.iterate(&ctx).did_work); // queue drained
        assert_eq!(out.drain().len(), 3);
        let names: Vec<String> = play.task_timer().shares().into_iter().map(|(n, _)| n).collect();
        for expected in ["rotation", "zoom", "psychoacoustic filter", "binauralization"] {
            assert!(names.iter().any(|n| n == expected), "missing '{expected}'");
        }
    }

    #[test]
    fn head_rotation_changes_binaural_output() {
        let run = |yaw: f64| -> StereoBlock {
            let ctx = RuntimeBuilder::new(Arc::new(SimClock::new())).build();
            let out = ctx
                .switchboard
                .topic::<Arc<StereoBlock>>(BINAURAL_STREAM)
                .expect("stream")
                .sync_reader(8);
            ctx.switchboard
                .topic::<PoseEstimate>(streams::FAST_POSE)
                .expect("stream")
                .writer()
                .put(PoseEstimate {
                    timestamp: illixr_core::Time::ZERO,
                    pose: Pose::new(Vec3::ZERO, Quat::from_axis_angle(Vec3::UNIT_Z, yaw)),
                    velocity: Vec3::ZERO,
                });
            let mut enc =
                AudioEncodingPlugin::new(vec![SoundSource::tone(SAMPLE_RATE, 500.0, 1.2)]);
            let mut play = AudioPlaybackPlugin::new();
            enc.start(&ctx);
            play.start(&ctx);
            let mut last = StereoBlock::default();
            for _ in 0..3 {
                enc.iterate(&ctx);
                play.iterate(&ctx);
                last = (*out.drain().pop().unwrap().data).clone();
            }
            last
        };
        let straight = run(0.0);
        let turned = run(1.2); // facing the source
        let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
        let imbalance_straight = (rms(&straight.left) - rms(&straight.right)).abs();
        let imbalance_turned = (rms(&turned.left) - rms(&turned.right)).abs();
        // Facing the source centers it: interaural imbalance shrinks.
        assert!(
            imbalance_turned < imbalance_straight,
            "turned {imbalance_turned} vs straight {imbalance_straight}"
        );
    }
}
