//! Deterministic test sound sources — the stand-ins for the paper's
//! Freesound clips ("Science Teacher Lecturing", "Radio Recording").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A block-based mono source with a (possibly moving) direction.
#[derive(Debug, Clone)]
pub struct SoundSource {
    kind: SourceKind,
    sample_rate: f64,
    phase: f64,
    sample_index: u64,
    rng: StdRng,
    /// Base azimuth, radians.
    pub azimuth: f64,
    /// Orbit rate, radians/second (sources can move around the
    /// listener).
    pub orbit_rate: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SourceKind {
    /// Pure tone.
    Tone { freq: f64 },
    /// Speech-like: a tone with syllabic amplitude and pitch modulation
    /// (the "lecture" stand-in).
    Speech { base_freq: f64 },
    /// Band-limited noise (the "radio recording" stand-in).
    Noise { level: f64 },
}

impl SoundSource {
    /// A pure tone at `freq` Hz.
    pub fn tone(sample_rate: f64, freq: f64, azimuth: f64) -> Self {
        Self::new(SourceKind::Tone { freq }, sample_rate, azimuth, 0)
    }

    /// A speech-like source ("Science Teacher Lecturing").
    pub fn lecture(sample_rate: f64, azimuth: f64, seed: u64) -> Self {
        Self::new(SourceKind::Speech { base_freq: 160.0 }, sample_rate, azimuth, seed)
    }

    /// A noise source ("Radio Recording").
    pub fn radio(sample_rate: f64, azimuth: f64, seed: u64) -> Self {
        Self::new(SourceKind::Noise { level: 0.25 }, sample_rate, azimuth, seed)
    }

    fn new(kind: SourceKind, sample_rate: f64, azimuth: f64, seed: u64) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        Self {
            kind,
            sample_rate,
            phase: 0.0,
            sample_index: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xA0D10),
            azimuth,
            orbit_rate: 0.0,
        }
    }

    /// Makes the source orbit the listener at `rate` rad/s.
    pub fn with_orbit(mut self, rate: f64) -> Self {
        self.orbit_rate = rate;
        self
    }

    /// Current azimuth (accounting for orbit).
    pub fn current_azimuth(&self) -> f64 {
        self.azimuth + self.orbit_rate * self.sample_index as f64 / self.sample_rate
    }

    /// Generates the next block of `len` samples.
    pub fn next_block(&mut self, len: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let t = self.sample_index as f64 / self.sample_rate;
            let v = match self.kind {
                SourceKind::Tone { freq } => {
                    self.phase += std::f64::consts::TAU * freq / self.sample_rate;
                    self.phase.sin() * 0.5
                }
                SourceKind::Speech { base_freq } => {
                    // Syllables at ~4 Hz, vibrato at ~6 Hz.
                    let envelope = (0.5 + 0.5 * (std::f64::consts::TAU * 4.0 * t).sin()).powi(2);
                    let freq = base_freq * (1.0 + 0.08 * (std::f64::consts::TAU * 6.0 * t).sin());
                    self.phase += std::f64::consts::TAU * freq / self.sample_rate;
                    (self.phase.sin() + 0.4 * (2.0 * self.phase).sin()) * 0.35 * envelope
                }
                SourceKind::Noise { level } => {
                    // First-order smoothed noise ≈ band-limited.
                    let white: f64 = self.rng.gen_range(-1.0..1.0);
                    self.phase = 0.85 * self.phase + 0.15 * white;
                    self.phase * level * 4.0
                }
            };
            out.push(v);
            self.sample_index += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_deterministic_by_seed() {
        let mut a = SoundSource::radio(48_000.0, 0.0, 7);
        let mut b = SoundSource::radio(48_000.0, 0.0, 7);
        assert_eq!(a.next_block(256), b.next_block(256));
    }

    #[test]
    fn tone_has_expected_frequency() {
        let rate = 48_000.0;
        let mut src = SoundSource::tone(rate, 1000.0, 0.0);
        let block = src.next_block(4800); // 0.1 s
                                          // Count zero crossings: 1 kHz over 0.1 s → ~200 crossings.
        let crossings = block.windows(2).filter(|w| w[0].signum() != w[1].signum()).count();
        assert!((crossings as i64 - 200).abs() <= 2, "crossings {crossings}");
    }

    #[test]
    fn lecture_has_amplitude_modulation() {
        let mut src = SoundSource::lecture(48_000.0, 0.0, 1);
        let block = src.next_block(48_000);
        // RMS over 50 ms windows must vary (syllables).
        let win = 2400;
        let rms: Vec<f64> = block
            .chunks(win)
            .map(|c| (c.iter().map(|v| v * v).sum::<f64>() / c.len() as f64).sqrt())
            .collect();
        let max = rms.iter().cloned().fold(0.0, f64::max);
        let min = rms.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 3.0 * (min + 1e-6), "no modulation: max {max} min {min}");
    }

    #[test]
    fn orbit_moves_azimuth() {
        let mut src = SoundSource::tone(48_000.0, 440.0, 0.0).with_orbit(1.0);
        assert_eq!(src.current_azimuth(), 0.0);
        src.next_block(48_000); // 1 second
        assert!((src.current_azimuth() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_bounded() {
        for mut src in [
            SoundSource::tone(48_000.0, 300.0, 0.0),
            SoundSource::lecture(48_000.0, 0.0, 2),
            SoundSource::radio(48_000.0, 0.0, 3),
        ] {
            let block = src.next_block(4096);
            assert!(block.iter().all(|v| v.abs() <= 1.5), "sample out of range");
        }
    }
}
