//! A parametric synthetic HRIR (head-related impulse response) bank.
//!
//! Real HRTF datasets are measured on dummy heads; this stand-in
//! synthesizes the three dominant cues analytically — interaural time
//! difference (Woodworth's spherical-head model), interaural level
//! difference / head shadow (a one-pole low-pass on the far ear), and a
//! pinna-like spectral notch — which is enough for the binauralization
//! stage to exercise the exact compute pattern of the real component
//! (per-speaker FIR convolution via FFT).

/// HRIR length in taps.
pub const HRIR_TAPS: usize = 64;

/// Head radius, meters (average adult).
const HEAD_RADIUS: f64 = 0.0875;
/// Speed of sound, m/s.
const SPEED_OF_SOUND: f64 = 343.0;

/// A left/right pair of impulse responses for one direction.
#[derive(Debug, Clone, PartialEq)]
pub struct HrirPair {
    /// Left-ear impulse response.
    pub left: Vec<f64>,
    /// Right-ear impulse response.
    pub right: Vec<f64>,
}

/// A bank of HRIRs for a set of directions.
#[derive(Debug, Clone)]
pub struct HrirBank {
    sample_rate: f64,
    pairs: Vec<HrirPair>,
    azimuths: Vec<f64>,
}

impl HrirBank {
    /// Synthesizes a bank for the given horizontal-plane azimuths
    /// (radians, counter-clockwise from front/+X).
    pub fn synthesize(sample_rate: f64, azimuths: &[f64]) -> Self {
        let pairs = azimuths.iter().map(|&az| synthesize_pair(sample_rate, az)).collect();
        Self { sample_rate, pairs, azimuths: azimuths.to_vec() }
    }

    /// Sample rate the bank was built for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of directions.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The HRIR pair for direction index `i`.
    pub fn pair(&self, i: usize) -> &HrirPair {
        &self.pairs[i]
    }

    /// The azimuth of direction index `i`.
    pub fn azimuth(&self, i: usize) -> f64 {
        self.azimuths[i]
    }
}

/// Woodworth ITD for a source at `azimuth` (0 = front, +π/2 = left).
fn itd_seconds(azimuth: f64) -> f64 {
    // Positive = sound reaches the LEFT ear first.
    let a = azimuth.sin().asin(); // wrap into [-π/2, π/2] lobe
    HEAD_RADIUS / SPEED_OF_SOUND * (a + a.sin())
}

fn synthesize_pair(sample_rate: f64, azimuth: f64) -> HrirPair {
    let itd = itd_seconds(azimuth);
    // Left ear leads for positive azimuth (source on the left).
    let delay_left = (-itd).max(0.0);
    let delay_right = itd.max(0.0);
    // Head shadow: the contralateral ear hears a low-passed, quieter
    // signal. Shadow strength follows |sin(az)|.
    let shadow = azimuth.sin().abs();
    let make_ear = |delay_s: f64, shadowed: bool| -> Vec<f64> {
        let mut h = vec![0.0; HRIR_TAPS];
        let delay_taps = delay_s * sample_rate;
        let d0 = delay_taps.floor() as usize;
        let frac = delay_taps - d0 as f64;
        let gain = if shadowed { 1.0 - 0.55 * shadow } else { 1.0 };
        if d0 + 1 < HRIR_TAPS {
            // Fractional-delay impulse.
            h[d0] = gain * (1.0 - frac);
            h[d0 + 1] = gain * frac;
        }
        if shadowed && shadow > 0.0 {
            // One-pole low-pass smear of the impulse (head shadow).
            let alpha = 0.35 + 0.45 * shadow;
            let mut state = 0.0;
            for v in h.iter_mut() {
                state = alpha * state + (1.0 - alpha) * *v;
                *v = state;
            }
        }
        // Pinna notch: a small negative echo a fixed delay later.
        let notch_delay = (0.00025 * sample_rate) as usize; // 0.25 ms
        if d0 + notch_delay + 1 < HRIR_TAPS {
            h[d0 + notch_delay] -= 0.3 * gain;
        }
        h
    };
    // Source on the left (azimuth > 0): right ear is shadowed.
    let left_shadowed = azimuth.sin() < 0.0;
    HrirPair {
        left: make_ear(delay_left, left_shadowed),
        right: make_ear(delay_right, !left_shadowed && azimuth.sin() != 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak_index(h: &[f64]) -> usize {
        h.iter().enumerate().max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap()).unwrap().0
    }

    fn energy(h: &[f64]) -> f64 {
        h.iter().map(|v| v * v).sum()
    }

    #[test]
    fn frontal_source_is_symmetric() {
        let bank = HrirBank::synthesize(48_000.0, &[0.0]);
        let p = bank.pair(0);
        assert_eq!(peak_index(&p.left), peak_index(&p.right));
        assert!((energy(&p.left) - energy(&p.right)).abs() < 1e-9);
    }

    #[test]
    fn lateral_source_produces_itd() {
        let bank = HrirBank::synthesize(48_000.0, &[std::f64::consts::FRAC_PI_2]); // left
        let p = bank.pair(0);
        // Left ear hears it first.
        assert!(peak_index(&p.left) < peak_index(&p.right), "no ITD");
    }

    #[test]
    fn lateral_source_produces_ild() {
        let bank = HrirBank::synthesize(48_000.0, &[std::f64::consts::FRAC_PI_2]);
        let p = bank.pair(0);
        assert!(energy(&p.left) > 1.5 * energy(&p.right), "no ILD");
    }

    #[test]
    fn mirrored_azimuths_mirror_ears() {
        let bank = HrirBank::synthesize(48_000.0, &[0.6, -0.6]);
        let l = bank.pair(0);
        let r = bank.pair(1);
        for i in 0..HRIR_TAPS {
            assert!((l.left[i] - r.right[i]).abs() < 1e-12);
            assert!((l.right[i] - r.left[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn itd_magnitude_realistic() {
        // Max ITD for a human head ≈ 0.6–0.7 ms.
        let itd = itd_seconds(std::f64::consts::FRAC_PI_2);
        assert!(itd > 4e-4 && itd < 8e-4, "itd {itd}");
    }
}
