//! The audio pipeline: spatial audio via higher-order ambisonics
//! (paper Table II: libspatialaudio — ambisonic encoding, manipulation
//! and binauralization).
//!
//! * [`ambisonics`] — 2nd-order HOA encoding (9 channels, ACN/SN3D real
//!   spherical harmonics) and soundfield summation — Table VII's
//!   "normalization / encoding / summation" tasks;
//! * [`rotation`] — exact yaw rotation and frontal zoom of a soundfield
//!   from the listener's pose — Table VII's "rotation / zoom";
//! * [`hrtf`] — a parametric synthetic HRIR bank (ITD + head-shadow +
//!   pinna notch), the stand-in for measured HRTF data;
//! * [`binaural`] — virtual-speaker decode + FFT convolution with the
//!   HRIRs, plus the psychoacoustic (frequency-domain shelf) filter —
//!   Table VII's "psychoacoustic filter / binauralization";
//! * [`sources`] — deterministic test sources (the Freesound-clip
//!   stand-ins);
//! * [`plugins`] — the `audio_encoding` and `audio_playback` plugins
//!   (48 kHz, 1024-sample blocks, Table III).

pub mod ambisonics;
pub mod binaural;
pub mod hrtf;
pub mod plugins;
pub mod rotation;
pub mod sources;

pub use ambisonics::{encode_block, Soundfield, CHANNELS, ORDER};
pub use binaural::{binauralize, psychoacoustic_filter, BinauralDecoder};
pub use hrtf::HrirBank;
pub use plugins::{AudioEncodingPlugin, AudioPlaybackPlugin, BINAURAL_STREAM, SOUNDFIELD_STREAM};
pub use rotation::{rotate_yaw, zoom_forward};
pub use sources::SoundSource;
