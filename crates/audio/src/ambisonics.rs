//! Second-order higher-order-ambisonics (HOA) encoding.
//!
//! Channels follow ACN ordering with SN3D normalization. A mono source
//! at azimuth θ (counter-clockwise from +X) and elevation φ encodes as
//! `soundfield[ch][i] = Y_ch(θ, φ) · sample[i]` — the
//! `Y[j][i] = D × X[j]` pattern of Table VII, a dense column-major
//! soundfield access.

/// Ambisonic order.
pub const ORDER: usize = 2;
/// Channel count for 2nd order: `(ORDER + 1)²`.
pub const CHANNELS: usize = (ORDER + 1) * (ORDER + 1);

/// A block of HOA audio: `CHANNELS` channels × `len` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Soundfield {
    /// Channel-major samples: `data[ch][i]`.
    pub data: Vec<Vec<f64>>,
}

impl Soundfield {
    /// A silent soundfield of `len` samples.
    pub fn silent(len: usize) -> Self {
        Self { data: vec![vec![0.0; len]; CHANNELS] }
    }

    /// Samples per channel.
    pub fn len(&self) -> usize {
        self.data[0].len()
    }

    /// True when the block has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds another soundfield in place (HOA summation, Table VII).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add_assign(&mut self, other: &Soundfield) {
        assert_eq!(self.len(), other.len(), "soundfield length mismatch");
        for (dst, src) in self.data.iter_mut().zip(&other.data) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Total energy across channels.
    pub fn energy(&self) -> f64 {
        self.data.iter().flatten().map(|v| v * v).sum()
    }
}

/// Real spherical harmonics (ACN/SN3D) up to order 2 for a direction.
///
/// `azimuth` is counter-clockwise from +X in the horizontal plane;
/// `elevation` is up from the horizon. Returns the 9 coefficients.
pub fn sh_coefficients(azimuth: f64, elevation: f64) -> [f64; CHANNELS] {
    let (sa, ca) = azimuth.sin_cos();
    let (se, ce) = elevation.sin_cos();
    let (s2a, c2a) = (2.0 * azimuth).sin_cos();
    // Direction cosines.
    let x = ce * ca;
    let y = ce * sa;
    let z = se;
    [
        1.0,                                 // W  (ACN 0)
        y,                                   // Y  (ACN 1)
        z,                                   // Z  (ACN 2)
        x,                                   // X  (ACN 3)
        3.0f64.sqrt() / 2.0 * ce * ce * s2a, // V  (ACN 4)
        3.0f64.sqrt() / 2.0 * (2.0 * z * y), // T  (ACN 5)
        0.5 * (3.0 * z * z - 1.0),           // R  (ACN 6)
        3.0f64.sqrt() / 2.0 * (2.0 * z * x), // S  (ACN 7)
        3.0f64.sqrt() / 2.0 * ce * ce * c2a, // U  (ACN 8)
    ]
}

/// Normalizes 16-bit-style integer samples to `[-1, 1]` floats —
/// Table VII's "normalization: INT16 → FP32" task.
pub fn normalize_block(samples_i16: &[i16]) -> Vec<f64> {
    samples_i16.iter().map(|&s| s as f64 / 32768.0).collect()
}

/// Encodes a mono block arriving from direction `(azimuth, elevation)`
/// into a 2nd-order soundfield — Table VII's "encoding: sample to
/// soundfield mapping".
pub fn encode_block(mono: &[f64], azimuth: f64, elevation: f64) -> Soundfield {
    let coeff = sh_coefficients(azimuth, elevation);
    let mut field = Soundfield::silent(mono.len());
    for (ch, &c) in coeff.iter().enumerate() {
        for (dst, &s) in field.data[ch].iter_mut().zip(mono) {
            *dst = c * s;
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_channel_is_omnidirectional() {
        for az in [0.0, 1.0, -2.0] {
            for el in [0.0, 0.5] {
                assert_eq!(sh_coefficients(az, el)[0], 1.0);
            }
        }
    }

    #[test]
    fn frontal_source_excites_x_not_y() {
        let c = sh_coefficients(0.0, 0.0); // +X direction
        assert!((c[3] - 1.0).abs() < 1e-12); // X
        assert!(c[1].abs() < 1e-12); // Y
        assert!(c[2].abs() < 1e-12); // Z
    }

    #[test]
    fn lateral_source_excites_y() {
        let c = sh_coefficients(std::f64::consts::FRAC_PI_2, 0.0); // +Y
        assert!((c[1] - 1.0).abs() < 1e-12);
        assert!(c[3].abs() < 1e-12);
    }

    #[test]
    fn overhead_source_excites_z_and_r() {
        let c = sh_coefficients(0.0, std::f64::consts::FRAC_PI_2);
        assert!((c[2] - 1.0).abs() < 1e-12); // Z
        assert!((c[6] - 1.0).abs() < 1e-12); // R = (3z²-1)/2 = 1
    }

    #[test]
    fn encode_scales_samples_by_coefficients() {
        let mono = vec![1.0, -0.5, 0.25];
        let field = encode_block(&mono, 0.0, 0.0);
        assert_eq!(field.data[0], mono); // W copies
        assert_eq!(field.data[3], mono); // X copies for frontal
        assert!(field.data[1].iter().all(|&v| v == 0.0)); // Y silent
    }

    #[test]
    fn summation_superimposes() {
        let a = encode_block(&[1.0; 8], 0.0, 0.0);
        let b = encode_block(&[1.0; 8], std::f64::consts::FRAC_PI_2, 0.0);
        let mut sum = a.clone();
        sum.add_assign(&b);
        assert_eq!(sum.data[0][0], 2.0); // W doubled
        assert_eq!(sum.data[3][0], 1.0); // X from a only
        assert_eq!(sum.data[1][0], 1.0); // Y from b only
    }

    #[test]
    fn normalization_full_scale() {
        let out = normalize_block(&[i16::MIN, 0, i16::MAX]);
        assert!((out[0] + 1.0).abs() < 1e-9);
        assert_eq!(out[1], 0.0);
        assert!((out[2] - 0.99997).abs() < 1e-4);
    }

    #[test]
    fn sh_magnitudes_bounded() {
        for k in 0..100 {
            let az = k as f64 * 0.063;
            let el = (k as f64 * 0.029).sin();
            for c in sh_coefficients(az, el) {
                assert!(c.abs() <= 1.0 + 1e-9, "coefficient {c} out of bound");
            }
        }
    }
}
