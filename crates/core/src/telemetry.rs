//! The record logger: per-frame telemetry with negligible overhead.
//!
//! ILLIXR's logging framework collects the wall-clock time and CPU time
//! of every component invocation (§III-E); the figures and tables of the
//! evaluation are all derived from these records. `RecordLogger` is the
//! ILLIXR-rs equivalent: components (or the scheduler on their behalf)
//! push one [`FrameRecord`] per invocation, and analysis code reads back
//! aggregated [`ComponentStats`].

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;

use crate::time::Time;

/// One component invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// When the invocation became runnable (its period boundary).
    pub release: Time,
    /// When it actually started executing.
    pub start: Time,
    /// When it finished.
    pub end: Time,
    /// CPU time consumed (equals `end - start` for single-threaded
    /// components; the simulated scheduler fills in the modeled cost).
    pub cpu_time: Duration,
    /// The input-dependent work factor reported by the component.
    pub work_factor: f64,
    /// True when the invocation finished after its deadline.
    pub missed_deadline: bool,
}

impl FrameRecord {
    /// Execution latency `end - start`.
    pub fn execution_time(&self) -> Duration {
        self.end - self.start
    }

    /// Response latency `end - release` (includes queueing).
    pub fn response_time(&self) -> Duration {
        self.end - self.release
    }
}

/// Aggregated statistics for one component over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentStats {
    /// Component name.
    pub name: String,
    /// Completed invocations.
    pub invocations: u64,
    /// Releases skipped because the previous instance was still running.
    pub drops: u64,
    /// Invocations that finished past their deadline.
    pub deadline_misses: u64,
    /// Mean execution time.
    pub mean_execution: Duration,
    /// Sample standard deviation of execution time.
    pub std_execution: Duration,
    /// Achieved rate in Hz over the observed span.
    pub achieved_hz: f64,
    /// Total CPU time consumed.
    pub total_cpu: Duration,
}

#[derive(Default)]
struct ComponentLog {
    records: Vec<FrameRecord>,
    drops: u64,
}

/// Collects [`FrameRecord`]s per component.
#[derive(Default)]
pub struct RecordLogger {
    logs: Mutex<HashMap<String, ComponentLog>>,
}

impl RecordLogger {
    /// Creates an empty logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record for `component`.
    pub fn log(&self, component: &str, record: FrameRecord) {
        self.logs.lock().entry(component.to_owned()).or_default().records.push(record);
    }

    /// Counts a dropped (skipped) release for `component`.
    pub fn log_drop(&self, component: &str) {
        self.logs.lock().entry(component.to_owned()).or_default().drops += 1;
    }

    /// All records for a component, in log order.
    pub fn records(&self, component: &str) -> Vec<FrameRecord> {
        self.logs.lock().get(component).map(|l| l.records.clone()).unwrap_or_default()
    }

    /// Names of all components with records (sorted).
    pub fn component_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.logs.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Aggregated statistics for one component, or `None` when it never
    /// ran.
    pub fn stats(&self, component: &str) -> Option<ComponentStats> {
        let logs = self.logs.lock();
        let log = logs.get(component)?;
        let n = log.records.len() as u64;
        if n == 0 {
            return Some(ComponentStats {
                name: component.to_owned(),
                invocations: 0,
                drops: log.drops,
                deadline_misses: 0,
                mean_execution: Duration::ZERO,
                std_execution: Duration::ZERO,
                achieved_hz: 0.0,
                total_cpu: Duration::ZERO,
            });
        }
        let exec_secs: Vec<f64> =
            log.records.iter().map(|r| r.execution_time().as_secs_f64()).collect();
        let mean = exec_secs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            exec_secs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let misses = log.records.iter().filter(|r| r.missed_deadline).count() as u64;
        let total_cpu: Duration = log.records.iter().map(|r| r.cpu_time).sum();
        let first = log.records.first().expect("n > 0").release;
        let last = log.records.last().expect("n > 0").end;
        let span = (last - first).as_secs_f64();
        let achieved_hz = if span > 0.0 { n as f64 / span } else { 0.0 };
        Some(ComponentStats {
            name: component.to_owned(),
            invocations: n,
            drops: log.drops,
            deadline_misses: misses,
            mean_execution: Duration::from_secs_f64(mean),
            std_execution: Duration::from_secs_f64(var.sqrt()),
            achieved_hz,
            total_cpu,
        })
    }

    /// Relative share of total CPU time per component — the quantity
    /// plotted in Fig 5.
    pub fn cpu_share(&self) -> Vec<(String, f64)> {
        let logs = self.logs.lock();
        let mut shares: Vec<(String, f64)> = logs
            .iter()
            .map(|(name, log)| {
                (name.clone(), log.records.iter().map(|r| r.cpu_time.as_secs_f64()).sum::<f64>())
            })
            .collect();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        if total > 0.0 {
            for (_, s) in &mut shares {
                *s /= total;
            }
        }
        shares.sort_by(|a, b| a.0.cmp(&b.0));
        shares
    }

    /// Clears all records.
    pub fn clear(&self) {
        self.logs.lock().clear();
    }

    /// Serializes every component's records as CSV
    /// (`component,release_ns,start_ns,end_ns,cpu_ns,work_factor,missed`),
    /// the format the artifact's `results/metrics/` directories hold.
    pub fn to_csv(&self) -> String {
        let logs = self.logs.lock();
        let mut names: Vec<&String> = logs.keys().collect();
        names.sort();
        let mut out =
            String::from("component,release_ns,start_ns,end_ns,cpu_ns,work_factor,missed\n");
        for name in names {
            for r in &logs[name].records {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{}\n",
                    name,
                    r.release.as_nanos(),
                    r.start.as_nanos(),
                    r.end.as_nanos(),
                    r.cpu_time.as_nanos(),
                    r.work_factor,
                    r.missed_deadline as u8,
                ));
            }
        }
        out
    }

    /// Writes [`RecordLogger::to_csv`] to a file.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

impl std::fmt::Debug for RecordLogger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecordLogger({} components)", self.logs.lock().len())
    }
}

/// Accumulates wall time per named *task* within a component — the
/// instrumentation behind the paper's Tables VI and VII (e.g. VIO's
/// "feature detection 15 %, MSCKF update 23 %, …").
///
/// # Examples
///
/// ```
/// use illixr_core::telemetry::TaskTimer;
/// let timer = TaskTimer::new();
/// {
///     let _guard = timer.scope("feature detection");
///     // ... work ...
/// }
/// assert_eq!(timer.shares().len(), 1);
/// ```
#[derive(Default)]
pub struct TaskTimer {
    totals: Mutex<HashMap<String, Duration>>,
}

impl TaskTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing `task`; the elapsed time is added when the returned
    /// guard drops.
    pub fn scope(&self, task: &str) -> TaskScope<'_> {
        TaskScope { timer: self, task: task.to_owned(), start: std::time::Instant::now() }
    }

    /// Adds `elapsed` to `task` directly.
    pub fn add(&self, task: &str, elapsed: Duration) {
        *self.totals.lock().entry(task.to_owned()).or_default() += elapsed;
    }

    /// Total accumulated time for one task.
    pub fn total(&self, task: &str) -> Duration {
        self.totals.lock().get(task).copied().unwrap_or_default()
    }

    /// `(task, fraction_of_total)` pairs sorted by descending share.
    pub fn shares(&self) -> Vec<(String, f64)> {
        let totals = self.totals.lock();
        let sum: f64 = totals.values().map(|d| d.as_secs_f64()).sum();
        let mut out: Vec<(String, f64)> = totals
            .iter()
            .map(|(k, v)| (k.clone(), if sum > 0.0 { v.as_secs_f64() / sum } else { 0.0 }))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));
        out
    }

    /// Clears all accumulated totals.
    pub fn clear(&self) {
        self.totals.lock().clear();
    }
}

impl std::fmt::Debug for TaskTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskTimer({} tasks)", self.totals.lock().len())
    }
}

/// RAII guard created by [`TaskTimer::scope`].
pub struct TaskScope<'a> {
    timer: &'a TaskTimer,
    task: String,
    start: std::time::Instant,
}

impl Drop for TaskScope<'_> {
    fn drop(&mut self) {
        self.timer.add(&self.task, self.start.elapsed());
    }
}

impl std::fmt::Debug for TaskScope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskScope({})", self.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(start_ms: u64, exec_ms: u64, missed: bool) -> FrameRecord {
        FrameRecord {
            release: Time::from_millis(start_ms),
            start: Time::from_millis(start_ms),
            end: Time::from_millis(start_ms + exec_ms),
            cpu_time: Duration::from_millis(exec_ms),
            work_factor: 1.0,
            missed_deadline: missed,
        }
    }

    #[test]
    fn stats_aggregate_correctly() {
        let log = RecordLogger::new();
        log.log("vio", record(0, 10, false));
        log.log("vio", record(100, 20, true));
        log.log("vio", record(200, 30, false));
        let s = log.stats("vio").unwrap();
        assert_eq!(s.invocations, 3);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.mean_execution, Duration::from_millis(20));
        assert_eq!(s.total_cpu, Duration::from_millis(60));
        // 3 invocations over 230 ms.
        assert!((s.achieved_hz - 3.0 / 0.230).abs() < 1e-9);
    }

    #[test]
    fn drops_counted_separately() {
        let log = RecordLogger::new();
        log.log_drop("app");
        log.log_drop("app");
        log.log("app", record(0, 5, false));
        let s = log.stats("app").unwrap();
        assert_eq!(s.drops, 2);
        assert_eq!(s.invocations, 1);
    }

    #[test]
    fn cpu_share_sums_to_one() {
        let log = RecordLogger::new();
        log.log("a", record(0, 30, false));
        log.log("b", record(0, 10, false));
        let shares = log.cpu_share();
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let a = shares.iter().find(|(n, _)| n == "a").unwrap().1;
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unknown_component_has_no_stats() {
        let log = RecordLogger::new();
        assert!(log.stats("nope").is_none());
    }

    #[test]
    fn task_timer_shares_sum_to_one() {
        let t = TaskTimer::new();
        t.add("a", Duration::from_millis(30));
        t.add("b", Duration::from_millis(10));
        let shares = t.shares();
        assert_eq!(shares[0].0, "a");
        assert!((shares[0].1 - 0.75).abs() < 1e-12);
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn task_timer_scope_accumulates() {
        let t = TaskTimer::new();
        {
            let _g = t.scope("x");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(t.total("x") >= Duration::from_millis(1));
        t.clear();
        assert_eq!(t.total("x"), Duration::ZERO);
    }

    #[test]
    fn csv_export_round_trips_fields() {
        let log = RecordLogger::new();
        log.log("vio", record(10, 5, true));
        log.log("app", record(0, 2, false));
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("component,release_ns"));
        // Sorted by component: app first.
        assert!(lines[1].starts_with("app,0,0,2000000,2000000,1,0"));
        assert!(lines[2].starts_with("vio,10000000,10000000,15000000,5000000,1,1"));
    }

    #[test]
    fn response_time_includes_queueing() {
        let r = FrameRecord {
            release: Time::from_millis(0),
            start: Time::from_millis(5),
            end: Time::from_millis(12),
            cpu_time: Duration::from_millis(7),
            work_factor: 1.0,
            missed_deadline: false,
        };
        assert_eq!(r.execution_time(), Duration::from_millis(7));
        assert_eq!(r.response_time(), Duration::from_millis(12));
    }
}
