//! The switchboard: ILLIXR's event-stream communication framework.
//!
//! Plugins never hold references to one another — they communicate only
//! through named, typed event streams (paper §II-B):
//!
//! * a [`Writer`] publishes events;
//! * a [`SyncReader`] sees **every** value the producer publishes
//!   (synchronous dependence, e.g. VIO consuming every camera frame);
//! * an [`AsyncReader`] asks for the **latest** value (asynchronous
//!   dependence, e.g. reprojection sampling the freshest pose).
//!
//! # Examples
//!
//! ```
//! use illixr_core::switchboard::Switchboard;
//!
//! let sb = Switchboard::new();
//! let w = sb.writer::<&'static str>("imu");
//! let sync = sb.sync_reader::<&'static str>("imu", 8);
//! let latest = sb.async_reader::<&'static str>("imu");
//!
//! w.put("sample-0");
//! w.put("sample-1");
//!
//! assert_eq!(sync.try_recv().unwrap().data, "sample-0"); // every value
//! assert_eq!(sync.try_recv().unwrap().data, "sample-1");
//! assert_eq!(latest.latest().unwrap().data, "sample-1"); // only the latest
//! ```

use std::any::{type_name, Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};

/// An event on a stream: payload plus a monotonically increasing sequence
/// number assigned by the topic.
#[derive(Debug)]
pub struct Event<T> {
    /// Sequence number, starting at 0 for the first event on the topic.
    pub seq: u64,
    /// The payload.
    pub data: T,
}

impl<T> std::ops::Deref for Event<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.data
    }
}

struct Topic<T> {
    latest: RwLock<Option<Arc<Event<T>>>>,
    subscribers: Mutex<Vec<Sender<Arc<Event<T>>>>>,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl<T> Default for Topic<T> {
    fn default() -> Self {
        Self {
            latest: RwLock::new(None),
            subscribers: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

impl<T: Send + Sync> Topic<T> {
    fn publish(&self, data: T) -> Arc<Event<T>> {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let event = Arc::new(Event { seq, data });
        *self.latest.write() = Some(event.clone());
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| match tx.try_send(event.clone()) {
            Ok(()) => true,
            Err(crossbeam::channel::TrySendError::Full(_)) => {
                // Back-pressure policy: drop the event for this slow
                // consumer but keep the subscription. The paper's runtime
                // similarly favours freshness over completeness when a
                // consumer cannot keep up.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
        });
        event
    }
}

/// Type-erased view of a topic's counters, so the switchboard can
/// report on streams whose payload type it no longer knows.
trait TopicMeta: Send + Sync {
    fn seq(&self) -> u64;
    fn dropped(&self) -> u64;
    fn subscribers(&self) -> usize;
}

impl<T: Send + Sync> TopicMeta for Topic<T> {
    fn seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn subscribers(&self) -> usize {
        self.subscribers.lock().len()
    }
}

/// Point-in-time counters for one stream, from [`Switchboard::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicStats {
    /// Stream name.
    pub name: String,
    /// Events published so far.
    pub seq: u64,
    /// Events dropped across all synchronous readers (back-pressure).
    pub dropped: u64,
    /// Live synchronous subscriptions (disconnected readers are only
    /// garbage-collected on the next publish, so this can briefly
    /// over-count).
    pub subscribers: usize,
}

/// Publishes events onto a named stream.
pub struct Writer<T> {
    topic: Arc<Topic<T>>,
    name: String,
}

impl<T: Send + Sync> Writer<T> {
    /// Publishes an event, delivering it to all synchronous readers and
    /// making it the stream's latest value.
    pub fn put(&self, data: T) {
        self.topic.publish(data);
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of events published so far.
    pub fn count(&self) -> u64 {
        self.topic.seq.load(Ordering::SeqCst)
    }

    /// Number of events dropped because a synchronous reader's queue was
    /// full — the runtime's freshness-over-completeness back-pressure
    /// signal, summed over all subscribers of this stream.
    pub fn dropped_count(&self) -> u64 {
        self.topic.dropped.load(Ordering::Relaxed)
    }
}

impl<T> std::fmt::Debug for Writer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Writer<{}>({})", type_name::<T>(), self.name)
    }
}

/// Reads the latest value of a stream (asynchronous dependence).
pub struct AsyncReader<T> {
    topic: Arc<Topic<T>>,
    name: String,
}

impl<T: Send + Sync> AsyncReader<T> {
    /// The most recent event on the stream, if any has been published.
    pub fn latest_event(&self) -> Option<Arc<Event<T>>> {
        self.topic.latest.read().clone()
    }

    /// The most recent payload on the stream.
    pub fn latest(&self) -> Option<Arc<Event<T>>> {
        self.latest_event()
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T> std::fmt::Debug for AsyncReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AsyncReader<{}>({})", type_name::<T>(), self.name)
    }
}

/// Receives every event on a stream (synchronous dependence), buffered in
/// a bounded queue.
pub struct SyncReader<T> {
    rx: Receiver<Arc<Event<T>>>,
    name: String,
}

impl<T: Send + Sync> SyncReader<T> {
    /// Pops the next event without blocking; `None` when the queue is
    /// empty.
    pub fn try_recv(&self) -> Option<Arc<Event<T>>> {
        match self.rx.try_recv() {
            Ok(e) => Some(e),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until the next event arrives (live mode only).
    pub fn recv(&self) -> Option<Arc<Event<T>>> {
        self.rx.recv().ok()
    }

    /// Drains all currently queued events.
    pub fn drain(&self) -> Vec<Arc<Event<T>>> {
        let mut out = Vec::new();
        while let Some(e) = self.try_recv() {
            out.push(e);
        }
        out
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T> std::fmt::Debug for SyncReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SyncReader<{}>({})", type_name::<T>(), self.name)
    }
}

/// The stream registry: hands out writers and readers for named, typed
/// streams. Cloning is cheap and all clones share the same streams.
#[derive(Clone, Default)]
pub struct Switchboard {
    topics: Arc<RwLock<HashMap<String, TopicEntry>>>,
}

/// A registered stream: the typed topic behind an `Any` for readers and
/// writers, plus a type-erased counter view for [`Switchboard::stats`].
struct TopicEntry {
    type_id: TypeId,
    topic: Arc<dyn Any + Send + Sync>,
    meta: Arc<dyn TopicMeta>,
}

impl Switchboard {
    /// Creates an empty switchboard.
    pub fn new() -> Self {
        Self::default()
    }

    fn topic<T: Send + Sync + 'static>(&self, name: &str) -> Arc<Topic<T>> {
        // Fast path: topic exists.
        if let Some(entry) = self.topics.read().get(name) {
            assert_eq!(
                entry.type_id,
                TypeId::of::<T>(),
                "stream '{name}' already exists with a different payload type (requested {})",
                type_name::<T>()
            );
            return entry.topic.clone().downcast::<Topic<T>>().expect("type id verified above");
        }
        // Slow path: create it.
        let mut topics = self.topics.write();
        let entry = topics.entry(name.to_owned()).or_insert_with(|| {
            let topic = Arc::new(Topic::<T>::default());
            TopicEntry { type_id: TypeId::of::<T>(), topic: topic.clone(), meta: topic }
        });
        assert_eq!(
            entry.type_id,
            TypeId::of::<T>(),
            "stream '{name}' already exists with a different payload type (requested {})",
            type_name::<T>()
        );
        entry.topic.clone().downcast::<Topic<T>>().expect("type id verified above")
    }

    /// Returns a writer for stream `name` with payload type `T`.
    ///
    /// # Panics
    ///
    /// Panics when the stream already exists with a different payload type.
    pub fn writer<T: Send + Sync + 'static>(&self, name: &str) -> Writer<T> {
        Writer { topic: self.topic(name), name: name.to_owned() }
    }

    /// Returns an asynchronous (latest-value) reader for stream `name`.
    ///
    /// # Panics
    ///
    /// Panics when the stream already exists with a different payload type.
    pub fn async_reader<T: Send + Sync + 'static>(&self, name: &str) -> AsyncReader<T> {
        AsyncReader { topic: self.topic(name), name: name.to_owned() }
    }

    /// Returns a synchronous (every-value) reader for stream `name` with
    /// the given queue capacity.
    ///
    /// # Panics
    ///
    /// Panics when the stream already exists with a different payload
    /// type, or `capacity` is zero.
    pub fn sync_reader<T: Send + Sync + 'static>(
        &self,
        name: &str,
        capacity: usize,
    ) -> SyncReader<T> {
        assert!(capacity > 0, "sync reader capacity must be positive");
        let topic = self.topic::<T>(name);
        let (tx, rx) = bounded(capacity);
        topic.subscribers.lock().push(tx);
        SyncReader { rx, name: name.to_owned() }
    }

    /// Names of all streams created so far (sorted).
    pub fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Point-in-time counters for every stream, sorted by name: events
    /// published, events dropped to back-pressure, and live synchronous
    /// subscriptions.
    pub fn stats(&self) -> Vec<TopicStats> {
        let mut stats: Vec<TopicStats> = self
            .topics
            .read()
            .iter()
            .map(|(name, entry)| TopicStats {
                name: name.clone(),
                seq: entry.meta.seq(),
                dropped: entry.meta.dropped(),
                subscribers: entry.meta.subscribers(),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }
}

impl std::fmt::Debug for Switchboard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Switchboard({} streams)", self.topics.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_reader_sees_latest_only() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("s");
        let r = sb.async_reader::<u32>("s");
        assert!(r.latest().is_none());
        w.put(1);
        w.put(2);
        assert_eq!(**r.latest().unwrap(), 2);
    }

    #[test]
    fn sync_reader_sees_every_value_in_order() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("s");
        let r = sb.sync_reader::<u32>("s", 16);
        for i in 0..5 {
            w.put(i);
        }
        let values: Vec<u32> = r.drain().iter().map(|e| e.data).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sync_reader_only_sees_events_after_subscription() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("s");
        w.put(99);
        let r = sb.sync_reader::<u32>("s", 4);
        assert!(r.try_recv().is_none());
        w.put(1);
        assert_eq!(**r.try_recv().unwrap(), 1);
    }

    #[test]
    fn bounded_queue_drops_for_slow_consumer_but_latest_works() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("s");
        let r = sb.sync_reader::<u32>("s", 2);
        let latest = sb.async_reader::<u32>("s");
        for i in 0..10 {
            w.put(i);
        }
        // Queue holds only the first two; the rest were dropped for this
        // subscriber, but the stream's latest value is unaffected.
        assert_eq!(r.len(), 2);
        assert_eq!(**latest.latest().unwrap(), 9);
    }

    #[test]
    fn dropped_count_tracks_backpressure() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("s");
        let _r = sb.sync_reader::<u32>("s", 2);
        for i in 0..10 {
            w.put(i);
        }
        assert_eq!(w.count(), 10);
        assert_eq!(w.dropped_count(), 8); // queue of 2, 10 published
    }

    #[test]
    fn events_have_sequence_numbers() {
        let sb = Switchboard::new();
        let w = sb.writer::<&str>("s");
        let r = sb.sync_reader::<&str>("s", 4);
        w.put("a");
        w.put("b");
        assert_eq!(r.try_recv().unwrap().seq, 0);
        assert_eq!(r.try_recv().unwrap().seq, 1);
    }

    #[test]
    fn multiple_subscribers_all_receive() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("s");
        let r1 = sb.sync_reader::<u32>("s", 4);
        let r2 = sb.sync_reader::<u32>("s", 4);
        w.put(7);
        assert_eq!(**r1.try_recv().unwrap(), 7);
        assert_eq!(**r2.try_recv().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "different payload type")]
    fn type_mismatch_panics() {
        let sb = Switchboard::new();
        let _w = sb.writer::<u32>("s");
        let _r = sb.async_reader::<f64>("s");
    }

    #[test]
    fn cross_thread_delivery() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("s");
        let r = sb.sync_reader::<u32>("s", 64);
        let handle = std::thread::spawn(move || {
            for i in 0..32 {
                w.put(i);
            }
        });
        handle.join().unwrap();
        assert_eq!(r.drain().len(), 32);
    }

    #[test]
    fn stats_report_per_stream_counters() {
        let sb = Switchboard::new();
        let w = sb.writer::<u32>("imu");
        let _fast = sb.sync_reader::<u32>("imu", 2);
        let _slow = sb.sync_reader::<u32>("imu", 64);
        let _other = sb.writer::<&str>("camera");
        for i in 0..10 {
            w.put(i);
        }
        let stats = sb.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "camera");
        assert_eq!(stats[0].seq, 0);
        let imu = &stats[1];
        assert_eq!(imu.name, "imu");
        assert_eq!(imu.seq, 10);
        assert_eq!(imu.dropped, 8); // capacity-2 reader missed 8 of 10
        assert_eq!(imu.subscribers, 2);
    }

    #[test]
    fn stream_names_listed() {
        let sb = Switchboard::new();
        let _ = sb.writer::<u32>("b");
        let _ = sb.writer::<u32>("a");
        assert_eq!(sb.stream_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
