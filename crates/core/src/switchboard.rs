//! The switchboard: ILLIXR's event-stream communication framework.
//!
//! Plugins never hold references to one another — they communicate only
//! through named, typed event streams (paper §II-B):
//!
//! * a [`Writer`] publishes events;
//! * a [`SyncReader`] sees **every** value the producer publishes
//!   (synchronous dependence, e.g. VIO consuming every camera frame);
//! * an [`AsyncReader`] asks for the **latest** value (asynchronous
//!   dependence, e.g. reprojection sampling the freshest pose).
//!
//! Streams are obtained through typed [`Topic`] handles; a payload-type
//! conflict or duplicate registration surfaces as a [`SwitchboardError`]
//! instead of a panic. When the switchboard is built with
//! [`Switchboard::with_obs`], every `put`/`recv` pair additionally emits
//! a flow event with a deterministic id, letting the obs exporter
//! stitch producer→consumer causal chains across a trace.
//!
//! # Examples
//!
//! ```
//! use illixr_core::switchboard::Switchboard;
//!
//! let sb = Switchboard::new();
//! let topic = sb.topic::<&'static str>("imu").unwrap();
//! let w = topic.writer();
//! let sync = topic.sync_reader(8);
//! let latest = topic.async_reader();
//!
//! w.put("sample-0");
//! w.put("sample-1");
//!
//! assert_eq!(sync.try_recv().unwrap().data, "sample-0"); // every value
//! assert_eq!(sync.try_recv().unwrap().data, "sample-1");
//! assert_eq!(latest.latest().unwrap().data, "sample-1"); // only the latest
//!
//! // Type conflicts are Results, not panics:
//! assert!(sb.topic::<u32>("imu").is_err());
//! ```

use std::any::{type_name, Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};

use crate::obs::{flow_id, FlowPhase, Metrics, Tracer};

/// An event on a stream: payload plus a monotonically increasing sequence
/// number assigned by the topic.
#[derive(Debug)]
pub struct Event<T> {
    /// Sequence number, starting at 0 for the first event on the topic.
    pub seq: u64,
    /// The payload.
    pub data: T,
}

impl<T> std::ops::Deref for Event<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.data
    }
}

/// Why a [`Topic`] handle could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchboardError {
    /// The stream exists with a different payload type.
    TypeMismatch {
        /// Stream name.
        name: String,
        /// Payload type the caller asked for.
        requested: &'static str,
        /// Payload type the stream was created with.
        registered: &'static str,
    },
    /// [`Switchboard::register_topic`] found the stream already present.
    AlreadyRegistered {
        /// Stream name.
        name: String,
    },
}

impl std::fmt::Display for SwitchboardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TypeMismatch { name, requested, registered } => write!(
                f,
                "stream '{name}' already exists with a different payload type \
                 (requested {requested}, registered {registered})"
            ),
            Self::AlreadyRegistered { name } => {
                write!(f, "stream '{name}' is already registered")
            }
        }
    }
}

impl std::error::Error for SwitchboardError {}

struct TopicState<T> {
    latest: RwLock<Option<Arc<Event<T>>>>,
    subscribers: Mutex<Vec<Sender<Arc<Event<T>>>>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    last_publish_ns: AtomicU64,
}

impl<T> Default for TopicState<T> {
    fn default() -> Self {
        Self {
            latest: RwLock::new(None),
            subscribers: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            last_publish_ns: AtomicU64::new(u64::MAX),
        }
    }
}

impl<T: Send + Sync> TopicState<T> {
    fn publish(&self, data: T) -> Arc<Event<T>> {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let event = Arc::new(Event { seq, data });
        *self.latest.write() = Some(event.clone());
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| match tx.try_send(event.clone()) {
            Ok(()) => true,
            Err(crossbeam::channel::TrySendError::Full(_)) => {
                // Back-pressure policy: drop the event for this slow
                // consumer but keep the subscription. The paper's runtime
                // similarly favours freshness over completeness when a
                // consumer cannot keep up.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
        });
        event
    }
}

/// Type-erased view of a topic's counters, so the switchboard can
/// report on streams whose payload type it no longer knows.
trait TopicMeta: Send + Sync {
    fn seq(&self) -> u64;
    fn dropped(&self) -> u64;
    fn subscribers(&self) -> usize;
    fn queue_depth(&self) -> usize;
}

impl<T: Send + Sync> TopicMeta for TopicState<T> {
    fn seq(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn subscribers(&self) -> usize {
        self.subscribers.lock().len()
    }

    fn queue_depth(&self) -> usize {
        self.subscribers.lock().iter().map(Sender::len).sum()
    }
}

/// Point-in-time counters for one stream, from [`Switchboard::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicStats {
    /// Stream name.
    pub name: String,
    /// Events published so far.
    pub seq: u64,
    /// Events dropped across all synchronous readers (back-pressure).
    pub dropped: u64,
    /// Live synchronous subscriptions (disconnected readers are only
    /// garbage-collected on the next publish, so this can briefly
    /// over-count).
    pub subscribers: usize,
    /// Events currently queued, summed over all synchronous readers.
    pub queue_depth: usize,
}

/// Shared observability context for one stream: the (possibly
/// disabled) tracer and metrics plus the scope-qualified stream name
/// that seeds deterministic flow ids.
#[derive(Clone)]
struct TopicObs {
    tracer: Tracer,
    metrics: Metrics,
    flow_name: Arc<str>,
}

impl TopicObs {
    fn on_put(&self, track: &str, state: &AtomicU64, seq: u64) {
        if !self.tracer.is_enabled() {
            return;
        }
        let now = self.tracer.now_ns();
        self.tracer.flow(
            track,
            &self.flow_name,
            flow_id(&self.flow_name, seq),
            now,
            FlowPhase::Begin,
        );
        let last = state.swap(now, Ordering::SeqCst);
        if self.metrics.is_enabled() && last != u64::MAX && now >= last {
            self.metrics
                .record_ns(&format!("topic.{}.publish_interval_ns", self.flow_name), now - last);
        }
    }

    fn on_recv(&self, track: &str, seq: u64) {
        if !self.tracer.is_enabled() {
            return;
        }
        let now = self.tracer.now_ns();
        self.tracer.flow(
            track,
            &self.flow_name,
            flow_id(&self.flow_name, seq),
            now,
            FlowPhase::End,
        );
    }
}

/// Typed handle onto one stream, from [`Switchboard::topic`]. Vends
/// writers and readers; cloning is cheap and clones address the same
/// stream.
pub struct Topic<T> {
    state: Arc<TopicState<T>>,
    name: String,
    obs: TopicObs,
}

impl<T> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Self { state: self.state.clone(), name: self.name.clone(), obs: self.obs.clone() }
    }
}

impl<T> std::fmt::Debug for Topic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Topic<{}>({})", type_name::<T>(), self.name)
    }
}

impl<T: Send + Sync + 'static> Topic<T> {
    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A writer publishing onto this stream.
    pub fn writer(&self) -> Writer<T> {
        Writer { topic: self.state.clone(), name: self.name.clone(), obs: self.obs.clone() }
    }

    /// An asynchronous (latest-value) reader.
    pub fn async_reader(&self) -> AsyncReader<T> {
        AsyncReader {
            topic: self.state.clone(),
            name: self.name.clone(),
            obs: self.obs.clone(),
            last_seen: AtomicU64::new(u64::MAX),
        }
    }

    /// A synchronous (every-value) reader buffering up to `capacity`
    /// events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn sync_reader(&self, capacity: usize) -> SyncReader<T> {
        assert!(capacity > 0, "sync reader capacity must be positive");
        let (tx, rx) = bounded(capacity);
        self.state.subscribers.lock().push(tx);
        SyncReader { rx, name: self.name.clone(), obs: self.obs.clone() }
    }

    /// A synchronous reader with an unbounded queue: the subscription
    /// never drops events to back-pressure.
    ///
    /// Sensor streams want freshness over completeness (a slow consumer
    /// skips samples, [`Topic::sync_reader`]); *event* streams — XR
    /// input, hit-test results, session lifecycle — must be lossless
    /// within a session, since a dropped `SelectEnd` leaves the
    /// application's input state stuck. The caller owns the memory
    /// consequence: queued events accumulate until drained.
    pub fn lossless_reader(&self) -> SyncReader<T> {
        let (tx, rx) = bounded(usize::MAX);
        self.state.subscribers.lock().push(tx);
        SyncReader { rx, name: self.name.clone(), obs: self.obs.clone() }
    }
}

/// Publishes events onto a named stream.
pub struct Writer<T> {
    topic: Arc<TopicState<T>>,
    name: String,
    obs: TopicObs,
}

impl<T: Send + Sync> Writer<T> {
    /// Publishes an event, delivering it to all synchronous readers and
    /// making it the stream's latest value.
    pub fn put(&self, data: T) {
        let event = self.topic.publish(data);
        self.obs.on_put(&self.name, &self.topic.last_publish_ns, event.seq);
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of events published so far.
    pub fn count(&self) -> u64 {
        self.topic.seq.load(Ordering::SeqCst)
    }

    /// Number of events dropped because a synchronous reader's queue was
    /// full — the runtime's freshness-over-completeness back-pressure
    /// signal, summed over all subscribers of this stream.
    pub fn dropped_count(&self) -> u64 {
        self.topic.dropped.load(Ordering::Relaxed)
    }
}

impl<T> std::fmt::Debug for Writer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Writer<{}>({})", type_name::<T>(), self.name)
    }
}

/// Reads the latest value of a stream (asynchronous dependence).
pub struct AsyncReader<T> {
    topic: Arc<TopicState<T>>,
    name: String,
    obs: TopicObs,
    /// Highest sequence number already reported as a flow end, so
    /// repeated `latest()` polls of one event emit one flow event.
    last_seen: AtomicU64,
}

impl<T: Send + Sync> AsyncReader<T> {
    /// The most recent event on the stream, if any has been published.
    ///
    /// This is the one latest-value accessor; the payload is a
    /// dereference away (`reader.latest().unwrap().data`).
    pub fn latest(&self) -> Option<Arc<Event<T>>> {
        let event = self.topic.latest.read().clone();
        if let Some(e) = &event {
            // Report each event at most once per reader so a 500 Hz
            // poller doesn't flood the trace with duplicate flow ends.
            if self.last_seen.swap(e.seq, Ordering::SeqCst) != e.seq {
                self.obs.on_recv(&format!("{}.recv", self.name), e.seq);
            }
        }
        event
    }

    /// The most recent event without observability side effects: no
    /// flow event is recorded and the once-per-event dedup marker is
    /// untouched, so checkpoints and other out-of-band inspectors can
    /// peek mid-run without perturbing the trace a live run would emit.
    pub fn peek_latest(&self) -> Option<Arc<Event<T>>> {
        self.topic.latest.read().clone()
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T> std::fmt::Debug for AsyncReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AsyncReader<{}>({})", type_name::<T>(), self.name)
    }
}

/// Receives every event on a stream (synchronous dependence), buffered in
/// a bounded queue.
pub struct SyncReader<T> {
    rx: Receiver<Arc<Event<T>>>,
    name: String,
    obs: TopicObs,
}

impl<T: Send + Sync> SyncReader<T> {
    /// Pops the next event without blocking; `None` when the queue is
    /// empty.
    pub fn try_recv(&self) -> Option<Arc<Event<T>>> {
        match self.rx.try_recv() {
            Ok(e) => {
                self.obs.on_recv(&format!("{}.recv", self.name), e.seq);
                Some(e)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks until the next event arrives (live mode only).
    pub fn recv(&self) -> Option<Arc<Event<T>>> {
        let event = self.rx.recv().ok();
        if let Some(e) = &event {
            self.obs.on_recv(&format!("{}.recv", self.name), e.seq);
        }
        event
    }

    /// Drains currently queued events lazily, without allocating.
    /// Stops at the first empty poll, like [`SyncReader::drain`].
    pub fn drain_iter(&self) -> DrainIter<'_, T> {
        DrainIter { reader: self }
    }

    /// Drains all currently queued events into a `Vec`. Hot loops
    /// should prefer [`SyncReader::drain_iter`].
    pub fn drain(&self) -> Vec<Arc<Event<T>>> {
        self.drain_iter().collect()
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T> std::fmt::Debug for SyncReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SyncReader<{}>({})", type_name::<T>(), self.name)
    }
}

/// Lazy draining iterator over a [`SyncReader`]'s queued events, from
/// [`SyncReader::drain_iter`].
#[derive(Debug)]
pub struct DrainIter<'a, T> {
    reader: &'a SyncReader<T>,
}

impl<T: Send + Sync> Iterator for DrainIter<'_, T> {
    type Item = Arc<Event<T>>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.try_recv()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Lower bound 0: concurrent consumers may win the race.
        (0, None)
    }
}

/// The stream registry: hands out typed [`Topic`] handles for named
/// streams. Cloning is cheap and all clones share the same streams.
#[derive(Clone, Default)]
pub struct Switchboard {
    topics: Arc<RwLock<HashMap<String, TopicEntry>>>,
    tracer: Tracer,
    metrics: Metrics,
}

/// A registered stream: the typed topic behind an `Any` for readers and
/// writers, plus a type-erased counter view for [`Switchboard::stats`].
struct TopicEntry {
    type_id: TypeId,
    type_name: &'static str,
    topic: Arc<dyn Any + Send + Sync>,
    meta: Arc<dyn TopicMeta>,
}

impl Switchboard {
    /// Creates an empty switchboard with observability disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty switchboard that emits flow events through
    /// `tracer` on every `put`/`recv` and per-topic publish-interval
    /// histograms into `metrics`. Flow ids are seeded with the
    /// tracer's scope, so per-session scoped tracers keep sessions
    /// distinguishable.
    pub fn with_obs(tracer: Tracer, metrics: Metrics) -> Self {
        Self { topics: Arc::new(RwLock::new(HashMap::new())), tracer, metrics }
    }

    fn handle<T: Send + Sync + 'static>(&self, name: &str, state: Arc<TopicState<T>>) -> Topic<T> {
        Topic {
            state,
            name: name.to_owned(),
            obs: TopicObs {
                tracer: self.tracer.clone(),
                metrics: self.metrics.clone(),
                flow_name: Arc::from(format!("{}{}", self.tracer.scope(), name)),
            },
        }
    }

    /// Returns a typed handle onto stream `name`, creating the stream
    /// on first use.
    ///
    /// # Errors
    ///
    /// [`SwitchboardError::TypeMismatch`] when the stream already
    /// exists with a different payload type.
    pub fn topic<T: Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Topic<T>, SwitchboardError> {
        // Fast path: topic exists.
        if let Some(entry) = self.topics.read().get(name) {
            return entry
                .topic
                .clone()
                .downcast::<TopicState<T>>()
                .map(|state| self.handle(name, state))
                .map_err(|_| SwitchboardError::TypeMismatch {
                    name: name.to_owned(),
                    requested: type_name::<T>(),
                    registered: entry.type_name,
                });
        }
        // Slow path: create it (another thread may have won the race).
        let mut topics = self.topics.write();
        let entry = topics.entry(name.to_owned()).or_insert_with(|| {
            let topic = Arc::new(TopicState::<T>::default());
            TopicEntry {
                type_id: TypeId::of::<T>(),
                type_name: type_name::<T>(),
                topic: topic.clone(),
                meta: topic,
            }
        });
        if entry.type_id != TypeId::of::<T>() {
            return Err(SwitchboardError::TypeMismatch {
                name: name.to_owned(),
                requested: type_name::<T>(),
                registered: entry.type_name,
            });
        }
        let state =
            entry.topic.clone().downcast::<TopicState<T>>().expect("type id verified above");
        Ok(self.handle(name, state))
    }

    /// Registers stream `name`, failing when it already exists — for
    /// callers that own a stream and want double-registration caught.
    ///
    /// # Errors
    ///
    /// [`SwitchboardError::AlreadyRegistered`] when the stream exists
    /// (with any payload type).
    pub fn register_topic<T: Send + Sync + 'static>(
        &self,
        name: &str,
    ) -> Result<Topic<T>, SwitchboardError> {
        if self.topics.read().contains_key(name) {
            return Err(SwitchboardError::AlreadyRegistered { name: name.to_owned() });
        }
        self.topic(name)
    }

    /// Names of all streams created so far (sorted).
    pub fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Point-in-time counters for every stream, sorted by name: events
    /// published, events dropped to back-pressure, live synchronous
    /// subscriptions, and total queued events.
    pub fn stats(&self) -> Vec<TopicStats> {
        let mut stats: Vec<TopicStats> = self
            .topics
            .read()
            .iter()
            .map(|(name, entry)| TopicStats {
                name: name.clone(),
                seq: entry.meta.seq(),
                dropped: entry.meta.dropped(),
                subscribers: entry.meta.subscribers(),
                queue_depth: entry.meta.queue_depth(),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }
}

impl std::fmt::Debug for Switchboard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Switchboard({} streams)", self.topics.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic<T: Send + Sync + 'static>(sb: &Switchboard, name: &str) -> Topic<T> {
        sb.topic::<T>(name).expect("topic")
    }

    #[test]
    fn async_reader_sees_latest_only() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let r = t.async_reader();
        assert!(r.latest().is_none());
        w.put(1);
        w.put(2);
        assert_eq!(**r.latest().unwrap(), 2);
    }

    #[test]
    fn sync_reader_sees_every_value_in_order() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let r = t.sync_reader(16);
        for i in 0..5 {
            w.put(i);
        }
        let values: Vec<u32> = r.drain().iter().map(|e| e.data).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drain_iter_is_lazy_and_complete() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let r = t.sync_reader(16);
        for i in 0..5 {
            w.put(i);
        }
        let mut it = r.drain_iter();
        assert_eq!(**it.next().unwrap(), 0);
        // Events published mid-drain are still observed (lazy pull).
        w.put(99);
        let rest: Vec<u32> = it.map(|e| e.data).collect();
        assert_eq!(rest, vec![1, 2, 3, 4, 99]);
        assert!(r.is_empty());
    }

    #[test]
    fn sync_reader_only_sees_events_after_subscription() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        w.put(99);
        let r = t.sync_reader(4);
        assert!(r.try_recv().is_none());
        w.put(1);
        assert_eq!(**r.try_recv().unwrap(), 1);
    }

    #[test]
    fn bounded_queue_drops_for_slow_consumer_but_latest_works() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let r = t.sync_reader(2);
        let latest = t.async_reader();
        for i in 0..10 {
            w.put(i);
        }
        // Queue holds only the first two; the rest were dropped for this
        // subscriber, but the stream's latest value is unaffected.
        assert_eq!(r.len(), 2);
        assert_eq!(**latest.latest().unwrap(), 9);
    }

    #[test]
    fn dropped_count_tracks_backpressure() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let _r = t.sync_reader(2);
        for i in 0..10 {
            w.put(i);
        }
        assert_eq!(w.count(), 10);
        assert_eq!(w.dropped_count(), 8); // queue of 2, 10 published
    }

    #[test]
    fn lossless_reader_never_drops() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "xr/input");
        let w = t.writer();
        let r = t.lossless_reader();
        // Far past any bounded reader's default capacity.
        for i in 0..5000 {
            w.put(i);
        }
        assert_eq!(w.dropped_count(), 0);
        assert_eq!(r.len(), 5000);
        let values: Vec<u32> = r.drain_iter().map(|e| e.data).collect();
        assert_eq!(values.len(), 5000);
        assert!(values.iter().enumerate().all(|(i, &v)| v == i as u32), "in order, complete");
    }

    #[test]
    fn events_have_sequence_numbers() {
        let sb = Switchboard::new();
        let t = topic::<&str>(&sb, "s");
        let w = t.writer();
        let r = t.sync_reader(4);
        w.put("a");
        w.put("b");
        assert_eq!(r.try_recv().unwrap().seq, 0);
        assert_eq!(r.try_recv().unwrap().seq, 1);
    }

    #[test]
    fn multiple_subscribers_all_receive() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let r1 = t.sync_reader(4);
        let r2 = t.sync_reader(4);
        w.put(7);
        assert_eq!(**r1.try_recv().unwrap(), 7);
        assert_eq!(**r2.try_recv().unwrap(), 7);
    }

    #[test]
    fn type_mismatch_is_an_error_not_a_panic() {
        let sb = Switchboard::new();
        let _t = topic::<u32>(&sb, "s");
        match sb.topic::<f64>("s") {
            Err(SwitchboardError::TypeMismatch { name, requested, registered }) => {
                assert_eq!(name, "s");
                assert!(requested.contains("f64"), "requested {requested}");
                assert!(registered.contains("u32"), "registered {registered}");
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn register_topic_rejects_duplicates() {
        let sb = Switchboard::new();
        assert!(sb.register_topic::<u32>("s").is_ok());
        assert_eq!(
            sb.register_topic::<u32>("s").unwrap_err(),
            SwitchboardError::AlreadyRegistered { name: "s".to_owned() }
        );
        // A plain typed handle is still fine.
        assert!(sb.topic::<u32>("s").is_ok());
    }

    #[test]
    fn cross_thread_delivery() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let r = t.sync_reader(64);
        let handle = std::thread::spawn(move || {
            for i in 0..32 {
                w.put(i);
            }
        });
        handle.join().unwrap();
        assert_eq!(r.drain().len(), 32);
    }

    #[test]
    fn stats_report_per_stream_counters() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "imu");
        let w = t.writer();
        let _fast = t.sync_reader(2);
        let _slow = t.sync_reader(64);
        let _other = topic::<&str>(&sb, "camera");
        for i in 0..10 {
            w.put(i);
        }
        let stats = sb.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "camera");
        assert_eq!(stats[0].seq, 0);
        let imu = &stats[1];
        assert_eq!(imu.name, "imu");
        assert_eq!(imu.seq, 10);
        assert_eq!(imu.dropped, 8); // capacity-2 reader missed 8 of 10
        assert_eq!(imu.subscribers, 2);
        // 2 queued in the capacity-2 reader + 10 in the capacity-64 one.
        assert_eq!(imu.queue_depth, 12);
    }

    #[test]
    fn queue_depth_falls_as_events_are_consumed() {
        let sb = Switchboard::new();
        let t = topic::<u32>(&sb, "s");
        let w = t.writer();
        let r = t.sync_reader(8);
        for i in 0..4 {
            w.put(i);
        }
        assert_eq!(sb.stats()[0].queue_depth, 4);
        let _ = r.try_recv();
        let _ = r.try_recv();
        assert_eq!(sb.stats()[0].queue_depth, 2);
    }

    #[test]
    fn stream_names_listed() {
        let sb = Switchboard::new();
        let _ = topic::<u32>(&sb, "b");
        let _ = topic::<u32>(&sb, "a");
        assert_eq!(sb.stream_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn obs_switchboard_emits_paired_flow_events() {
        use crate::clock::SimClock;
        use crate::obs::tracer_for;
        use crate::time::Time;

        let clock = Arc::new(SimClock::new());
        let tracer = tracer_for(clock.clone());
        let sb = Switchboard::with_obs(tracer.scoped("s0/"), Metrics::new());
        let t = topic::<u32>(&sb, "imu");
        let w = t.writer();
        let r = t.sync_reader(8);
        clock.advance_to(Time::from_micros(10));
        w.put(7);
        clock.advance_to(Time::from_micros(25));
        let _ = r.try_recv();

        let flows = tracer.flows();
        assert_eq!(flows.len(), 2);
        let begin = flows.iter().find(|f| f.phase == FlowPhase::Begin).unwrap();
        let end = flows.iter().find(|f| f.phase == FlowPhase::End).unwrap();
        assert_eq!(begin.id, end.id);
        assert_eq!(begin.id, flow_id("s0/imu", 0));
        assert_eq!(begin.track, "s0/imu");
        assert_eq!(end.track, "s0/imu.recv");
        assert_eq!((begin.at_ns, end.at_ns), (10_000, 25_000));
    }

    #[test]
    fn async_reader_reports_each_event_once() {
        use crate::clock::SimClock;
        use crate::obs::tracer_for;

        let clock = Arc::new(SimClock::new());
        let tracer = tracer_for(clock);
        let sb = Switchboard::with_obs(tracer.clone(), Metrics::disabled());
        let t = topic::<u32>(&sb, "pose");
        let w = t.writer();
        let r = t.async_reader();
        w.put(1);
        let _ = r.latest();
        let _ = r.latest();
        let _ = r.latest();
        w.put(2);
        let _ = r.latest();
        let ends = tracer.flows().iter().filter(|f| f.phase == FlowPhase::End).count();
        assert_eq!(ends, 2);
    }
}
