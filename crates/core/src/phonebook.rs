//! The phonebook: typed service lookup.
//!
//! The runtime registers shared services (clock, switchboard, platform
//! model, telemetry) in the phonebook; plugins look them up by type. This
//! mirrors ILLIXR's `phonebook` service registry, which gives plugins
//! access to runtime facilities without global state.

use std::any::{type_name, Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// Why a phonebook lookup failed.
///
/// Carrying the service's type name (rather than panicking with it)
/// lets callers degrade — a plugin missing a non-essential service can
/// report itself degraded to the supervisor instead of aborting the
/// whole runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PhonebookError {
    /// No service of the requested type is registered.
    NotRegistered {
        /// The `std::any::type_name` of the requested service.
        service: &'static str,
    },
}

impl std::fmt::Display for PhonebookError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhonebookError::NotRegistered { service } => {
                write!(f, "service {service} is not registered in the phonebook")
            }
        }
    }
}

impl std::error::Error for PhonebookError {}

/// A typed service registry.
///
/// # Examples
///
/// ```
/// use illixr_core::Phonebook;
/// use std::sync::Arc;
///
/// #[derive(Debug)]
/// struct FrameCounter(u64);
///
/// let pb = Phonebook::new();
/// pb.register(Arc::new(FrameCounter(42)));
/// let svc = pb.lookup::<FrameCounter>().unwrap();
/// assert_eq!(svc.0, 42);
/// ```
#[derive(Clone, Default)]
pub struct Phonebook {
    services: Arc<RwLock<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>>,
}

impl Phonebook {
    /// Creates an empty phonebook.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service, replacing any previous registration of the
    /// same type. Returns the previously registered instance, if any.
    pub fn register<T: Send + Sync + 'static>(&self, service: Arc<T>) -> Option<Arc<T>> {
        self.services
            .write()
            .insert(TypeId::of::<T>(), service)
            .map(|old| old.downcast::<T>().expect("phonebook entries are keyed by TypeId"))
    }

    /// Looks up a service by type.
    pub fn lookup<T: Send + Sync + 'static>(&self) -> Option<Arc<T>> {
        self.services
            .read()
            .get(&TypeId::of::<T>())
            .map(|s| s.clone().downcast::<T>().expect("phonebook entries are keyed by TypeId"))
    }

    /// Looks up a service, returning a descriptive [`PhonebookError`]
    /// when it has not been registered. This replaces the old panicking
    /// `expect`: a missing service is a recoverable condition (report
    /// it, degrade, let the supervisor decide), not an abort.
    ///
    /// # Examples
    ///
    /// ```
    /// use illixr_core::phonebook::{Phonebook, PhonebookError};
    /// # #[derive(Debug)] struct Gpu;
    /// let pb = Phonebook::new();
    /// let err = pb.try_lookup::<Gpu>().unwrap_err();
    /// assert!(err.to_string().contains("not registered"));
    /// ```
    pub fn try_lookup<T: Send + Sync + 'static>(&self) -> Result<Arc<T>, PhonebookError> {
        self.lookup::<T>().ok_or(PhonebookError::NotRegistered { service: type_name::<T>() })
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// True when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.read().is_empty()
    }
}

impl std::fmt::Debug for Phonebook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Phonebook({} services)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct ServiceA(u32);
    #[derive(Debug)]
    struct ServiceB;

    #[test]
    fn register_and_lookup() {
        let pb = Phonebook::new();
        pb.register(Arc::new(ServiceA(7)));
        assert_eq!(pb.lookup::<ServiceA>().unwrap().0, 7);
        assert!(pb.lookup::<ServiceB>().is_none());
    }

    #[test]
    fn replace_returns_old() {
        let pb = Phonebook::new();
        assert!(pb.register(Arc::new(ServiceA(1))).is_none());
        let old = pb.register(Arc::new(ServiceA(2))).unwrap();
        assert_eq!(old.0, 1);
        assert_eq!(pb.lookup::<ServiceA>().unwrap().0, 2);
    }

    #[test]
    fn try_lookup_reports_the_missing_type() {
        let pb = Phonebook::new();
        let err = pb.try_lookup::<ServiceB>().unwrap_err();
        let PhonebookError::NotRegistered { service } = &err;
        assert!(service.contains("ServiceB"), "error names the type: {service}");
        assert!(err.to_string().contains("not registered"));
        pb.register(Arc::new(ServiceB));
        assert!(pb.try_lookup::<ServiceB>().is_ok());
    }

    #[test]
    fn clones_share_registrations() {
        let a = Phonebook::new();
        let b = a.clone();
        a.register(Arc::new(ServiceA(3)));
        assert_eq!(b.lookup::<ServiceA>().unwrap().0, 3);
    }
}
