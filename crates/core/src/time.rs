//! Time representation shared by live and simulated execution.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in time, in nanoseconds since an arbitrary epoch.
///
/// The same type serves wall-clock time (epoch = runtime start) and
/// virtual simulated time (epoch = simulation start), letting components
/// be oblivious to which mode they run in.
///
/// # Examples
///
/// ```
/// use illixr_core::Time;
/// use std::time::Duration;
/// let t = Time::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_millis_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The epoch.
    pub const ZERO: Self = Self(0);

    /// Creates a time from nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a time from microseconds since the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a time from milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a time from (possibly fractional) seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative and finite");
        Self((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch as `f64`.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero.
    #[inline]
    pub fn duration_since(self, earlier: Self) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Self {
        Self(self.0.saturating_add(d.as_nanos() as u64))
    }

    /// Saturating subtraction of a duration.
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Self {
        Self(self.0.saturating_sub(d.as_nanos() as u64))
    }
}

impl Add<Duration> for Time {
    type Output = Self;
    #[inline]
    fn add(self, d: Duration) -> Self {
        Self(self.0 + d.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos() as u64;
    }
}

impl Sub for Time {
    type Output = Duration;
    /// Difference between two times, saturating to zero when `rhs` is later.
    #[inline]
    fn sub(self, rhs: Self) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// Converts a frequency in Hz to the corresponding period.
///
/// # Panics
///
/// Panics when `hz` is not positive.
pub fn period_from_hz(hz: f64) -> Duration {
    assert!(hz > 0.0, "frequency must be positive");
    Duration::from_nanos((1e9 / hz).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Time::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Time::from_micros(7).as_nanos(), 7_000);
        assert!((Time::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_millis(10) + Duration::from_millis(5);
        assert_eq!(t, Time::from_millis(15));
        assert_eq!(t - Time::from_millis(10), Duration::from_millis(5));
        // Saturating behaviour.
        assert_eq!(Time::from_millis(1) - Time::from_millis(5), Duration::ZERO);
    }

    #[test]
    fn period_from_hz_examples() {
        assert_eq!(period_from_hz(500.0), Duration::from_millis(2));
        assert_eq!(period_from_hz(120.0).as_nanos(), 8_333_333);
    }

    #[test]
    #[should_panic]
    fn zero_hz_panics() {
        let _ = period_from_hz(0.0);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_millis(1) < Time::from_millis(2));
    }
}
