//! Live-mode execution: one OS thread per periodic plugin.
//!
//! This is the paper's "threadloop" plugin base class: the runtime spawns
//! a thread that invokes the plugin at its configured period, records
//! telemetry and honours a stop flag. Use [`crate::sim`] instead for
//! deterministic simulated runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::plugin::{Plugin, PluginContext};
use crate::telemetry::FrameRecord;
use crate::time::Time;

/// Handle to a running plugin thread.
#[derive(Debug)]
pub struct ThreadLoopHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    name: String,
}

impl ThreadLoopHandle {
    /// Signals the loop to stop and waits for the thread to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// The plugin's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for ThreadLoopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawns a thread that calls `plugin.iterate` every `period` until
/// stopped, logging one [`FrameRecord`] per iteration.
///
/// The loop is drift-free: iteration *k* is released at `start + k·period`
/// regardless of how long previous iterations took. If an iteration
/// overruns its period the next release fires immediately (no catch-up
/// burst: intermediate releases are counted as drops).
pub fn spawn_threadloop(
    mut plugin: Box<dyn Plugin>,
    ctx: PluginContext,
    period: Duration,
) -> ThreadLoopHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_clone = stop.clone();
    let name = plugin.name().to_owned();
    let thread_name = name.clone();
    let join = std::thread::Builder::new()
        .name(thread_name.clone())
        .spawn(move || {
            plugin.start(&ctx);
            let origin = Instant::now();
            let mut k: u64 = 0;
            while !stop_clone.load(Ordering::SeqCst) {
                let release = origin + period * k as u32;
                let now = Instant::now();
                if release > now {
                    std::thread::sleep(release - now);
                }
                if stop_clone.load(Ordering::SeqCst) {
                    break;
                }
                let start_t = ctx.clock.now();
                let cpu_start = Instant::now();
                let report = plugin.iterate(&ctx);
                let cpu = cpu_start.elapsed();
                let end_t = ctx.clock.now();
                let release_t = Time::from_nanos((period * k as u32).as_nanos() as u64);
                if report.did_work {
                    ctx.tracer.record_span(
                        plugin.name(),
                        plugin.name(),
                        start_t.as_nanos(),
                        end_t.as_nanos(),
                    );
                    if ctx.metrics.is_enabled() {
                        ctx.metrics.record(&format!("exec.{}", plugin.name()), cpu);
                    }
                    ctx.telemetry.log(
                        plugin.name(),
                        FrameRecord {
                            release: release_t,
                            start: start_t,
                            end: end_t,
                            cpu_time: cpu,
                            work_factor: report.work_factor,
                            missed_deadline: cpu > period,
                        },
                    );
                }
                // Skip any releases that elapsed while we were running.
                let elapsed = origin.elapsed();
                let next_k = (elapsed.as_nanos() / period.as_nanos().max(1)) as u64 + 1;
                if next_k > k + 1 {
                    for _ in (k + 1)..next_k {
                        ctx.telemetry.log_drop(plugin.name());
                    }
                }
                k = next_k.max(k + 1);
            }
            plugin.stop();
        })
        .expect("failed to spawn plugin thread");
    ThreadLoopHandle { stop, join: Some(join), name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use crate::plugin::IterationReport;

    struct Ticker;

    impl Plugin for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn start(&mut self, ctx: &PluginContext) {
            let _ = ctx.switchboard.topic::<u64>("ticks").unwrap();
        }
        fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
            ctx.switchboard.topic::<u64>("ticks").unwrap().writer().put(1);
            IterationReport::nominal()
        }
    }

    #[test]
    fn threadloop_runs_at_period_and_stops() {
        let ctx = PluginContext::new(Arc::new(WallClock::new()));
        let reader = ctx.switchboard.topic::<u64>("ticks").unwrap().sync_reader(1024);
        let handle = spawn_threadloop(Box::new(Ticker), ctx.clone(), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(120));
        handle.stop();
        let n = reader.drain().len();
        // ~24 expected; allow generous scheduling slack.
        assert!(n >= 5, "expected at least 5 ticks, got {n}");
        let stats = ctx.telemetry.stats("ticker").unwrap();
        assert!(stats.invocations >= 5);
    }

    struct Slow;

    impl Plugin for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            std::thread::sleep(Duration::from_millis(12));
            IterationReport::nominal()
        }
    }

    #[test]
    fn overrunning_plugin_records_drops() {
        let ctx = PluginContext::new(Arc::new(WallClock::new()));
        let handle = spawn_threadloop(Box::new(Slow), ctx.clone(), Duration::from_millis(4));
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        let stats = ctx.telemetry.stats("slow").unwrap();
        assert!(stats.drops > 0, "a 12ms task at a 4ms period must drop releases");
        assert!(stats.deadline_misses > 0);
    }
}
