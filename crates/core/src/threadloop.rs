//! Live-mode execution: periodic plugins on OS threads.
//!
//! Two execution shapes share the same release/telemetry model:
//!
//! * [`spawn_threadloop`] — the paper's "threadloop" plugin base
//!   class: one dedicated thread per plugin, invoked at a fixed
//!   period. Simple and isolating, but the thread count grows with
//!   the plugin count and the OS scheduler decides who runs.
//! * [`spawn_worker_pool`] — a work-conserving pool: one dispatcher
//!   releases jobs for every registered plugin and `N` workers drain
//!   them in the order a pluggable [`Policy`] chooses (EDF, rate-
//!   monotonic, or the adaptive governor).
//!
//! Both paths compute releases with 64/128-bit nanosecond arithmetic
//! (release *k* = `origin + period·k` — the old `period * k as u32`
//! truncated `k` and wrapped after ~2³² iterations) and count a
//! deadline miss as *lateness* (`end > release + deadline`), never as
//! CPU time: an iteration that slept past its deadline missed it, and
//! one that burned a full period of CPU but finished on time did not.
//! Use [`crate::sim`] instead for deterministic simulated runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::plugin::{Plugin, PluginContext};
use crate::sched::{release_ns, JobQueue, Policy, PriorityClass, ReadyJob};
use crate::telemetry::FrameRecord;
use crate::time::Time;

/// Handle to a running plugin thread.
#[derive(Debug)]
pub struct ThreadLoopHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    name: String,
}

impl ThreadLoopHandle {
    /// Signals the loop to stop and waits for the thread to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// The plugin's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for ThreadLoopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawns a thread that calls `plugin.iterate` every `period` until
/// stopped, logging one [`FrameRecord`] per iteration. The relative
/// deadline equals the period; use [`spawn_threadloop_with`] to set
/// them independently.
///
/// The loop is drift-free: iteration *k* is released at `start + k·period`
/// regardless of how long previous iterations took. If an iteration
/// overruns its period the next release fires immediately (no catch-up
/// burst: intermediate releases are counted as drops).
pub fn spawn_threadloop(
    plugin: Box<dyn Plugin>,
    ctx: PluginContext,
    period: Duration,
) -> ThreadLoopHandle {
    spawn_threadloop_with(plugin, ctx, period, period)
}

/// [`spawn_threadloop`] with an explicit relative deadline, which may
/// be shorter than the period (a compositor that must finish well
/// before vsync) or longer (a logger that tolerates slack).
pub fn spawn_threadloop_with(
    mut plugin: Box<dyn Plugin>,
    ctx: PluginContext,
    period: Duration,
    deadline: Duration,
) -> ThreadLoopHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_clone = stop.clone();
    let name = plugin.name().to_owned();
    let thread_name = name.clone();
    let period_ns = period.as_nanos().max(1) as u64;
    let deadline_ns = deadline.as_nanos() as u64;
    let join = std::thread::Builder::new()
        .name(thread_name.clone())
        .spawn(move || {
            plugin.start(&ctx);
            let origin = Instant::now();
            // Release timestamps are reported in the runtime clock's
            // basis; capture its origin alongside the Instant one.
            let origin_t = ctx.clock.now().as_nanos();
            let mut k: u64 = 0;
            while !stop_clone.load(Ordering::SeqCst) {
                let offset_ns = release_ns(0, period_ns, k);
                let release = origin + Duration::from_nanos(offset_ns);
                let now = Instant::now();
                if release > now {
                    std::thread::sleep(release - now);
                }
                if stop_clone.load(Ordering::SeqCst) {
                    break;
                }
                let release_t = Time::from_nanos(release_ns(origin_t, period_ns, k));
                let start_t = ctx.clock.now();
                let cpu_start = Instant::now();
                let report = plugin.iterate(&ctx);
                let cpu = cpu_start.elapsed();
                let end_t = ctx.clock.now();
                if report.did_work {
                    ctx.tracer.record_span(
                        plugin.name(),
                        plugin.name(),
                        start_t.as_nanos(),
                        end_t.as_nanos(),
                    );
                    if ctx.metrics.is_enabled() {
                        ctx.metrics.record(&format!("exec.{}", plugin.name()), cpu);
                    }
                    ctx.telemetry.log(
                        plugin.name(),
                        FrameRecord {
                            release: release_t,
                            start: start_t,
                            end: end_t,
                            cpu_time: cpu,
                            work_factor: report.work_factor,
                            missed_deadline: crate::sched::is_miss(
                                end_t.as_nanos(),
                                release_t.as_nanos(),
                                deadline_ns,
                            ),
                        },
                    );
                }
                // Skip any releases that elapsed while we were running.
                let elapsed = origin.elapsed();
                let next_k = (elapsed.as_nanos() / period_ns as u128) as u64 + 1;
                if next_k > k + 1 {
                    for _ in (k + 1)..next_k {
                        ctx.telemetry.log_drop(plugin.name());
                    }
                }
                k = next_k.max(k + 1);
            }
            plugin.stop();
        })
        .expect("failed to spawn plugin thread");
    ThreadLoopHandle { stop, join: Some(join), name }
}

/// A plugin registered with [`spawn_worker_pool`].
pub struct PoolTask {
    /// The plugin to iterate.
    pub plugin: Box<dyn Plugin>,
    /// Release period.
    pub period: Duration,
    /// Relative deadline (usually the period).
    pub deadline: Duration,
    /// Static priority for rate-monotonic selection.
    pub priority: i32,
    /// Semantic class for the degradation governor.
    pub class: PriorityClass,
}

/// Plugin slots shared between the workers: a plugin is checked out of
/// its slot while one worker iterates it and returned afterwards.
type PluginSlots = Arc<Mutex<Vec<Option<Box<dyn Plugin>>>>>;

/// Handle to a running worker pool. Dropping it stops the pool.
pub struct WorkerPoolHandle {
    stop: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    joins: Vec<JoinHandle<()>>,
    plugins: PluginSlots,
    ctx: PluginContext,
}

impl WorkerPoolHandle {
    /// Signals the dispatcher and workers to stop, waits for them,
    /// and calls each plugin's `stop`.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Jobs the policy's admission control shed.
    pub fn shed_jobs(&self) -> u64 {
        self.queue.shed_jobs()
    }

    /// Current degradation level of the pool's policy.
    pub fn level(&self) -> u32 {
        self.queue.level()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
        let mut plugins = self.plugins.lock().unwrap();
        for slot in plugins.iter_mut() {
            if let Some(mut plugin) = slot.take() {
                plugin.stop();
            }
        }
        let _ = &self.ctx;
    }
}

impl Drop for WorkerPoolHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs every registered plugin on a shared pool of `workers` threads,
/// dispatching in the order `policy` chooses — the live-mode
/// counterpart of the sim engine's policy hook.
///
/// One dispatcher thread releases a job per task period (drift-free,
/// 128-bit release math). A release finding its plugin still busy or
/// queued is dropped, mirroring the threadloop's no-catch-up rule; a
/// release the policy refuses to admit (the governor shedding load) is
/// also counted as a drop. Workers pull whatever job the policy picks
/// next, so a lone slow plugin no longer commandeers its own core.
pub fn spawn_worker_pool(
    tasks: Vec<PoolTask>,
    ctx: PluginContext,
    workers: usize,
    policy: Box<dyn Policy>,
) -> WorkerPoolHandle {
    assert!(workers > 0, "worker pool needs at least one worker");
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(JobQueue::new(policy));

    let mut specs = Vec::new();
    let mut plugin_slots = Vec::new();
    let mut names = Vec::new();
    for mut task in tasks {
        task.plugin.start(&ctx);
        names.push(task.plugin.name().to_owned());
        plugin_slots.push(Some(task.plugin));
        specs.push((
            task.period.as_nanos().max(1) as u64,
            task.deadline.as_nanos() as u64,
            task.priority,
            task.class,
        ));
    }
    let plugins = Arc::new(Mutex::new(plugin_slots));
    let names = Arc::new(names);
    // True while a task's job is queued or executing: the dispatcher
    // drops releases for busy tasks instead of letting them pile up.
    let busy: Arc<Vec<AtomicBool>> =
        Arc::new((0..specs.len()).map(|_| AtomicBool::new(false)).collect());

    let mut joins = Vec::new();
    // Worker threads.
    for w in 0..workers {
        let queue = Arc::clone(&queue);
        let plugins = Arc::clone(&plugins);
        let names = Arc::clone(&names);
        let busy = Arc::clone(&busy);
        let ctx = ctx.clone();
        let specs = specs.clone();
        let join = std::thread::Builder::new()
            .name(format!("pool-worker-{w}"))
            .spawn(move || {
                while let Some(job) = queue.pop_blocking() {
                    let Some(mut plugin) = plugins.lock().unwrap()[job.task].take() else {
                        // The dispatcher's busy flag makes this
                        // unreachable, but a missing plugin must not
                        // wedge the worker.
                        busy[job.task].store(false, Ordering::SeqCst);
                        continue;
                    };
                    let start_t = ctx.clock.now();
                    let cpu_start = Instant::now();
                    let report = plugin.iterate(&ctx);
                    let cpu = cpu_start.elapsed();
                    let end_t = ctx.clock.now();
                    let name = &names[job.task];
                    if report.did_work {
                        ctx.tracer.record_span(name, name, start_t.as_nanos(), end_t.as_nanos());
                        if ctx.metrics.is_enabled() {
                            ctx.metrics.record(&format!("exec.{name}"), cpu);
                        }
                        let deadline_rel = specs[job.task].1;
                        ctx.telemetry.log(
                            name,
                            FrameRecord {
                                release: Time::from_nanos(job.release_ns),
                                start: start_t,
                                end: end_t,
                                cpu_time: cpu,
                                work_factor: report.work_factor,
                                missed_deadline: crate::sched::is_miss(
                                    end_t.as_nanos(),
                                    job.release_ns,
                                    deadline_rel,
                                ),
                            },
                        );
                    }
                    plugins.lock().unwrap()[job.task] = Some(plugin);
                    busy[job.task].store(false, Ordering::SeqCst);
                }
            })
            .expect("failed to spawn pool worker");
        joins.push(join);
    }

    // Dispatcher thread: releases jobs at each task's period.
    {
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        let names = Arc::clone(&names);
        let busy = Arc::clone(&busy);
        let ctx = ctx.clone();
        let specs_d = specs;
        let join = std::thread::Builder::new()
            .name("pool-dispatcher".into())
            .spawn(move || {
                let origin = Instant::now();
                let origin_t = ctx.clock.now().as_nanos();
                let mut next_k: Vec<u64> = vec![0; specs_d.len()];
                while !stop.load(Ordering::SeqCst) {
                    // Earliest upcoming release across all tasks.
                    let (task, k, offset_ns) = next_k
                        .iter()
                        .enumerate()
                        .map(|(i, &k)| (i, k, release_ns(0, specs_d[i].0, k)))
                        .min_by_key(|&(i, _, off)| (off, i))
                        .expect("pool has at least one task");
                    let release = origin + Duration::from_nanos(offset_ns);
                    let now = Instant::now();
                    if release > now {
                        // Sleep in short slices so stop stays responsive.
                        let wait = (release - now).min(Duration::from_millis(20));
                        std::thread::sleep(wait);
                        continue;
                    }
                    next_k[task] = k + 1;
                    let (_, deadline_rel, priority, class) = specs_d[task];
                    if busy[task].swap(true, Ordering::SeqCst) {
                        // Previous job still queued or running.
                        ctx.telemetry.log_drop(&names[task]);
                        continue;
                    }
                    let release_t = release_ns(origin_t, specs_d[task].0, k);
                    let job = ReadyJob {
                        task,
                        seq: k,
                        release_ns: release_t,
                        deadline_ns: release_t.saturating_add(deadline_rel),
                        priority,
                        class,
                    };
                    if !queue.push(job) {
                        // Shed by admission control (or the queue closed).
                        busy[task].store(false, Ordering::SeqCst);
                        ctx.telemetry.log_drop(&names[task]);
                    }
                }
            })
            .expect("failed to spawn pool dispatcher");
        joins.push(join);
    }

    WorkerPoolHandle { stop, queue, joins, plugins, ctx }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use crate::plugin::IterationReport;
    use crate::sched::PolicyKind;

    struct Ticker;

    impl Plugin for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn start(&mut self, ctx: &PluginContext) {
            let _ = ctx.switchboard.topic::<u64>("ticks").unwrap();
        }
        fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
            ctx.switchboard.topic::<u64>("ticks").unwrap().writer().put(1);
            IterationReport::nominal()
        }
    }

    #[test]
    fn threadloop_runs_at_period_and_stops() {
        let ctx = PluginContext::new(Arc::new(WallClock::new()));
        let reader = ctx.switchboard.topic::<u64>("ticks").unwrap().sync_reader(1024);
        let handle = spawn_threadloop(Box::new(Ticker), ctx.clone(), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(120));
        handle.stop();
        let n = reader.drain().len();
        // ~24 expected; allow generous scheduling slack.
        assert!(n >= 5, "expected at least 5 ticks, got {n}");
        let stats = ctx.telemetry.stats("ticker").unwrap();
        assert!(stats.invocations >= 5);
    }

    struct Slow;

    impl Plugin for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            std::thread::sleep(Duration::from_millis(12));
            IterationReport::nominal()
        }
    }

    #[test]
    fn overrunning_plugin_records_drops() {
        let ctx = PluginContext::new(Arc::new(WallClock::new()));
        let handle = spawn_threadloop(Box::new(Slow), ctx.clone(), Duration::from_millis(4));
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        let stats = ctx.telemetry.stats("slow").unwrap();
        assert!(stats.drops > 0, "a 12ms task at a 4ms period must drop releases");
        // 12 ms iterations against a 4 ms deadline: every logged
        // iteration finishes past release + deadline.
        assert!(stats.deadline_misses > 0);
    }

    /// A plugin that sleeps through its deadline without burning CPU
    /// used to be reported as on-time (`cpu > period` was the miss
    /// predicate); lateness accounting must count it.
    struct Sleepy;

    impl Plugin for Sleepy {
        fn name(&self) -> &str {
            "sleepy"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            std::thread::sleep(Duration::from_millis(8));
            IterationReport::nominal()
        }
    }

    #[test]
    fn sleepy_but_late_iterations_are_misses() {
        let ctx = PluginContext::new(Arc::new(WallClock::new()));
        // Period 20 ms (so cpu < period always) but deadline 2 ms.
        let handle = spawn_threadloop_with(
            Box::new(Sleepy),
            ctx.clone(),
            Duration::from_millis(20),
            Duration::from_millis(2),
        );
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        let stats = ctx.telemetry.stats("sleepy").unwrap();
        assert!(stats.invocations >= 2);
        assert_eq!(
            stats.deadline_misses, stats.invocations,
            "every 8 ms sleep blows the 2 ms deadline even though cpu ≪ period"
        );
    }

    #[test]
    fn worker_pool_runs_plugins_and_stops() {
        let ctx = PluginContext::new(Arc::new(WallClock::new()));
        let reader = ctx.switchboard.topic::<u64>("ticks").unwrap().sync_reader(4096);
        let tasks = vec![PoolTask {
            plugin: Box::new(Ticker),
            period: Duration::from_millis(5),
            deadline: Duration::from_millis(5),
            priority: 1,
            class: PriorityClass::Critical,
        }];
        let handle = spawn_worker_pool(tasks, ctx.clone(), 2, PolicyKind::Edf.build());
        std::thread::sleep(Duration::from_millis(120));
        handle.stop();
        let n = reader.drain().len();
        assert!(n >= 5, "expected at least 5 pooled ticks, got {n}");
        assert!(ctx.telemetry.stats("ticker").unwrap().invocations >= 5);
    }

    #[test]
    fn worker_pool_drops_busy_releases() {
        let ctx = PluginContext::new(Arc::new(WallClock::new()));
        let tasks = vec![PoolTask {
            plugin: Box::new(Slow),
            period: Duration::from_millis(4),
            deadline: Duration::from_millis(4),
            priority: 0,
            class: PriorityClass::BestEffort,
        }];
        let handle = spawn_worker_pool(tasks, ctx.clone(), 1, PolicyKind::Edf.build());
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        let stats = ctx.telemetry.stats("slow").unwrap();
        assert!(stats.drops > 0, "busy releases must drop, got {:?}", stats);
        assert!(stats.deadline_misses > 0);
    }
}
