//! Live-mode execution: periodic plugins on OS threads, supervised.
//!
//! All live execution is configured through one entry point,
//! [`ThreadloopBuilder`], which unifies the two execution shapes that
//! share the release/telemetry model:
//!
//! * **dedicated** (the default) — the paper's "threadloop" plugin
//!   base class: one dedicated thread per plugin, invoked at a fixed
//!   period. Simple and isolating, but the thread count grows with
//!   the plugin count and the OS scheduler decides who runs.
//! * **pooled** ([`ThreadloopBuilder::pooled`]) — a work-conserving
//!   pool: one dispatcher releases jobs for every registered plugin
//!   and `N` workers drain them in the order a pluggable [`Policy`]
//!   chooses (EDF, rate-monotonic, or the adaptive governor).
//!
//! Both paths compute releases with 64/128-bit nanosecond arithmetic
//! (release *k* = `origin + period·k` — the old `period * k as u32`
//! truncated `k` and wrapped after ~2³² iterations) and count a
//! deadline miss as *lateness* (`end > release + deadline`), never as
//! CPU time: an iteration that slept past its deadline missed it, and
//! one that burned a full period of CPU but finished on time did not.
//!
//! Both paths are also *supervised*: every `iterate` runs under
//! `catch_unwind`, so a panicking plugin is contained instead of
//! silently killing its thread. When the context's
//! [`Supervisor`](crate::supervisor::Supervisor) is enabled, a panic
//! is answered with a bounded exponential-backoff restart
//! (re-running `Plugin::start`); when it is disabled the plugin stops
//! but the rest of the runtime keeps going. Scheduled crashes from the
//! context's [`FaultPlan`](crate::fault::FaultPlan) are injected here
//! (as real panics, through the same containment path). If the
//! supervision policy carries a watchdog deadline, a watchdog thread
//! sweeps for stale plugins and — in pooled mode — escalates the
//! policy's degradation ladder via [`JobQueue::escalate`].
//!
//! Use [`crate::sim`] instead for deterministic simulated runs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::plugin::{Plugin, PluginContext};
use crate::sched::{release_ns, JobQueue, Policy, PriorityClass, ReadyJob};
use crate::telemetry::FrameRecord;
use crate::time::Time;

/// Histogram receiving panic→recovery latencies when metrics are on.
const RECOVERY_METRIC: &str = "supervisor.recovery";

/// One plugin's schedule inside a [`ThreadloopBuilder`].
struct TaskSpec {
    plugin: Box<dyn Plugin>,
    period: Duration,
    deadline: Duration,
    priority: i32,
    class: PriorityClass,
}

enum Mode {
    Dedicated,
    Pooled { workers: usize, policy: Box<dyn Policy> },
}

/// Builds and spawns the live runtime's threads — the single way to
/// run plugins on OS threads (it replaced the old `spawn_threadloop`/
/// `spawn_threadloop_with`/`spawn_worker_pool` free functions, which
/// duplicated the release model and predated supervision).
///
/// Each [`task`](ThreadloopBuilder::task) gets a period; the chained
/// [`deadline`](ThreadloopBuilder::deadline),
/// [`priority`](ThreadloopBuilder::priority) and
/// [`class`](ThreadloopBuilder::class) calls refine the most recently
/// added task. Supervision and fault injection come from the
/// [`PluginContext`] passed to [`spawn`](ThreadloopBuilder::spawn).
///
/// # Examples
///
/// ```no_run
/// use illixr_core::threadloop::ThreadloopBuilder;
/// use illixr_core::sched::{PolicyKind, PriorityClass};
/// use illixr_core::{RuntimeBuilder, WallClock};
/// use std::sync::Arc;
/// use std::time::Duration;
/// # use illixr_core::plugin::{IterationReport, Plugin, PluginContext};
/// # struct Cam; impl Plugin for Cam {
/// #   fn name(&self) -> &str { "camera" }
/// #   fn iterate(&mut self, _: &PluginContext) -> IterationReport { IterationReport::nominal() }
/// # }
///
/// let ctx = RuntimeBuilder::new(Arc::new(WallClock::new())).build();
/// let handles = ThreadloopBuilder::new()
///     .task(Box::new(Cam), Duration::from_millis(33))
///     .deadline(Duration::from_millis(20))
///     .class(PriorityClass::Perception)
///     .pooled(2, PolicyKind::Adaptive.build())
///     .spawn(&ctx);
/// handles.stop();
/// ```
#[must_use = "call .spawn(ctx) to start the threads"]
pub struct ThreadloopBuilder {
    tasks: Vec<TaskSpec>,
    mode: Mode,
}

impl Default for ThreadloopBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadloopBuilder {
    /// An empty builder in dedicated (thread-per-plugin) mode.
    pub fn new() -> Self {
        Self { tasks: Vec::new(), mode: Mode::Dedicated }
    }

    /// Adds a plugin iterated every `period`. Defaults: relative
    /// deadline = period, priority 0, [`PriorityClass::BestEffort`].
    pub fn task(mut self, plugin: Box<dyn Plugin>, period: Duration) -> Self {
        self.tasks.push(TaskSpec {
            plugin,
            period,
            deadline: period,
            priority: 0,
            class: PriorityClass::BestEffort,
        });
        self
    }

    fn last_task(&mut self) -> &mut TaskSpec {
        self.tasks.last_mut().expect("configure a task with .task(...) before refining it")
    }

    /// Sets the last-added task's relative deadline — shorter than the
    /// period for a compositor that must finish well before vsync,
    /// longer for a logger that tolerates slack.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.last_task().deadline = deadline;
        self
    }

    /// Sets the last-added task's static priority (rate-monotonic
    /// selection in pooled mode).
    pub fn priority(mut self, priority: i32) -> Self {
        self.last_task().priority = priority;
        self
    }

    /// Sets the last-added task's semantic class (the degradation
    /// governor's shedding unit in pooled mode).
    pub fn class(mut self, class: PriorityClass) -> Self {
        self.last_task().class = class;
        self
    }

    /// Runs all tasks on a shared pool of `workers` threads dispatched
    /// by `policy`, instead of one dedicated thread per plugin.
    pub fn pooled(mut self, workers: usize, policy: Box<dyn Policy>) -> Self {
        self.mode = Mode::Pooled { workers, policy };
        self
    }

    /// Spawns the configured threads (plus the supervisor's watchdog
    /// thread when `ctx` carries a watchdog deadline) and returns the
    /// handles. Stopping the handles stops everything.
    pub fn spawn(self, ctx: &PluginContext) -> RuntimeHandles {
        let mut handles = match self.mode {
            Mode::Dedicated => RuntimeHandles {
                dedicated: self
                    .tasks
                    .into_iter()
                    .map(|t| spawn_dedicated(t, ctx.clone()))
                    .collect(),
                pool: None,
                watchdog: None,
            },
            Mode::Pooled { workers, policy } => RuntimeHandles {
                dedicated: Vec::new(),
                pool: Some(spawn_pool(self.tasks, ctx.clone(), workers, policy)),
                watchdog: None,
            },
        };
        if ctx.supervisor.is_enabled() && ctx.supervisor.policy().watchdog_deadline.is_some() {
            if let Some(pool) = &handles.pool {
                let queue = Arc::clone(&pool.queue);
                ctx.supervisor.set_escalation(move |_plugin| queue.escalate());
            }
            handles.watchdog = Some(spawn_watchdog(ctx.clone()));
        }
        handles
    }
}

/// Handles to everything [`ThreadloopBuilder::spawn`] started.
/// Dropping (or [`stop`](RuntimeHandles::stop)ping) them stops the
/// watchdog, the plugin threads and the pool, in that order.
pub struct RuntimeHandles {
    dedicated: Vec<ThreadLoopHandle>,
    pool: Option<PoolHandle>,
    watchdog: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
}

impl RuntimeHandles {
    /// Stops all threads and calls each plugin's `stop`.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Jobs the pool policy's admission control shed (0 in dedicated
    /// mode).
    pub fn shed_jobs(&self) -> u64 {
        self.pool.as_ref().map_or(0, |p| p.queue.shed_jobs())
    }

    /// Current degradation level of the pool's policy (0 in dedicated
    /// mode).
    pub fn level(&self) -> u32 {
        self.pool.as_ref().map_or(0, |p| p.queue.level())
    }

    fn shutdown(&mut self) {
        if let Some((stop, join)) = self.watchdog.take() {
            stop.store(true, Ordering::SeqCst);
            let _ = join.join();
        }
        for handle in self.dedicated.drain(..) {
            handle.stop();
        }
        if let Some(mut pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

impl Drop for RuntimeHandles {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RuntimeHandles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RuntimeHandles({} dedicated, pool: {}, watchdog: {})",
            self.dedicated.len(),
            self.pool.is_some(),
            self.watchdog.is_some()
        )
    }
}

/// Handle to one dedicated plugin thread.
#[derive(Debug)]
struct ThreadLoopHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ThreadLoopHandle {
    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ThreadLoopHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Runs one contained iteration: injects a scheduled crash when the
/// fault plan says one is due, otherwise iterates the plugin — either
/// way under `catch_unwind` so the caller decides what a panic means.
fn contained_iterate(
    plugin: &mut Box<dyn Plugin>,
    ctx: &PluginContext,
    name: &str,
    release_t_ns: u64,
    crashes_fired: &AtomicU32,
) -> std::thread::Result<crate::plugin::IterationReport> {
    let fire = ctx.fault.crash_due(name, release_t_ns, crashes_fired.load(Ordering::SeqCst));
    if fire {
        crashes_fired.fetch_add(1, Ordering::SeqCst);
    }
    catch_unwind(AssertUnwindSafe(|| {
        if fire {
            panic!("injected fault: scheduled crash of plugin '{name}'");
        }
        plugin.iterate(ctx)
    }))
}

/// Answers a contained panic: asks the supervisor for a restart slot,
/// waits out the backoff and re-runs `Plugin::start` (itself
/// contained — a panicking restart consumes another slot). Returns
/// `false` when the restart budget is exhausted and the plugin must
/// not run again.
fn handle_panic(plugin: &mut Box<dyn Plugin>, ctx: &PluginContext, name: &str) -> bool {
    loop {
        match ctx.supervisor.on_panic(name, ctx.clock.now().as_nanos()) {
            Some(backoff) => {
                std::thread::sleep(backoff);
                if catch_unwind(AssertUnwindSafe(|| plugin.start(ctx))).is_ok() {
                    return true;
                }
            }
            None => return false,
        }
    }
}

/// Records a productive iteration with the supervisor and exports the
/// recovery latency when this iteration closed a panic incident.
fn note_progress(ctx: &PluginContext, name: &str, end_ns: u64) {
    if let Some(recovery_ns) = ctx.supervisor.note_progress(name, end_ns) {
        if ctx.metrics.is_enabled() {
            ctx.metrics.record_ns(RECOVERY_METRIC, recovery_ns);
        }
    }
}

/// Spawns one dedicated thread calling `iterate` every period until
/// stopped, logging one [`FrameRecord`] per productive iteration.
///
/// The loop is drift-free: iteration *k* is released at `start + k·period`
/// regardless of how long previous iterations took. If an iteration
/// overruns its period the next release fires immediately (no catch-up
/// burst: intermediate releases are counted as drops).
fn spawn_dedicated(task: TaskSpec, ctx: PluginContext) -> ThreadLoopHandle {
    let TaskSpec { mut plugin, period, deadline, .. } = task;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_clone = stop.clone();
    let thread_name = plugin.name().to_owned();
    let period_ns = period.as_nanos().max(1) as u64;
    let deadline_ns = deadline.as_nanos() as u64;
    let join = std::thread::Builder::new()
        .name(thread_name.clone())
        .spawn(move || {
            plugin.start(&ctx);
            let name = plugin.name().to_owned();
            ctx.supervisor.register(&name, ctx.clock.now().as_nanos());
            let crashes_fired = AtomicU32::new(0);
            let origin = Instant::now();
            // Release timestamps are reported in the runtime clock's
            // basis; capture its origin alongside the Instant one.
            let origin_t = ctx.clock.now().as_nanos();
            let mut k: u64 = 0;
            while !stop_clone.load(Ordering::SeqCst) {
                let offset_ns = release_ns(0, period_ns, k);
                let release = origin + Duration::from_nanos(offset_ns);
                let now = Instant::now();
                if release > now {
                    std::thread::sleep(release - now);
                }
                if stop_clone.load(Ordering::SeqCst) {
                    break;
                }
                let release_t = Time::from_nanos(release_ns(origin_t, period_ns, k));
                let start_t = ctx.clock.now();
                let cpu_start = Instant::now();
                let outcome = contained_iterate(
                    &mut plugin,
                    &ctx,
                    &name,
                    release_t.as_nanos(),
                    &crashes_fired,
                );
                let cpu = cpu_start.elapsed();
                let end_t = ctx.clock.now();
                match outcome {
                    Ok(report) if report.did_work => {
                        ctx.tracer.record_span(&name, &name, start_t.as_nanos(), end_t.as_nanos());
                        if ctx.metrics.is_enabled() {
                            ctx.metrics.record(&format!("exec.{name}"), cpu);
                        }
                        ctx.telemetry.log(
                            &name,
                            FrameRecord {
                                release: release_t,
                                start: start_t,
                                end: end_t,
                                cpu_time: cpu,
                                work_factor: report.work_factor,
                                missed_deadline: crate::sched::is_miss(
                                    end_t.as_nanos(),
                                    release_t.as_nanos(),
                                    deadline_ns,
                                ),
                            },
                        );
                        note_progress(&ctx, &name, end_t.as_nanos());
                    }
                    Ok(_) => {}
                    Err(_) => {
                        if !handle_panic(&mut plugin, &ctx, &name) {
                            break;
                        }
                    }
                }
                // Skip any releases that elapsed while we were running.
                let elapsed = origin.elapsed();
                let next_k = (elapsed.as_nanos() / period_ns as u128) as u64 + 1;
                if next_k > k + 1 {
                    for _ in (k + 1)..next_k {
                        ctx.telemetry.log_drop(&name);
                    }
                }
                k = next_k.max(k + 1);
            }
            plugin.stop();
        })
        .expect("failed to spawn plugin thread");
    ThreadLoopHandle { stop, join: Some(join) }
}

/// Plugin slots shared between the workers: a plugin is checked out of
/// its slot while one worker iterates it and returned afterwards.
type PluginSlots = Arc<Mutex<Vec<Option<Box<dyn Plugin>>>>>;

/// Handle to a running worker pool.
struct PoolHandle {
    stop: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    joins: Vec<JoinHandle<()>>,
    plugins: PluginSlots,
}

impl PoolHandle {
    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
        let mut plugins = self.plugins.lock().unwrap();
        for slot in plugins.iter_mut() {
            if let Some(mut plugin) = slot.take() {
                plugin.stop();
            }
        }
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs every registered plugin on a shared pool of `workers` threads,
/// dispatching in the order `policy` chooses — the live-mode
/// counterpart of the sim engine's policy hook.
///
/// One dispatcher thread releases a job per task period (drift-free,
/// 128-bit release math). A release finding its plugin still busy or
/// queued is dropped, mirroring the threadloop's no-catch-up rule; a
/// release the policy refuses to admit (the governor shedding load) is
/// also counted as a drop. Workers pull whatever job the policy picks
/// next, so a lone slow plugin no longer commandeers its own core.
///
/// A worker catching a plugin panic asks the supervisor for a restart
/// slot; the dispatcher suppresses that task's releases (counting
/// drops) until the backoff expires, or forever once the budget is
/// exhausted.
fn spawn_pool(
    tasks: Vec<TaskSpec>,
    ctx: PluginContext,
    workers: usize,
    policy: Box<dyn Policy>,
) -> PoolHandle {
    assert!(workers > 0, "worker pool needs at least one worker");
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(JobQueue::new(policy));

    let mut specs = Vec::new();
    let mut plugin_slots = Vec::new();
    let mut names = Vec::new();
    let start_ns = ctx.clock.now().as_nanos();
    for mut task in tasks {
        task.plugin.start(&ctx);
        ctx.supervisor.register(task.plugin.name(), start_ns);
        names.push(task.plugin.name().to_owned());
        plugin_slots.push(Some(task.plugin));
        specs.push((
            task.period.as_nanos().max(1) as u64,
            task.deadline.as_nanos() as u64,
            task.priority,
            task.class,
        ));
    }
    let plugins = Arc::new(Mutex::new(plugin_slots));
    let names = Arc::new(names);
    let n_tasks = specs.len();
    // True while a task's job is queued or executing: the dispatcher
    // drops releases for busy tasks instead of letting them pile up.
    let busy: Arc<Vec<AtomicBool>> =
        Arc::new((0..n_tasks).map(|_| AtomicBool::new(false)).collect());
    // Restart backoff gate (releases suppressed until the Instant) and
    // budget-exhausted flag, both written by workers on panic.
    let blocked_until: Arc<Vec<Mutex<Option<Instant>>>> =
        Arc::new((0..n_tasks).map(|_| Mutex::new(None)).collect());
    let dead: Arc<Vec<AtomicBool>> =
        Arc::new((0..n_tasks).map(|_| AtomicBool::new(false)).collect());
    let crashes_fired: Arc<Vec<AtomicU32>> =
        Arc::new((0..n_tasks).map(|_| AtomicU32::new(0)).collect());

    let mut joins = Vec::new();
    // Worker threads.
    for w in 0..workers {
        let queue = Arc::clone(&queue);
        let plugins = Arc::clone(&plugins);
        let names = Arc::clone(&names);
        let busy = Arc::clone(&busy);
        let blocked_until = Arc::clone(&blocked_until);
        let dead = Arc::clone(&dead);
        let crashes_fired = Arc::clone(&crashes_fired);
        let ctx = ctx.clone();
        let specs = specs.clone();
        let join = std::thread::Builder::new()
            .name(format!("pool-worker-{w}"))
            .spawn(move || {
                while let Some(job) = queue.pop_blocking() {
                    let Some(mut plugin) = plugins.lock().unwrap()[job.task].take() else {
                        // The dispatcher's busy flag makes this
                        // unreachable, but a missing plugin must not
                        // wedge the worker.
                        busy[job.task].store(false, Ordering::SeqCst);
                        continue;
                    };
                    let name = &names[job.task];
                    let start_t = ctx.clock.now();
                    let cpu_start = Instant::now();
                    let outcome = contained_iterate(
                        &mut plugin,
                        &ctx,
                        name,
                        job.release_ns,
                        &crashes_fired[job.task],
                    );
                    let cpu = cpu_start.elapsed();
                    let end_t = ctx.clock.now();
                    match outcome {
                        Ok(report) if report.did_work => {
                            ctx.tracer.record_span(
                                name,
                                name,
                                start_t.as_nanos(),
                                end_t.as_nanos(),
                            );
                            if ctx.metrics.is_enabled() {
                                ctx.metrics.record(&format!("exec.{name}"), cpu);
                            }
                            let deadline_rel = specs[job.task].1;
                            ctx.telemetry.log(
                                name,
                                FrameRecord {
                                    release: Time::from_nanos(job.release_ns),
                                    start: start_t,
                                    end: end_t,
                                    cpu_time: cpu,
                                    work_factor: report.work_factor,
                                    missed_deadline: crate::sched::is_miss(
                                        end_t.as_nanos(),
                                        job.release_ns,
                                        deadline_rel,
                                    ),
                                },
                            );
                            note_progress(&ctx, name, end_t.as_nanos());
                        }
                        Ok(_) => {}
                        Err(_) => match ctx.supervisor.on_panic(name, end_t.as_nanos()) {
                            Some(backoff) => {
                                // Re-init now; the dispatcher holds
                                // releases until the backoff expires.
                                let _ = catch_unwind(AssertUnwindSafe(|| plugin.start(&ctx)));
                                *blocked_until[job.task].lock().unwrap() =
                                    Some(Instant::now() + backoff);
                            }
                            None => dead[job.task].store(true, Ordering::SeqCst),
                        },
                    }
                    plugins.lock().unwrap()[job.task] = Some(plugin);
                    busy[job.task].store(false, Ordering::SeqCst);
                }
            })
            .expect("failed to spawn pool worker");
        joins.push(join);
    }

    // Dispatcher thread: releases jobs at each task's period.
    {
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        let names = Arc::clone(&names);
        let busy = Arc::clone(&busy);
        let blocked_until = Arc::clone(&blocked_until);
        let dead = Arc::clone(&dead);
        let ctx = ctx.clone();
        let specs_d = specs;
        let join = std::thread::Builder::new()
            .name("pool-dispatcher".into())
            .spawn(move || {
                let origin = Instant::now();
                let origin_t = ctx.clock.now().as_nanos();
                let mut next_k: Vec<u64> = vec![0; specs_d.len()];
                while !stop.load(Ordering::SeqCst) {
                    // Earliest upcoming release across all live tasks.
                    let Some((task, k, offset_ns)) = next_k
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| !dead[i].load(Ordering::SeqCst))
                        .map(|(i, &k)| (i, k, release_ns(0, specs_d[i].0, k)))
                        .min_by_key(|&(i, _, off)| (off, i))
                    else {
                        // Every task exhausted its restart budget;
                        // idle until stopped.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    let release = origin + Duration::from_nanos(offset_ns);
                    let now = Instant::now();
                    if release > now {
                        // Sleep in short slices so stop stays responsive.
                        let wait = (release - now).min(Duration::from_millis(20));
                        std::thread::sleep(wait);
                        continue;
                    }
                    next_k[task] = k + 1;
                    // Restart backoff in progress? Suppress the release.
                    {
                        let mut gate = blocked_until[task].lock().unwrap();
                        match *gate {
                            Some(until) if Instant::now() < until => {
                                ctx.telemetry.log_drop(&names[task]);
                                continue;
                            }
                            Some(_) => *gate = None,
                            None => {}
                        }
                    }
                    let (_, deadline_rel, priority, class) = specs_d[task];
                    if busy[task].swap(true, Ordering::SeqCst) {
                        // Previous job still queued or running.
                        ctx.telemetry.log_drop(&names[task]);
                        continue;
                    }
                    let release_t = release_ns(origin_t, specs_d[task].0, k);
                    let job = ReadyJob {
                        task,
                        seq: k,
                        release_ns: release_t,
                        deadline_ns: release_t.saturating_add(deadline_rel),
                        priority,
                        class,
                    };
                    if !queue.push(job) {
                        // Shed by admission control (or the queue closed).
                        busy[task].store(false, Ordering::SeqCst);
                        ctx.telemetry.log_drop(&names[task]);
                    }
                }
            })
            .expect("failed to spawn pool dispatcher");
        joins.push(join);
    }

    PoolHandle { stop, queue, joins, plugins }
}

/// Spawns the stale-stream watchdog: periodically sweeps the
/// supervisor for plugins with no productive iteration within the
/// watchdog deadline; [`Supervisor::scan_stale`](crate::supervisor::Supervisor::scan_stale)
/// degrades them and fires the escalation hook.
fn spawn_watchdog(ctx: PluginContext) -> (Arc<AtomicBool>, JoinHandle<()>) {
    let deadline =
        ctx.supervisor.policy().watchdog_deadline.expect("watchdog spawned without a deadline");
    // Sweep a few times per deadline so staleness is noticed promptly,
    // without busy-polling for long deadlines.
    let interval = (deadline / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    let stop = Arc::new(AtomicBool::new(false));
    let stop_clone = stop.clone();
    let join = std::thread::Builder::new()
        .name("supervisor-watchdog".into())
        .spawn(move || {
            while !stop_clone.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                ctx.supervisor.scan_stale(ctx.clock.now().as_nanos());
            }
        })
        .expect("failed to spawn watchdog thread");
    (stop, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;
    use crate::plugin::{IterationReport, RuntimeBuilder};
    use crate::sched::PolicyKind;
    use crate::supervisor::{PluginHealth, SupervisionPolicy};

    fn ctx() -> PluginContext {
        RuntimeBuilder::new(Arc::new(WallClock::new())).build()
    }

    struct Ticker;

    impl Plugin for Ticker {
        fn name(&self) -> &str {
            "ticker"
        }
        fn start(&mut self, ctx: &PluginContext) {
            let _ = ctx.switchboard.topic::<u64>("ticks").unwrap();
        }
        fn iterate(&mut self, ctx: &PluginContext) -> IterationReport {
            ctx.switchboard.topic::<u64>("ticks").unwrap().writer().put(1);
            IterationReport::nominal()
        }
    }

    #[test]
    fn threadloop_runs_at_period_and_stops() {
        let ctx = ctx();
        let reader = ctx.switchboard.topic::<u64>("ticks").unwrap().sync_reader(1024);
        let handles =
            ThreadloopBuilder::new().task(Box::new(Ticker), Duration::from_millis(5)).spawn(&ctx);
        std::thread::sleep(Duration::from_millis(120));
        handles.stop();
        let n = reader.drain().len();
        // ~24 expected; allow generous scheduling slack.
        assert!(n >= 5, "expected at least 5 ticks, got {n}");
        let stats = ctx.telemetry.stats("ticker").unwrap();
        assert!(stats.invocations >= 5);
    }

    struct Slow;

    impl Plugin for Slow {
        fn name(&self) -> &str {
            "slow"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            std::thread::sleep(Duration::from_millis(12));
            IterationReport::nominal()
        }
    }

    #[test]
    fn overrunning_plugin_records_drops() {
        let ctx = ctx();
        let handles =
            ThreadloopBuilder::new().task(Box::new(Slow), Duration::from_millis(4)).spawn(&ctx);
        std::thread::sleep(Duration::from_millis(100));
        handles.stop();
        let stats = ctx.telemetry.stats("slow").unwrap();
        assert!(stats.drops > 0, "a 12ms task at a 4ms period must drop releases");
        // 12 ms iterations against a 4 ms deadline: every logged
        // iteration finishes past release + deadline.
        assert!(stats.deadline_misses > 0);
    }

    /// A plugin that sleeps through its deadline without burning CPU
    /// used to be reported as on-time (`cpu > period` was the miss
    /// predicate); lateness accounting must count it.
    struct Sleepy;

    impl Plugin for Sleepy {
        fn name(&self) -> &str {
            "sleepy"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            std::thread::sleep(Duration::from_millis(8));
            IterationReport::nominal()
        }
    }

    #[test]
    fn sleepy_but_late_iterations_are_misses() {
        let ctx = ctx();
        // Period 20 ms (so cpu < period always) but deadline 2 ms.
        let handles = ThreadloopBuilder::new()
            .task(Box::new(Sleepy), Duration::from_millis(20))
            .deadline(Duration::from_millis(2))
            .spawn(&ctx);
        std::thread::sleep(Duration::from_millis(100));
        handles.stop();
        let stats = ctx.telemetry.stats("sleepy").unwrap();
        assert!(stats.invocations >= 2);
        assert_eq!(
            stats.deadline_misses, stats.invocations,
            "every 8 ms sleep blows the 2 ms deadline even though cpu ≪ period"
        );
    }

    #[test]
    fn worker_pool_runs_plugins_and_stops() {
        let ctx = ctx();
        let reader = ctx.switchboard.topic::<u64>("ticks").unwrap().sync_reader(4096);
        let handles = ThreadloopBuilder::new()
            .task(Box::new(Ticker), Duration::from_millis(5))
            .priority(1)
            .class(PriorityClass::Critical)
            .pooled(2, PolicyKind::Edf.build())
            .spawn(&ctx);
        std::thread::sleep(Duration::from_millis(120));
        handles.stop();
        let n = reader.drain().len();
        assert!(n >= 5, "expected at least 5 pooled ticks, got {n}");
        assert!(ctx.telemetry.stats("ticker").unwrap().invocations >= 5);
    }

    #[test]
    fn worker_pool_drops_busy_releases() {
        let ctx = ctx();
        let handles = ThreadloopBuilder::new()
            .task(Box::new(Slow), Duration::from_millis(4))
            .pooled(1, PolicyKind::Edf.build())
            .spawn(&ctx);
        std::thread::sleep(Duration::from_millis(100));
        handles.stop();
        let stats = ctx.telemetry.stats("slow").unwrap();
        assert!(stats.drops > 0, "busy releases must drop, got {stats:?}");
        assert!(stats.deadline_misses > 0);
    }

    /// A plugin that panics on its `n`th iteration, then behaves.
    struct Crashy {
        calls: u32,
        crash_on: u32,
    }

    impl Plugin for Crashy {
        fn name(&self) -> &str {
            "crashy"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            self.calls += 1;
            if self.calls == self.crash_on {
                panic!("boom");
            }
            IterationReport::nominal()
        }
    }

    static PANIC_HOOK_LOCK: Mutex<()> = Mutex::new(());

    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        // Keep expected panics out of the test output; serialize so
        // concurrent tests don't race on the process-global hook.
        let _guard = PANIC_HOOK_LOCK.lock().unwrap();
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn supervised_threadloop_restarts_a_panicking_plugin() {
        quiet_panics(|| {
            let ctx = RuntimeBuilder::new(Arc::new(WallClock::new()))
                .with_supervision(SupervisionPolicy {
                    backoff_initial: Duration::from_millis(2),
                    ..SupervisionPolicy::default()
                })
                .build();
            let handles = ThreadloopBuilder::new()
                .task(Box::new(Crashy { calls: 0, crash_on: 3 }), Duration::from_millis(4))
                .spawn(&ctx);
            std::thread::sleep(Duration::from_millis(120));
            handles.stop();
            assert_eq!(ctx.supervisor.health("crashy"), Some(PluginHealth::Running));
            let report = &ctx.supervisor.report()[0];
            assert_eq!(report.panics, 1);
            assert_eq!(report.restarts, 1);
            assert_eq!(report.recovery_ns.len(), 1, "recovery recorded");
            // The plugin kept iterating after the restart.
            assert!(ctx.telemetry.stats("crashy").unwrap().invocations > 3);
        });
    }

    #[test]
    fn unsupervised_panic_is_contained_but_fatal_to_the_plugin() {
        quiet_panics(|| {
            let ctx = ctx();
            let handles = ThreadloopBuilder::new()
                .task(Box::new(Crashy { calls: 0, crash_on: 2 }), Duration::from_millis(4))
                .task(Box::new(Ticker), Duration::from_millis(4))
                .spawn(&ctx);
            std::thread::sleep(Duration::from_millis(60));
            handles.stop();
            assert_eq!(ctx.supervisor.health("crashy"), Some(PluginHealth::Failed));
            let crashy = ctx.telemetry.stats("crashy").unwrap();
            assert_eq!(crashy.invocations, 1, "stopped at the panic");
            // The other plugin was unaffected.
            assert!(ctx.telemetry.stats("ticker").unwrap().invocations >= 5);
        });
    }

    #[test]
    fn supervised_pool_restarts_and_other_tasks_keep_running() {
        quiet_panics(|| {
            let ctx = RuntimeBuilder::new(Arc::new(WallClock::new()))
                .with_supervision(SupervisionPolicy {
                    backoff_initial: Duration::from_millis(2),
                    ..SupervisionPolicy::default()
                })
                .build();
            let handles = ThreadloopBuilder::new()
                .task(Box::new(Crashy { calls: 0, crash_on: 2 }), Duration::from_millis(5))
                .task(Box::new(Ticker), Duration::from_millis(5))
                .pooled(2, PolicyKind::Edf.build())
                .spawn(&ctx);
            std::thread::sleep(Duration::from_millis(150));
            handles.stop();
            assert_eq!(ctx.supervisor.health("crashy"), Some(PluginHealth::Running));
            assert_eq!(ctx.supervisor.report()[0].restarts, 1);
            assert!(!ctx.supervisor.recovery_times_ns().is_empty());
            assert!(ctx.telemetry.stats("ticker").unwrap().invocations >= 10);
        });
    }

    /// A plugin that produces nothing — watchdog bait.
    struct Mute;

    impl Plugin for Mute {
        fn name(&self) -> &str {
            "mute"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            IterationReport::skipped()
        }
    }

    #[test]
    fn watchdog_degrades_silent_plugin_and_escalates_pool_policy() {
        let ctx = RuntimeBuilder::new(Arc::new(WallClock::new()))
            .with_supervision(SupervisionPolicy::with_watchdog(Duration::from_millis(10)))
            .build();
        let handles = ThreadloopBuilder::new()
            .task(Box::new(Mute), Duration::from_millis(5))
            .task(Box::new(Ticker), Duration::from_millis(5))
            .class(PriorityClass::Critical)
            .pooled(2, PolicyKind::Adaptive.build())
            .spawn(&ctx);
        std::thread::sleep(Duration::from_millis(120));
        let level = handles.level();
        handles.stop();
        assert_eq!(ctx.supervisor.health("mute"), Some(PluginHealth::Degraded));
        assert_eq!(ctx.supervisor.health("ticker"), Some(PluginHealth::Running));
        assert!(level >= 1, "watchdog escalation must climb the governor ladder");
    }

    #[test]
    fn scheduled_crash_fault_is_injected_and_recovered() {
        quiet_panics(|| {
            use crate::fault::{FaultKind, FaultPlan, FaultWindow};
            let plan = FaultPlan::new(42).with_window(FaultWindow::new(
                FaultKind::PluginCrash,
                "ticker",
                20_000_000, // 20 ms into the run
                20_000_001,
                1.0,
            ));
            let ctx = RuntimeBuilder::new(Arc::new(WallClock::new()))
                .with_fault_plan(Arc::new(plan))
                .with_supervision(SupervisionPolicy {
                    backoff_initial: Duration::from_millis(2),
                    ..SupervisionPolicy::default()
                })
                .build();
            let handles = ThreadloopBuilder::new()
                .task(Box::new(Ticker), Duration::from_millis(5))
                .spawn(&ctx);
            std::thread::sleep(Duration::from_millis(120));
            handles.stop();
            let report = &ctx.supervisor.report()[0];
            assert_eq!(report.panics, 1, "exactly one scheduled crash fires");
            assert_eq!(report.restarts, 1);
            assert_eq!(ctx.supervisor.health("ticker"), Some(PluginHealth::Running));
        });
    }
}
