//! Glue onto the `illixr-trace` record/replay layer.
//!
//! Like [`crate::obs`], [`crate::sched`] and [`crate::fault`], this
//! module re-exports a below-core crate and adds the runtime-facing
//! handle: a [`Boundary`] carried by every
//! [`PluginContext`](crate::plugin::PluginContext). The boundary is
//! the determinism frontier of a run — every *physical input* (camera
//! pose, IMU sample, link delivery, scheduled crash) crosses it
//! exactly once, and each crossing point does one of three things:
//!
//! * **off** (the default) — generate the input as before; zero cost.
//! * **recording** — generate the input, then append `(stream,
//!   tag_ns, payload)` to the [`TraceRecorder`].
//! * **replaying** — skip the generator and pop the recorded input
//!   from the [`TraceSource`] instead. A replaying boundary may *also*
//!   carry a recorder; replay paths re-record the popped payload bytes
//!   verbatim, so a replayed run's trace is byte-identical to its
//!   input — the golden-test identity check.
//!
//! Fault-plan *outcomes* cross the boundary too (satellite rule:
//! record the boundary, not the RNG): [`Boundary::crash_due`] records
//! each scheduled crash as an empty payload on `crash/<plugin>`, so a
//! faulted recording replays identically even when the replay side
//! runs a quiet plan under supervision.

pub use illixr_trace::checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_SCHEMA_VERSION};
pub use illixr_trace::codec::{ByteReader, ByteWriter, CodecError};
pub use illixr_trace::divergence::{first_divergence, Divergence};
pub use illixr_trace::format::{Trace, TraceError, TraceHeader, TraceRecord, SCHEMA_VERSION};
pub use illixr_trace::recorder::TraceRecorder;
pub use illixr_trace::source::TraceSource;
pub use illixr_trace::transform::{fan_out_transform, SessionTransform};

use crate::fault::FaultPlan;
use crate::switchboard::TopicStats;

/// Stream-name prefix for recorded fault-plan crash outcomes.
pub const CRASH_STREAM_PREFIX: &str = "crash/";

/// The runtime's view of the determinism boundary: an optional
/// recorder, an optional replay source, or neither (off).
#[derive(Debug, Clone, Default)]
pub struct Boundary {
    recorder: Option<TraceRecorder>,
    source: Option<TraceSource>,
}

impl Boundary {
    /// The default boundary: inputs are generated and not recorded.
    pub fn off() -> Self {
        Self::default()
    }

    /// A recording boundary.
    pub fn recording(recorder: TraceRecorder) -> Self {
        Self { recorder: Some(recorder), source: None }
    }

    /// A replaying boundary. When `recorder` is also set, replay paths
    /// re-record each popped payload verbatim (identity check).
    pub fn replaying(source: TraceSource, recorder: Option<TraceRecorder>) -> Self {
        Self { recorder, source: Some(source) }
    }

    /// A boundary whose recorder and source (whichever are present)
    /// resolve stream names under `prefix` — one handle per server
    /// session over a shared store.
    pub fn scoped(&self, prefix: &str) -> Self {
        Self {
            recorder: self.recorder.as_ref().map(|r| r.scoped(prefix)),
            source: self.source.as_ref().map(|s| s.scoped(prefix)),
        }
    }

    pub fn is_off(&self) -> bool {
        self.recorder.is_none() && self.source.is_none()
    }

    pub fn recorder(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// The replay source, when this boundary replays.
    pub fn source(&self) -> Option<&TraceSource> {
        self.source.as_ref()
    }

    /// Append one boundary event (no-op without a recorder).
    pub fn record(&self, stream: &str, tag_ns: u64, payload: Vec<u8>) {
        if let Some(rec) = &self.recorder {
            rec.record(stream, tag_ns, payload);
        }
    }

    /// Whether plugin `plugin` has a crash due at `release_ns` beyond
    /// the `fired` already delivered — the boundary-side replacement
    /// for [`FaultPlan::crash_due`].
    ///
    /// Recording: consults `plan` and records each firing on
    /// `crash/<plugin>`. Replaying: consults the trace only, so a run
    /// recorded under `FaultPlan::scheduled(..)` replays its crashes
    /// (and nothing else) whatever plan the replay side carries.
    pub fn crash_due(&self, plan: &FaultPlan, plugin: &str, release_ns: u64, fired: u32) -> bool {
        let stream = format!("{CRASH_STREAM_PREFIX}{plugin}");
        let due = match &self.source {
            Some(src) => src.count_through(&stream, release_ns) > fired as u64,
            None => plan.crash_due(plugin, release_ns, fired),
        };
        if due {
            if let Some(src) = &self.source {
                // Consume the record so a re-recording replay emits it
                // at its original tag.
                if let Some((tag, payload)) = src.next_due(&stream, release_ns) {
                    self.record(&stream, tag, payload);
                }
            } else {
                self.record(&stream, release_ns, Vec::new());
            }
        }
        due
    }

    /// Human-readable divergence report for a failed replay-identity
    /// check: the first diverging `(stream, tag_ns)` coordinate plus
    /// the replay side's switchboard topic stats (satellite: make
    /// golden-test failures diagnosable, not a bare assert).
    pub fn divergence_report(recorded: &Trace, replayed: &Trace, stats: &[TopicStats]) -> String {
        let mut out = String::new();
        match first_divergence(recorded, replayed) {
            None => out.push_str("traces are identical\n"),
            Some(d) => {
                out.push_str(&format!("replay diverged: {d}\n"));
            }
        }
        out.push_str(&format!(
            "recorded: {} streams / {} records; replayed: {} streams / {} records\n",
            recorded.streams.len(),
            recorded.record_count(),
            replayed.streams.len(),
            replayed.record_count(),
        ));
        if !stats.is_empty() {
            out.push_str("replay-side switchboard topics:\n");
            out.push_str("  topic, seq, dropped, subscribers, queue_depth\n");
            for s in stats {
                out.push_str(&format!(
                    "  {}, {}, {}, {}, {}\n",
                    s.name, s.seq, s.dropped, s.subscribers, s.queue_depth
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn off_boundary_is_inert() {
        let b = Boundary::off();
        assert!(b.is_off());
        b.record("imu", 1, vec![1]);
        assert!(b.recorder().is_none() && b.source().is_none());
    }

    #[test]
    fn recording_crash_outcomes_consults_the_plan() {
        let plan = FaultPlan::quiet();
        let rec = TraceRecorder::new(1, 2);
        let b = Boundary::recording(rec.clone());
        assert!(!b.crash_due(&plan, "vio", 1_000, 0));
        assert!(rec.snapshot().stream("crash/vio").is_none());
    }

    #[test]
    fn replaying_crash_outcomes_ignores_the_plan() {
        // Record one crash for vio at t=500 under a plan that fires it…
        let rec = TraceRecorder::new(1, 2);
        rec.record("crash/vio", 500, Vec::new());
        let trace = Arc::new(rec.snapshot());
        // …then replay under a quiet plan: the crash still fires, once.
        let quiet = FaultPlan::quiet();
        let rerec = TraceRecorder::new(1, 2);
        let b = Boundary::replaying(TraceSource::new(trace.clone()), Some(rerec.clone()));
        assert!(!b.crash_due(&quiet, "vio", 499, 0));
        assert!(b.crash_due(&quiet, "vio", 500, 0));
        assert!(!b.crash_due(&quiet, "vio", 800, 1));
        assert!(!b.crash_due(&quiet, "imu_integrator", 800, 0));
        // The re-recording reproduced the original record.
        assert_eq!(rerec.snapshot().stream("crash/vio"), trace.stream("crash/vio"));
    }

    #[test]
    fn divergence_report_names_the_first_mismatch() {
        let a = TraceRecorder::new(1, 2);
        a.record("imu", 10, vec![1]);
        let b = TraceRecorder::new(1, 2);
        b.record("imu", 10, vec![2]);
        let stats =
            [TopicStats { name: "imu".into(), seq: 3, dropped: 0, subscribers: 1, queue_depth: 0 }];
        let report = Boundary::divergence_report(&a.snapshot(), &b.snapshot(), &stats);
        assert!(report.contains("first divergence"), "{report}");
        assert!(report.contains("tag 10 ns"), "{report}");
        assert!(report.contains("imu, 3, 0, 1, 0"), "{report}");
    }
}
