//! The unified device↔edge link vocabulary.
//!
//! Two link models grew up independently: `illixr_system`'s
//! `OffloadLink` (a private point-to-point pipe with fixed one-way
//! latency and optional jitter) and `illixr_server`'s `SharedLink` (a
//! contended finite-bandwidth pipe with queueing and serialization).
//! This module is the vocabulary both speak:
//!
//! * [`Direction`] — uplink vs downlink, with the boundary stream each
//!   direction records on;
//! * [`LinkProfile`] — named parameter presets (`wifi`, `lan`,
//!   `cellular_5g`) that either model can be built from;
//! * [`Link`] — the one-method trait (`deliver_at`) answering the only
//!   question the rest of the system asks a link: *a payload of this
//!   size enters the pipe now — when does it come out?*
//!
//! `LinkConfig::from_point_to_point` (in `illixr-server`) remains the
//! adapter embedding a point-to-point link in the shared model; the
//! duplicated per-model preset constructors are gone in favour of
//! profiles.

use std::time::Duration;

use crate::time::Time;

/// Transfer direction on a device↔edge link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Device → edge server.
    Uplink,
    /// Edge server → device.
    Downlink,
}

impl Direction {
    /// Short lowercase label — also the fault-plan target name for
    /// `LinkOutage` / `LinkJitterSpike` windows.
    pub fn label(self) -> &'static str {
        match self {
            Self::Uplink => "uplink",
            Self::Downlink => "downlink",
        }
    }

    /// Boundary stream the direction's transfers are recorded on.
    pub fn boundary_stream(self) -> &'static str {
        match self {
            Self::Uplink => "link/uplink",
            Self::Downlink => "link/downlink",
        }
    }
}

/// A named link parameter preset. Profiles are pure data: build an
/// `OffloadLink` (point-to-point, latency + jitter only) or a
/// `SharedLink` config (adds finite bandwidth and queueing) from one,
/// threading the run seed through at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Stable preset name for report rows and config parsing.
    pub name: &'static str,
    /// Uplink bandwidth, bits per second.
    pub uplink_bps: f64,
    /// Downlink bandwidth, bits per second.
    pub downlink_bps: f64,
    /// One-way propagation latency, both directions.
    pub base_latency: Duration,
    /// Log-normal jitter sigma on the propagation term (0 = none).
    pub jitter_sigma: f64,
}

impl LinkProfile {
    /// An 802.11ac-class wireless edge link: 200 Mbit/s up, 400 Mbit/s
    /// down, 2 ms one-way, no jitter. (Numerically identical to the
    /// retired `LinkConfig::wifi()` so existing goldens hold.)
    pub fn wifi() -> Self {
        Self {
            name: "wifi",
            uplink_bps: 200e6,
            downlink_bps: 400e6,
            base_latency: Duration::from_millis(2),
            jitter_sigma: 0.0,
        }
    }

    /// A wired gigabit LAN to a rack in the same room: symmetric
    /// 1 Gbit/s, 500 µs one-way, no jitter.
    pub fn lan() -> Self {
        Self {
            name: "lan",
            uplink_bps: 1e9,
            downlink_bps: 1e9,
            base_latency: Duration::from_micros(500),
            jitter_sigma: 0.0,
        }
    }

    /// A mid-band 5G cell: 75 Mbit/s up, 600 Mbit/s down, 12 ms
    /// one-way with substantial scheduling jitter.
    pub fn cellular_5g() -> Self {
        Self {
            name: "cellular_5g",
            uplink_bps: 75e6,
            downlink_bps: 600e6,
            base_latency: Duration::from_millis(12),
            jitter_sigma: 0.35,
        }
    }

    /// Every built-in preset, in presentation order.
    pub fn all() -> [Self; 3] {
        [Self::lan(), Self::wifi(), Self::cellular_5g()]
    }

    /// Parse a preset name (case-insensitive). Returns `None` for
    /// unknown names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "wifi" => Some(Self::wifi()),
            "lan" => Some(Self::lan()),
            "cellular_5g" | "5g" | "cellular" => Some(Self::cellular_5g()),
            _ => None,
        }
    }

    /// Bandwidth of one direction, bits per second.
    pub fn bps(&self, direction: Direction) -> f64 {
        match direction {
            Direction::Uplink => self.uplink_bps,
            Direction::Downlink => self.downlink_bps,
        }
    }

    /// Serialization delay for `bytes` in `direction` (zero on an
    /// infinite-bandwidth direction).
    pub fn serialization(&self, direction: Direction, bytes: u64) -> Duration {
        let bps = self.bps(direction);
        if bps.is_finite() {
            Duration::from_secs_f64(bytes as f64 * 8.0 / bps)
        } else {
            Duration::ZERO
        }
    }
}

/// Anything that moves bytes between device and edge. One question:
/// given a payload entering the pipe `now`, when is it delivered?
/// Implementations may keep per-direction queue state (`SharedLink`)
/// or be effectively stateless (`OffloadLink`); either way the answer
/// must be deterministic for a fixed construction seed and call
/// sequence.
pub trait Link {
    /// Stable model label for reports (`"shared"`, `"p2p"`, …).
    fn label(&self) -> &'static str;

    /// Starts a transfer of `bytes` at `now` and returns its delivery
    /// time.
    fn deliver_at(&mut self, direction: Direction, now: Time, bytes: u64) -> Time;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_parse_their_own_names() {
        for p in LinkProfile::all() {
            assert_eq!(LinkProfile::parse(p.name).unwrap().name, p.name);
        }
        assert_eq!(LinkProfile::parse("5G").unwrap().name, "cellular_5g");
        assert!(LinkProfile::parse("carrier-pigeon").is_none());
    }

    #[test]
    fn wifi_matches_the_retired_constructor_numbers() {
        let p = LinkProfile::wifi();
        assert_eq!(p.uplink_bps, 200e6);
        assert_eq!(p.downlink_bps, 400e6);
        assert_eq!(p.base_latency, Duration::from_millis(2));
        assert_eq!(p.jitter_sigma, 0.0);
    }

    #[test]
    fn serialization_scales_with_bytes_and_direction() {
        let p = LinkProfile::wifi();
        assert_eq!(p.serialization(Direction::Uplink, 0), Duration::ZERO);
        // 200 Mbit/s: 25 MB/s, so 25_000 bytes = 1 ms.
        assert_eq!(p.serialization(Direction::Uplink, 2_500_000), Duration::from_millis(100));
        // Downlink is twice as fast.
        assert_eq!(p.serialization(Direction::Downlink, 2_500_000), Duration::from_millis(50));
        let infinite = LinkProfile { uplink_bps: f64::INFINITY, ..p };
        assert_eq!(infinite.serialization(Direction::Uplink, 1 << 30), Duration::ZERO);
    }

    #[test]
    fn direction_labels_and_streams() {
        assert_eq!(Direction::Uplink.label(), "uplink");
        assert_eq!(Direction::Downlink.boundary_stream(), "link/downlink");
    }
}
