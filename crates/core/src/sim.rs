//! Deterministic discrete-event execution of the integrated system.
//!
//! A live XR run depends on the host machine; the paper had to run ILLIXR
//! on three physical platforms (desktop, Jetson-HP, Jetson-LP) to produce
//! its figures. ILLIXR-rs additionally provides this *simulated mode*: the
//! same plugins execute on a virtual clock, with their per-invocation
//! execution **costs** supplied by a platform timing model instead of the
//! host CPU. Contention is modeled structurally — a fixed number of CPU
//! cores and GPU slots, FIFO dispatch, releases skipped while the previous
//! instance of a component is still running — so deadline misses, frame
//! drops and queueing-induced variability emerge from the schedule exactly
//! as they do on a real constrained platform (paper §IV-A).
//!
//! Components still perform their real computation when dispatched (so
//! VIO really tracks features, reprojection really warps pixels); only
//! *how long that work is charged on the virtual timeline* comes from the
//! model.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;

use crate::clock::{Clock, SimClock};
use crate::obs::{Metrics, Tracer};
use crate::sched::{
    lateness_ns, ChainId, ChainOutcome, ChainSpec, ChainTracker, Policy, PolicyKind, PriorityClass,
    ReadyJob,
};
use crate::telemetry::{FrameRecord, RecordLogger};
use crate::time::Time;

/// The hardware resource a task occupies while executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// A CPU core from the platform's pool.
    Cpu,
    /// A GPU execution slot (compute or graphics).
    Gpu,
    /// An edge-server compute slot behind a link: work placed here
    /// frees the device's CPU/GPU but pays transfer latency inside its
    /// modeled cost (device/edge placement, paper §V-F footnote 2).
    Remote,
}

/// Identifier of a registered task.
pub type TaskId = usize;

/// Context handed to a task's runner at dispatch.
#[derive(Debug, Clone, Copy)]
pub struct Dispatch {
    /// The release (period boundary) this invocation belongs to.
    pub release: Time,
    /// Virtual time at which execution starts.
    pub start: Time,
    /// 0-based invocation counter.
    pub invocation: u64,
}

/// What a task invocation costs and did.
#[derive(Debug, Clone, Copy)]
pub struct ExecOutcome {
    /// Modeled execution cost charged on the virtual timeline.
    pub cost: Duration,
    /// Input-dependent work factor (telemetry only).
    pub work_factor: f64,
    /// False when the task had no input; the invocation is not logged.
    pub did_work: bool,
}

/// A periodic task specification.
pub struct TaskSpec {
    /// Component name used in telemetry.
    pub name: String,
    /// Resource occupied during execution.
    pub resource: Resource,
    /// Release period.
    pub period: Duration,
    /// Offset of the first release from time zero. Reprojection uses this
    /// to run "as late as possible before vsync" (paper §II-B footnote).
    pub offset: Duration,
    /// Relative deadline; an invocation finishing after
    /// `release + deadline` is a deadline miss.
    pub deadline: Duration,
    /// When true, a release that arrives while a previous invocation of
    /// the same task is still running or queued is *skipped* (counted as a
    /// drop) — the "forced to skip the next frame" behaviour of §IV-A1.
    pub drop_if_busy: bool,
    /// Dispatch priority: among queued tasks waiting for the same
    /// resource, higher priority dispatches first (FIFO within a
    /// priority). XR runtimes run reprojection at high GPU priority so
    /// the compositor is never starved by the application.
    pub priority: u8,
    /// When true and no slot is free at release, the task *preempts*:
    /// it executes immediately and every task currently running on the
    /// resource is delayed by its cost — the high-priority preemptive
    /// GPU context real compositors use for asynchronous timewarp.
    pub preemptive: bool,
    /// Preemption granularity: how long a preemptive release must wait
    /// for the running work to reach a preemption point (a draw-call /
    /// compute-block boundary). Only charged when the resource was
    /// actually busy. Desktops preempt almost instantly; embedded GPUs
    /// are coarser — which is what makes reprojection latency grow with
    /// application complexity on the Jetsons (paper Table IV).
    pub preempt_latency: Duration,
    /// Semantic class consulted by the scheduling policy: EDF ignores
    /// it, the adaptive governor sheds `Perception`/`Visual` rates
    /// first and `Audio`/`BestEffort` jobs last, never `Critical`.
    pub class: PriorityClass,
}

/// The function executed at dispatch: performs the component's real work
/// and returns its modeled cost.
pub type TaskRunner = Box<dyn FnMut(Dispatch) -> ExecOutcome>;

struct Task {
    spec: TaskSpec,
    runner: TaskRunner,
    invocation: u64,
    /// Release index: counts every period boundary, including releases
    /// that were dropped or shed (it is the job's `seq`).
    release_seq: u64,
    busy: bool,
    queued: bool,
    /// Invalidates stale Finish events after a preemption delay.
    finish_generation: u64,
    /// The currently scheduled finish time while busy.
    pending_finish: Option<Time>,
    /// True when the current execution occupies a pool slot (false for
    /// preemptive executions, which steal time instead).
    holds_slot: bool,
    /// The in-progress invocation's record, logged at finish so that
    /// preemption delays show up in the telemetry.
    pending_record: Option<FrameRecord>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Release,
    Finish,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Time,
    // Tie-break so simultaneous events process deterministically:
    // finishes before releases, then by task id.
    kind_order: u8,
    task: TaskId,
    kind: EventKind,
    /// For Finish events: must match the task's finish_generation or the
    /// event is stale (the task was delayed by a preemption).
    generation: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.kind_order, self.task, self.generation).cmp(&(
            other.time,
            other.kind_order,
            other.task,
            other.generation,
        ))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Pool {
    capacity: usize,
    in_use: usize,
    /// Released jobs waiting for a slot, in arrival order; the policy
    /// picks which one dispatches next.
    queue: VecDeque<ReadyJob>,
    running: Vec<TaskId>,
}

impl Pool {
    fn new(capacity: usize) -> Self {
        Self { capacity, in_use: 0, queue: VecDeque::new(), running: Vec::new() }
    }
}

/// The discrete-event engine.
///
/// # Examples
///
/// ```
/// use illixr_core::sim::{ExecOutcome, Resource, SimEngine, TaskSpec};
/// use illixr_core::telemetry::RecordLogger;
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let telemetry = Arc::new(RecordLogger::new());
/// let mut engine = SimEngine::new(4, 1, telemetry.clone());
/// engine.add_task(
///     TaskSpec {
///         name: "tick".into(),
///         resource: Resource::Cpu,
///         period: Duration::from_millis(10),
///         offset: Duration::ZERO,
///         deadline: Duration::from_millis(10),
///         drop_if_busy: true,
///         priority: 0,
///         preemptive: false,
///         preempt_latency: Duration::ZERO,
///         class: illixr_core::sched::PriorityClass::BestEffort,
///     },
///     Box::new(|_d| ExecOutcome { cost: Duration::from_millis(1), work_factor: 1.0, did_work: true }),
/// );
/// engine.run_for(Duration::from_millis(100));
/// assert_eq!(telemetry.stats("tick").unwrap().invocations, 10);
/// ```
pub struct SimEngine {
    clock: SimClock,
    tasks: Vec<Task>,
    cpu: Pool,
    gpu: Pool,
    remote: Pool,
    events: BinaryHeap<Reverse<Event>>,
    telemetry: std::sync::Arc<RecordLogger>,
    started: bool,
    tracer: Tracer,
    metrics: Metrics,
    /// Dispatch policy; defaults to [`RateMonotonic`][crate::sched::RateMonotonic],
    /// which reproduces the engine's historical static-priority FIFO.
    policy: Box<dyn Policy>,
    chains: ChainTracker,
    chain_outcomes: Vec<ChainOutcome>,
    /// Last degradation level emitted to the counter track.
    last_level: u32,
    /// Jobs shed by the policy's admission control.
    shed: u64,
}

impl SimEngine {
    /// Creates an engine with the given CPU core count and GPU slot count.
    ///
    /// # Panics
    ///
    /// Panics when either capacity is zero.
    pub fn new(
        cpu_cores: usize,
        gpu_slots: usize,
        telemetry: std::sync::Arc<RecordLogger>,
    ) -> Self {
        assert!(cpu_cores > 0 && gpu_slots > 0, "resource capacities must be positive");
        Self {
            clock: SimClock::new(),
            tasks: Vec::new(),
            cpu: Pool::new(cpu_cores),
            gpu: Pool::new(gpu_slots),
            // Edge compute defaults to one slot; placement-aware runs
            // size it with `set_remote_capacity`. Unused by default —
            // no task occupies it unless one is registered on
            // `Resource::Remote`.
            remote: Pool::new(1),
            events: BinaryHeap::new(),
            telemetry,
            started: false,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            policy: PolicyKind::RateMonotonic.build(),
            chains: ChainTracker::new(),
            chain_outcomes: Vec::new(),
            last_level: 0,
            shed: 0,
        }
    }

    /// Installs the dispatch policy. Call before the first `run_for`;
    /// the default is [`PolicyKind::RateMonotonic`].
    pub fn set_policy(&mut self, policy: Box<dyn Policy>) {
        self.policy = policy;
    }

    /// Sizes the [`Resource::Remote`] pool (edge-server compute
    /// slots). Defaults to 1; call before the first `run_for`.
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero.
    pub fn set_remote_capacity(&mut self, slots: usize) {
        assert!(slots > 0, "remote capacity must be positive");
        self.remote.capacity = slots;
    }

    /// Registers an end-to-end chain (head task first). Each tail
    /// completion emits one [`ChainOutcome`], recorded in
    /// [`chain_outcomes`](Self::chain_outcomes), fed back to the
    /// policy, and exported as a `chain.{name}` latency histogram.
    pub fn add_chain(&mut self, spec: ChainSpec) -> ChainId {
        self.chains.add(spec)
    }

    /// Every chain completion observed so far, in completion order.
    pub fn chain_outcomes(&self) -> &[ChainOutcome] {
        &self.chain_outcomes
    }

    /// The policy's current degradation level (0 for non-adaptive).
    pub fn degradation_level(&self) -> u32 {
        self.policy.level()
    }

    /// Jobs the policy's admission control shed (counted as drops in
    /// telemetry, tracked separately here).
    pub fn shed_jobs(&self) -> u64 {
        self.shed
    }

    /// The engine's virtual clock (share it with components that need to
    /// read "now").
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Installs observability handles: every completed invocation then
    /// records an execution span (plus a `{name}.wait` span when it
    /// queued) and `exec.{name}` / `response.{name}` histograms.
    pub fn set_obs(&mut self, tracer: Tracer, metrics: Metrics) {
        self.tracer = tracer;
        self.metrics = metrics;
    }

    /// Registers a periodic task; returns its id.
    pub fn add_task(&mut self, spec: TaskSpec, runner: TaskRunner) -> TaskId {
        let id = self.tasks.len();
        self.tasks.push(Task {
            spec,
            runner,
            invocation: 0,
            release_seq: 0,
            busy: false,
            queued: false,
            finish_generation: 0,
            pending_finish: None,
            holds_slot: false,
            pending_record: None,
        });
        id
    }

    /// Runs the simulation over the half-open window `[0, horizon)` of
    /// virtual time.
    ///
    /// May be called repeatedly to extend a run.
    pub fn run_for(&mut self, horizon: Duration) {
        let end = Time::ZERO + horizon;
        if !self.started {
            self.started = true;
            for id in 0..self.tasks.len() {
                let at = Time::ZERO + self.tasks[id].spec.offset;
                self.push_event(at, id, EventKind::Release);
            }
        }
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.time >= end {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked above");
            self.clock.advance_to(ev.time);
            match ev.kind {
                EventKind::Release => self.on_release(ev.task, ev.time),
                EventKind::Finish => {
                    // Skip finish events invalidated by a preemption delay.
                    if self.tasks[ev.task].finish_generation == ev.generation {
                        self.on_finish(ev.task, ev.time);
                    }
                }
            }
        }
        self.clock.advance_to(end);
    }

    fn push_event(&mut self, time: Time, task: TaskId, kind: EventKind) {
        self.push_event_gen(time, task, kind, 0);
    }

    fn push_event_gen(&mut self, time: Time, task: TaskId, kind: EventKind, generation: u64) {
        let kind_order = match kind {
            EventKind::Finish => 0,
            EventKind::Release => 1,
        };
        self.events.push(Reverse(Event { time, kind_order, task, kind, generation }));
    }

    fn on_release(&mut self, id: TaskId, now: Time) {
        // Schedule the next release first — periods are fixed.
        let next = now + self.tasks[id].spec.period;
        self.push_event(next, id, EventKind::Release);

        let task = &mut self.tasks[id];
        let job = ReadyJob {
            task: id,
            seq: task.release_seq,
            release_ns: now.as_nanos(),
            deadline_ns: now.as_nanos().saturating_add(task.spec.deadline.as_nanos() as u64),
            priority: task.spec.priority as i32,
            class: task.spec.class,
        };
        task.release_seq += 1;
        // Admission control: the adaptive governor sheds here (rate
        // halving, class dropping). A shed release is a drop, not a miss.
        if !self.policy.admit(&job) {
            self.shed += 1;
            let name = self.tasks[id].spec.name.clone();
            self.telemetry.log_drop(&name);
            return;
        }
        let task = &mut self.tasks[id];
        if (task.busy || task.queued) && task.spec.drop_if_busy {
            let name = task.spec.name.clone();
            self.telemetry.log_drop(&name);
            return;
        }
        if task.busy || task.queued {
            // Queue behind the running instance (rate is preserved but
            // latency accumulates). Used by components that must see every
            // input (e.g. the IMU integrator).
        }
        let resource = task.spec.resource;
        // Preemptive tasks never wait: if the resource is saturated they
        // execute immediately and push every running task's finish out by
        // their cost.
        let preempts = {
            let pool = match resource {
                Resource::Cpu => &self.cpu,
                Resource::Gpu => &self.gpu,
                Resource::Remote => &self.remote,
            };
            task.spec.preemptive && pool.in_use >= pool.capacity
        };
        if preempts {
            self.execute_preemptively(id, now);
            return;
        }
        let task = &mut self.tasks[id];
        task.queued = true;
        self.pool_mut(resource).queue.push_back(job);
        self.dispatch(resource, now);
    }

    /// Executes `id` immediately (after the preemption-granularity wait),
    /// delaying every running task on its resource by the execution cost
    /// (the preemptive GPU context).
    fn execute_preemptively(&mut self, id: TaskId, now: Time) {
        let release = now;
        // Wait for the running work to reach a preemption point.
        let start = now + self.tasks[id].spec.preempt_latency;
        self.chains.on_start(id, release.as_nanos(), start.as_nanos());
        let task = &mut self.tasks[id];
        let invocation = task.invocation;
        task.invocation += 1;
        let outcome = (task.runner)(Dispatch { release, start, invocation });
        if !outcome.did_work {
            self.chains.on_abort(id);
            return;
        }
        let scale = self.policy.cost_scale(self.tasks[id].spec.class);
        let cost = scale_cost(outcome.cost, scale);
        let end = start + cost;
        let deadline = release + self.tasks[id].spec.deadline;
        self.tasks[id].pending_record = Some(FrameRecord {
            release,
            start,
            end,
            cpu_time: cost,
            work_factor: outcome.work_factor,
            missed_deadline: end > deadline,
        });
        // The preemptive execution still serializes with itself: it is
        // busy until `end`, so an overrunning compositor drops releases
        // like any other component.
        {
            let task = &mut self.tasks[id];
            task.busy = true;
            task.holds_slot = false;
            task.finish_generation += 1;
            task.pending_finish = Some(end);
            let generation = task.finish_generation;
            self.push_event_gen(end, id, EventKind::Finish, generation);
        }
        // Delay the victims.
        let resource = self.tasks[id].spec.resource;
        let running: Vec<TaskId> = match resource {
            Resource::Cpu => self.cpu.running.clone(),
            Resource::Gpu => self.gpu.running.clone(),
            Resource::Remote => self.remote.running.clone(),
        };
        for victim in running {
            let t = &mut self.tasks[victim];
            if let Some(finish) = t.pending_finish {
                let delayed = finish + cost;
                t.finish_generation += 1;
                t.pending_finish = Some(delayed);
                let generation = t.finish_generation;
                self.push_event_gen(delayed, victim, EventKind::Finish, generation);
            }
        }
    }

    fn on_finish(&mut self, id: TaskId, now: Time) {
        let resource = self.tasks[id].spec.resource;
        let held_slot = self.tasks[id].holds_slot;
        self.tasks[id].busy = false;
        self.tasks[id].pending_finish = None;
        self.tasks[id].holds_slot = false;
        if let Some(mut record) = self.tasks[id].pending_record.take() {
            // The actual end time includes any preemption delays.
            record.end = now;
            record.missed_deadline = now > record.release + self.tasks[id].spec.deadline;
            let deadline_rel_ns = self.tasks[id].spec.deadline.as_nanos() as u64;
            let name = self.tasks[id].spec.name.clone();
            if self.tracer.is_enabled() {
                if record.start > record.release {
                    // Queueing delay gets its own track so it never
                    // overlaps the next invocation's execution slice.
                    self.tracer.record_span(
                        &format!("{name}.wait"),
                        "wait",
                        record.release.as_nanos(),
                        record.start.as_nanos(),
                    );
                }
                let lateness =
                    lateness_ns(now.as_nanos(), record.release.as_nanos(), deadline_rel_ns);
                self.tracer.record_span_args(
                    &name,
                    &name,
                    record.start.as_nanos(),
                    now.as_nanos(),
                    &[
                        ("work_factor", format!("{:.3}", record.work_factor)),
                        ("missed_deadline", record.missed_deadline.to_string()),
                        ("lateness_us", format!("{}", lateness / 1_000)),
                    ],
                );
            }
            if self.metrics.is_enabled() {
                self.metrics.record(&format!("exec.{name}"), now - record.start);
                self.metrics.record(&format!("response.{name}"), now - record.release);
                // Policy-comparable deadline accounting: lateness of
                // every job (0 when on time), and of misses alone.
                let lateness =
                    lateness_ns(now.as_nanos(), record.release.as_nanos(), deadline_rel_ns);
                self.metrics.record_ns("sched.lateness", lateness);
                if record.missed_deadline {
                    self.metrics.record_ns("sched.miss", lateness);
                }
            }
            self.telemetry.log(&name, record);
            self.note_chain_finish(id, now);
        }
        if held_slot {
            let pool = self.pool_mut(resource);
            pool.in_use -= 1;
            pool.running.retain(|&t| t != id);
        }
        self.dispatch(resource, now);
    }

    /// Propagates a completed invocation through the chain tracker,
    /// feeds outcomes back to the policy, and exports chain telemetry.
    fn note_chain_finish(&mut self, id: TaskId, now: Time) {
        let outcomes = self.chains.on_finish(id, now.as_nanos());
        for oc in &outcomes {
            self.policy.on_chain_outcome(oc);
            let chain_name = &self.chains.specs()[oc.chain].name;
            if self.metrics.is_enabled() {
                self.metrics.record_ns(&format!("chain.{chain_name}"), oc.latency_ns);
                if oc.missed {
                    self.metrics.record_ns(&format!("chain.{chain_name}.miss"), oc.latency_ns);
                }
            }
            if self.tracer.is_enabled() {
                self.tracer.record_span_args(
                    &format!("chain.{chain_name}"),
                    chain_name,
                    oc.origin_ns,
                    oc.end_ns,
                    &[("missed", oc.missed.to_string())],
                );
            }
        }
        // Surface governor level changes as a counter track so traces
        // show exactly when the degradation ladder moved.
        let level = self.policy.level();
        if level != self.last_level {
            self.last_level = level;
            if self.tracer.is_enabled() {
                self.tracer.counter("sched", "sched.level", now.as_nanos(), level as f64);
            }
        }
        self.chain_outcomes.extend(outcomes);
    }

    fn pool_mut(&mut self, r: Resource) -> &mut Pool {
        match r {
            Resource::Cpu => &mut self.cpu,
            Resource::Gpu => &mut self.gpu,
            Resource::Remote => &mut self.remote,
        }
    }

    fn dispatch(&mut self, resource: Resource, now: Time) {
        loop {
            // The policy picks which released job dispatches next; the
            // default rate-monotonic policy reproduces the historical
            // rule (highest static priority, FIFO within a priority).
            let job = {
                let Self { cpu, gpu, remote, policy, .. } = self;
                let pool = match resource {
                    Resource::Cpu => cpu,
                    Resource::Gpu => gpu,
                    Resource::Remote => remote,
                };
                if pool.in_use >= pool.capacity || pool.queue.is_empty() {
                    return;
                }
                let pos = policy.select(pool.queue.make_contiguous());
                pool.queue.remove(pos).expect("policy returned an in-range index")
            };
            let id = job.task;
            let pool = self.pool_mut(resource);
            pool.in_use += 1;
            pool.running.push(id);

            // The release this invocation serves is the one recorded at
            // enqueue time, so queueing delay counts toward lateness.
            let release = Time::from_nanos(job.release_ns);
            self.chains.on_start(id, job.release_ns, now.as_nanos());
            let task = &mut self.tasks[id];
            task.queued = false;
            task.busy = true;
            task.holds_slot = true;
            let invocation = task.invocation;
            task.invocation += 1;
            let dispatch = Dispatch { release, start: now, invocation };
            let outcome = (task.runner)(dispatch);
            let scale = self.policy.cost_scale(job.class);
            let cost = scale_cost(outcome.cost, scale);
            let end = now + cost;
            let deadline = release + self.tasks[id].spec.deadline;
            if outcome.did_work {
                self.tasks[id].pending_record = Some(FrameRecord {
                    release,
                    start: now,
                    end,
                    cpu_time: cost,
                    work_factor: outcome.work_factor,
                    missed_deadline: end > deadline,
                });
            } else {
                // A no-input invocation frees its slot immediately.
                self.chains.on_abort(id);
                let pool = self.pool_mut(resource);
                pool.in_use -= 1;
                pool.running.retain(|&t| t != id);
                self.tasks[id].busy = false;
                continue;
            }
            self.tasks[id].pending_finish = Some(end);
            let generation = self.tasks[id].finish_generation;
            self.push_event_gen(end, id, EventKind::Finish, generation);
        }
    }
}

/// Applies a policy cost multiplier (the governor's work-factor
/// shortcut); identity when the scale is exactly 1.0 so nominal runs
/// charge precisely the modeled cost.
fn scale_cost(cost: Duration, scale: f64) -> Duration {
    if scale == 1.0 {
        cost
    } else {
        Duration::from_nanos((cost.as_nanos() as f64 * scale).round() as u64)
    }
}

impl std::fmt::Debug for SimEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SimEngine({} tasks, {} cpu cores, {} gpu slots, t={})",
            self.tasks.len(),
            self.cpu.capacity,
            self.gpu.capacity,
            self.clock.now()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use std::sync::Arc;

    fn fixed_cost(ms: u64) -> TaskRunner {
        Box::new(move |_d| ExecOutcome {
            cost: Duration::from_millis(ms),
            work_factor: 1.0,
            did_work: true,
        })
    }

    fn spec(name: &str, resource: Resource, period_ms: u64, drop_if_busy: bool) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            resource,
            period: Duration::from_millis(period_ms),
            offset: Duration::ZERO,
            deadline: Duration::from_millis(period_ms),
            drop_if_busy,
            priority: 0,
            preemptive: false,
            preempt_latency: Duration::ZERO,
            class: PriorityClass::BestEffort,
        }
    }

    #[test]
    fn single_task_runs_at_its_period() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(2, 1, telemetry.clone());
        engine.add_task(spec("a", Resource::Cpu, 10, true), fixed_cost(2));
        engine.run_for(Duration::from_millis(95));
        let s = telemetry.stats("a").unwrap();
        assert_eq!(s.invocations, 10); // releases at 0,10,…,90
        assert_eq!(s.deadline_misses, 0);
        assert_eq!(s.drops, 0);
    }

    #[test]
    fn overloaded_task_drops_releases() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        // 15 ms of work every 10 ms: every other release must drop.
        engine.add_task(spec("slow", Resource::Cpu, 10, true), fixed_cost(15));
        engine.run_for(Duration::from_millis(200));
        let s = telemetry.stats("slow").unwrap();
        assert!(s.drops >= 5, "expected many drops, got {}", s.drops);
        assert!(s.deadline_misses > 0);
        // Achieved rate is ~1000/20 = 50 Hz… at 15ms cost with drops it's
        // one completion per 20 ms window.
        assert!(s.achieved_hz < 70.0);
    }

    #[test]
    fn cpu_contention_delays_lower_priority_work() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        // Two tasks on one core, each 6 ms every 10 ms: together they
        // need 12 ms per 10 ms — one of them must suffer.
        engine.add_task(spec("x", Resource::Cpu, 10, true), fixed_cost(6));
        engine.add_task(spec("y", Resource::Cpu, 10, true), fixed_cost(6));
        engine.run_for(Duration::from_millis(500));
        let sx = telemetry.stats("x").unwrap();
        let sy = telemetry.stats("y").unwrap();
        let total_drops = sx.drops + sy.drops;
        let total_misses = sx.deadline_misses + sy.deadline_misses;
        assert!(total_drops + total_misses > 10, "contention must cause drops or misses");
    }

    #[test]
    fn two_cores_remove_contention() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(2, 1, telemetry.clone());
        engine.add_task(spec("x", Resource::Cpu, 10, true), fixed_cost(6));
        engine.add_task(spec("y", Resource::Cpu, 10, true), fixed_cost(6));
        engine.run_for(Duration::from_millis(500));
        assert_eq!(telemetry.stats("x").unwrap().deadline_misses, 0);
        assert_eq!(telemetry.stats("y").unwrap().deadline_misses, 0);
    }

    #[test]
    fn remote_pool_does_not_contend_with_the_device() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        engine.set_remote_capacity(1);
        // A device-saturating CPU task and an equally heavy edge task:
        // neither may delay the other.
        engine.add_task(spec("cpu", Resource::Cpu, 10, true), fixed_cost(9));
        engine.add_task(spec("edge", Resource::Remote, 10, true), fixed_cost(9));
        engine.run_for(Duration::from_millis(300));
        assert_eq!(telemetry.stats("cpu").unwrap().deadline_misses, 0);
        assert_eq!(telemetry.stats("edge").unwrap().deadline_misses, 0);
    }

    #[test]
    fn gpu_and_cpu_tasks_do_not_contend() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        engine.add_task(spec("cpu", Resource::Cpu, 10, true), fixed_cost(9));
        engine.add_task(spec("gpu", Resource::Gpu, 10, true), fixed_cost(9));
        engine.run_for(Duration::from_millis(300));
        assert_eq!(telemetry.stats("cpu").unwrap().deadline_misses, 0);
        assert_eq!(telemetry.stats("gpu").unwrap().deadline_misses, 0);
    }

    #[test]
    fn offset_shifts_first_release() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        engine.add_task(
            TaskSpec {
                name: "late".into(),
                resource: Resource::Cpu,
                period: Duration::from_millis(10),
                offset: Duration::from_millis(7),
                deadline: Duration::from_millis(10),
                drop_if_busy: true,
                priority: 0,
                preemptive: false,
                preempt_latency: Duration::ZERO,
                class: PriorityClass::BestEffort,
            },
            fixed_cost(1),
        );
        engine.run_for(Duration::from_millis(50));
        let records = telemetry.records("late");
        assert_eq!(records[0].release, Time::from_millis(7));
        assert_eq!(records[1].release, Time::from_millis(17));
    }

    #[test]
    fn no_input_invocations_are_not_logged() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        let mut count = 0;
        engine.add_task(
            spec("sometimes", Resource::Cpu, 10, true),
            Box::new(move |_d| {
                count += 1;
                ExecOutcome {
                    cost: Duration::from_millis(1),
                    work_factor: 1.0,
                    did_work: count % 2 == 0,
                }
            }),
        );
        engine.run_for(Duration::from_millis(100));
        let s = telemetry.stats("sometimes").unwrap();
        assert_eq!(s.invocations, 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let telemetry = Arc::new(RecordLogger::new());
            let mut engine = SimEngine::new(2, 1, telemetry.clone());
            engine.add_task(spec("a", Resource::Cpu, 7, true), fixed_cost(3));
            engine.add_task(spec("b", Resource::Cpu, 11, true), fixed_cost(5));
            engine.add_task(spec("c", Resource::Gpu, 13, true), fixed_cost(4));
            engine.run_for(Duration::from_millis(700));
            (telemetry.records("a"), telemetry.records("b"), telemetry.records("c"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn high_priority_task_jumps_the_queue() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        // A hog that wants 9 of every 10 ms, and a small high-priority
        // task. Without priority the small task often waits behind the
        // hog's queued releases; with priority it dispatches first
        // whenever the core frees up.
        engine.add_task(spec("hog", Resource::Cpu, 10, true), fixed_cost(9));
        engine.add_task(
            TaskSpec {
                name: "urgent".into(),
                resource: Resource::Cpu,
                period: Duration::from_millis(10),
                offset: Duration::from_millis(1),
                deadline: Duration::from_millis(10),
                drop_if_busy: true,
                priority: 10,
                preemptive: false,
                preempt_latency: Duration::ZERO,
                class: PriorityClass::Critical,
            },
            fixed_cost(1),
        );
        engine.run_for(Duration::from_millis(500));
        let urgent = telemetry.stats("urgent").unwrap();
        assert_eq!(urgent.deadline_misses, 0, "urgent task must always make its deadline");
        assert!(urgent.invocations >= 45, "urgent ran only {} times", urgent.invocations);
    }

    #[test]
    fn preemptive_task_executes_immediately_and_delays_victim() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        // A 50 ms hog released at t=0 on a 100 ms period.
        engine.add_task(spec("hog", Resource::Cpu, 100, true), fixed_cost(50));
        // A preemptive 5 ms task released at t=10.
        engine.add_task(
            TaskSpec {
                name: "warp".into(),
                resource: Resource::Cpu,
                period: Duration::from_millis(100),
                offset: Duration::from_millis(10),
                deadline: Duration::from_millis(100),
                drop_if_busy: true,
                priority: 10,
                preemptive: true,
                preempt_latency: Duration::ZERO,
                class: PriorityClass::Critical,
            },
            fixed_cost(5),
        );
        engine.run_for(Duration::from_millis(100));
        let warp = telemetry.records("warp");
        assert_eq!(warp.len(), 1);
        // The warp started at its release (no queueing).
        assert_eq!(warp[0].start, Time::from_millis(10));
        assert_eq!(warp[0].end, Time::from_millis(15));
        // The hog's finish was pushed from 50 to 55 ms.
        let hog = telemetry.records("hog");
        assert_eq!(hog[0].end, Time::from_millis(55));
    }

    #[test]
    fn overrunning_preemptive_task_still_drops_releases() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        engine.add_task(spec("hog", Resource::Cpu, 10, true), fixed_cost(9));
        // A preemptive task whose cost (15 ms) exceeds its period (10 ms):
        // every other release must drop.
        engine.add_task(
            TaskSpec {
                name: "slowwarp".into(),
                resource: Resource::Cpu,
                period: Duration::from_millis(10),
                offset: Duration::from_millis(1),
                deadline: Duration::from_millis(10),
                drop_if_busy: true,
                priority: 10,
                preemptive: true,
                preempt_latency: Duration::ZERO,
                class: PriorityClass::Critical,
            },
            fixed_cost(15),
        );
        engine.run_for(Duration::from_millis(400));
        let s = telemetry.stats("slowwarp").unwrap();
        assert!(s.drops >= 10, "expected drops, got {}", s.drops);
        assert!(s.achieved_hz < 75.0, "rate {}", s.achieved_hz);
    }

    #[test]
    fn preemption_is_deterministic() {
        let run = || {
            let telemetry = Arc::new(RecordLogger::new());
            let mut engine = SimEngine::new(1, 1, telemetry.clone());
            engine.add_task(spec("a", Resource::Gpu, 13, true), fixed_cost(11));
            engine.add_task(
                TaskSpec {
                    name: "p".into(),
                    resource: Resource::Gpu,
                    period: Duration::from_millis(7),
                    offset: Duration::from_millis(2),
                    deadline: Duration::from_millis(7),
                    drop_if_busy: true,
                    priority: 9,
                    preemptive: true,
                    preempt_latency: Duration::ZERO,
                    class: PriorityClass::Critical,
                },
                fixed_cost(2),
            );
            engine.run_for(Duration::from_millis(600));
            (telemetry.records("a"), telemetry.records("p"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clock_reaches_horizon() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry);
        let clock = engine.clock();
        engine.run_for(Duration::from_millis(123));
        assert_eq!(clock.now(), Time::from_millis(123));
    }

    /// An overloaded EDF taskset must miss exactly the analytically
    /// predicted jobs. One core, A = (period 10 ms, cost 8 ms) with
    /// drop-if-busy, B = (period 20 ms, cost 8 ms): utilization is
    /// 1.2, and the schedule settles into a 40 ms cycle in which the
    /// A job released at 40k+10 finishes 4 ms late, the A release at
    /// 40k+20 drops (A is still running), and B never misses — the
    /// B and A jobs that end exactly at their deadlines are *hits*,
    /// because a miss is `end > release + deadline`, strictly.
    #[test]
    fn edf_overload_misses_exactly_the_predicted_jobs() {
        let telemetry = Arc::new(RecordLogger::new());
        let mut engine = SimEngine::new(1, 1, telemetry.clone());
        engine.set_policy(PolicyKind::Edf.build());
        engine.add_task(spec("a", Resource::Cpu, 10, true), fixed_cost(8));
        engine.add_task(spec("b", Resource::Cpu, 20, true), fixed_cost(8));
        engine.run_for(Duration::from_millis(200));
        let sa = telemetry.stats("a").unwrap();
        let sb = telemetry.stats("b").unwrap();
        assert_eq!(sa.deadline_misses, 5, "A misses once per 40 ms cycle");
        assert_eq!(sa.drops, 5, "A drops once per 40 ms cycle");
        assert_eq!(sb.deadline_misses, 0, "B always meets its 20 ms deadline");
        assert_eq!(sb.drops, 0);
        // The missing jobs are exactly the releases at 40k+10, each
        // finishing 4 ms past its deadline.
        let late: Vec<(u64, u64)> = telemetry
            .records("a")
            .iter()
            .filter(|r| r.missed_deadline)
            .map(|r| (r.release.as_nanos() / 1_000_000, r.end.as_nanos() / 1_000_000))
            .collect();
        assert_eq!(late, vec![(10, 24), (50, 64), (90, 104), (130, 144), (170, 184)]);
    }

    /// Where rate-monotonic picks the queued job with the highest
    /// static priority, EDF picks the one with the earliest absolute
    /// deadline — observable when both wait behind the same hog.
    #[test]
    fn edf_prefers_earlier_deadline_over_static_priority() {
        let run = |kind: PolicyKind| {
            let telemetry = Arc::new(RecordLogger::new());
            let mut engine = SimEngine::new(1, 1, telemetry.clone());
            engine.set_policy(kind.build());
            // Hog holds the core 0..10 ms.
            engine.add_task(spec("hog", Resource::Cpu, 100, true), fixed_cost(10));
            // "lazy" has high priority but a lax 90 ms deadline.
            engine.add_task(
                TaskSpec {
                    name: "lazy".into(),
                    resource: Resource::Cpu,
                    period: Duration::from_millis(100),
                    offset: Duration::from_millis(1),
                    deadline: Duration::from_millis(90),
                    drop_if_busy: true,
                    priority: 5,
                    preemptive: false,
                    preempt_latency: Duration::ZERO,
                    class: PriorityClass::BestEffort,
                },
                fixed_cost(3),
            );
            // "tight" has low priority but a 13 ms deadline.
            engine.add_task(
                TaskSpec {
                    name: "tight".into(),
                    resource: Resource::Cpu,
                    period: Duration::from_millis(100),
                    offset: Duration::from_millis(2),
                    deadline: Duration::from_millis(13),
                    drop_if_busy: true,
                    priority: 0,
                    preemptive: false,
                    preempt_latency: Duration::ZERO,
                    class: PriorityClass::BestEffort,
                },
                fixed_cost(3),
            );
            engine.run_for(Duration::from_millis(100));
            (
                telemetry.records("lazy")[0].start,
                telemetry.records("tight")[0].start,
                telemetry.stats("tight").unwrap().deadline_misses,
            )
        };
        let (rm_lazy, rm_tight, rm_tight_misses) = run(PolicyKind::RateMonotonic);
        assert_eq!(rm_lazy, Time::from_millis(10), "RM runs the high-priority job first");
        assert_eq!(rm_tight, Time::from_millis(13));
        assert_eq!(
            rm_tight_misses, 1,
            "RM blows tight's deadline: ends at 16 ms, deadline 2+13 = 15 ms"
        );
        let (edf_lazy, edf_tight, edf_tight_misses) = run(PolicyKind::Edf);
        assert_eq!(edf_tight, Time::from_millis(10), "EDF runs the tight-deadline job first");
        assert_eq!(edf_lazy, Time::from_millis(13));
        assert_eq!(edf_tight_misses, 0);
    }

    /// The governor escalates under sustained chain misses, sheds
    /// perception-class releases, and thereby lets the critical tail
    /// meet its deadline again — the graceful-degradation contract.
    #[test]
    fn adaptive_governor_sheds_load_until_the_chain_recovers() {
        let run = |kind: PolicyKind| {
            let telemetry = Arc::new(RecordLogger::new());
            let mut engine = SimEngine::new(1, 1, telemetry.clone());
            engine.set_policy(kind.build());
            // A perception hog that alone nearly saturates the core …
            let hog = engine.add_task(
                TaskSpec {
                    name: "hog".into(),
                    resource: Resource::Cpu,
                    period: Duration::from_millis(10),
                    offset: Duration::ZERO,
                    deadline: Duration::from_millis(10),
                    drop_if_busy: true,
                    priority: 0,
                    preemptive: false,
                    preempt_latency: Duration::ZERO,
                    class: PriorityClass::Perception,
                },
                fixed_cost(9),
            );
            let _ = hog;
            // … plus a critical 5 ms-period task forming a one-stage
            // chain with a tight end-to-end deadline.
            let tail = engine.add_task(
                TaskSpec {
                    name: "tail".into(),
                    resource: Resource::Cpu,
                    period: Duration::from_millis(5),
                    offset: Duration::from_millis(1),
                    deadline: Duration::from_millis(5),
                    drop_if_busy: true,
                    priority: 3,
                    preemptive: false,
                    preempt_latency: Duration::ZERO,
                    class: PriorityClass::Critical,
                },
                fixed_cost(1),
            );
            engine.add_chain(ChainSpec {
                name: "c".into(),
                members: vec![tail],
                deadline_ns: 4_000_000,
            });
            engine.run_for(Duration::from_millis(2_000));
            let missed = engine.chain_outcomes().iter().filter(|o| o.missed).count();
            (missed, engine.chain_outcomes().len(), engine.shed_jobs(), engine.degradation_level())
        };
        let (edf_missed, edf_total, edf_shed, edf_level) = run(PolicyKind::Edf);
        let (gov_missed, gov_total, gov_shed, _gov_level) = run(PolicyKind::Adaptive);
        assert_eq!(edf_shed, 0);
        assert_eq!(edf_level, 0);
        assert!(edf_total > 100 && gov_total > 100, "chain must complete many times");
        assert!(gov_shed > 0, "governor must shed perception releases");
        let edf_rate = edf_missed as f64 / edf_total as f64;
        let gov_rate = gov_missed as f64 / gov_total as f64;
        assert!(
            gov_rate < edf_rate / 2.0,
            "governor must at least halve the chain miss rate (edf {edf_rate:.3}, governor {gov_rate:.3})"
        );
    }

    #[test]
    fn governor_runs_are_deterministic() {
        let run = || {
            let telemetry = Arc::new(RecordLogger::new());
            let mut engine = SimEngine::new(1, 1, telemetry.clone());
            engine.set_policy(PolicyKind::Adaptive.build());
            let a = engine.add_task(spec("a", Resource::Cpu, 7, true), fixed_cost(5));
            let mut b_spec = spec("b", Resource::Cpu, 11, true);
            b_spec.class = PriorityClass::Perception;
            engine.add_task(b_spec, fixed_cost(6));
            engine.add_chain(ChainSpec {
                name: "c".into(),
                members: vec![a],
                deadline_ns: 6_000_000,
            });
            engine.run_for(Duration::from_millis(800));
            (
                telemetry.records("a"),
                telemetry.records("b"),
                engine.chain_outcomes().to_vec(),
                engine.shed_jobs(),
            )
        };
        assert_eq!(run(), run());
    }
}
