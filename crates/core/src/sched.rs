//! Glue onto the `illixr-sched` scheduling layer.
//!
//! Like [`crate::obs`], this module re-exports a below-core crate so
//! the rest of the workspace needs no direct `illixr-sched`
//! dependency: the sim engine embeds a [`Policy`] in its dispatch
//! loop, the threadloop's worker pool drains a [`JobQueue`], and the
//! experiment runner selects a [`PolicyKind`] from config.
//!
//! `illixr-sched` keeps time as raw `u64` nanoseconds; the runtime
//! converts at the boundary with [`crate::time::Time::as_nanos`].

pub use illixr_sched::chain::{ChainId, ChainOutcome, ChainSpec, ChainTracker};
pub use illixr_sched::governor::{AdaptiveGovernor, GovernorConfig};
pub use illixr_sched::live::JobQueue;
pub use illixr_sched::place::{
    CutAssignment, Migration, PlacementConfig, PlacementController, PlacementPlan, Side,
};
pub use illixr_sched::policy::{Edf, Policy, PolicyKind, RateMonotonic};
pub use illixr_sched::task::{is_miss, lateness_ns, release_ns, PriorityClass, ReadyJob};
