//! Glue onto the `illixr-fault` fault-injection layer.
//!
//! Like [`crate::obs`] and [`crate::sched`], this module re-exports a
//! below-core crate so the rest of the workspace needs no direct
//! `illixr-fault` dependency: sensor plugins consult a
//! [`SensorFaults`] view, the offload bridges and the server's shared
//! link consult a [`LinkFaults`] view, and the supervised threadloops
//! ask the plan for scheduled crashes.
//!
//! `illixr-fault` keeps time as raw `u64` nanoseconds; the runtime
//! converts at the boundary with [`crate::time::Time::as_nanos`]. A
//! [`FaultPlan::quiet`] plan (the default everywhere) is a guaranteed
//! no-op: every view returns "no fault" without hashing, so unfaulted
//! runs are bit-identical to the pre-fault-injection runtime.

pub use illixr_fault::plan::{FaultKind, FaultPlan, FaultWindow, StochasticRates, NS_PER_SEC};
pub use illixr_fault::views::{LinkFaults, SensorFaults};
