//! The supervisor: crash containment and liveness for the live runtime.
//!
//! The paper's runtime (like most research prototypes) assumes plugins
//! never fail; one panicking component kills its thread silently and
//! the rest of the pipeline starves. The supervisor closes that gap
//! with a small state machine per plugin:
//!
//! ```text
//!            panic                 panic (budget left)
//! Running ───────────▶ Restarting ───────────▶ Restarting (backoff × factor)
//!    ▲                     │  successful iterate      │ budget exhausted
//!    │ watchdog deadline   ▼                          ▼
//! Degraded ◀─────────── Running                     Failed
//! ```
//!
//! * **Panic containment** — threadloops run `iterate` under
//!   `catch_unwind`; a panic is reported here and answered with either
//!   a restart delay (exponential backoff, bounded retries) or "give
//!   up" ([`PluginHealth::Failed`]).
//! * **Recovery accounting** — the first successful iteration after a
//!   restart closes the incident; the panic→recovery latency is
//!   recorded and exposed for the `supervisor.recovery` histogram.
//! * **Stale-stream watchdog** — plugins report progress on every
//!   productive iteration; [`Supervisor::scan_stale`] marks any plugin
//!   silent past the deadline [`PluginHealth::Degraded`] and fires the
//!   escalation hook (wired to [`crate::sched::JobQueue::escalate`] —
//!   the adaptive governor's degradation ladder) exactly once per
//!   incident.
//!
//! All timestamps are runtime-clock nanoseconds, so the same machinery
//! works under the wall clock (live threadloops) and the simulated
//! clock (the experiment runner's crash modeling).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Restart/watchdog tuning for supervised plugins.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SupervisionPolicy {
    /// Restarts allowed per plugin before it is declared failed.
    pub max_restarts: u32,
    /// Delay before the first restart.
    pub backoff_initial: Duration,
    /// Multiplier applied to the delay after each successive panic.
    pub backoff_factor: f64,
    /// Ceiling on the restart delay.
    pub backoff_max: Duration,
    /// Stale-stream deadline: a plugin with no productive iteration for
    /// this long is marked degraded (None disables the watchdog).
    pub watchdog_deadline: Option<Duration>,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff_initial: Duration::from_millis(10),
            backoff_factor: 2.0,
            backoff_max: Duration::from_secs(1),
            watchdog_deadline: None,
        }
    }
}

impl SupervisionPolicy {
    /// No restarts, no watchdog: a panic kills the plugin (but is still
    /// contained and counted instead of silently unwinding the thread).
    pub fn disabled() -> Self {
        Self { max_restarts: 0, watchdog_deadline: None, ..Self::default() }
    }

    /// Default restart policy plus a stale-stream watchdog deadline.
    pub fn with_watchdog(deadline: Duration) -> Self {
        Self { watchdog_deadline: Some(deadline), ..Self::default() }
    }

    /// The restart delay before attempt `attempt` (1-based). Saturates
    /// at [`SupervisionPolicy::backoff_max`] for any attempt number —
    /// the exponential is clamped before constructing a `Duration`, so
    /// arbitrarily late attempts cannot overflow.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(i32::MAX as u32) as i32;
        let secs = self.backoff_initial.as_secs_f64() * self.backoff_factor.powi(exp);
        if !secs.is_finite() || secs >= self.backoff_max.as_secs_f64() {
            return self.backoff_max;
        }
        Duration::from_secs_f64(secs).min(self.backoff_max)
    }

    /// Upper bound on total restart delay across the whole budget —
    /// what "restarted within the backoff budget" means in tests.
    pub fn backoff_budget(&self) -> Duration {
        (1..=self.max_restarts.max(1)).map(|a| self.backoff(a)).sum()
    }
}

/// A supervised plugin's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PluginHealth {
    /// Iterating normally.
    Running,
    /// Panicked; waiting out the backoff before the next restart.
    Restarting,
    /// The watchdog declared it stale (no productive iteration within
    /// the deadline). Cleared by the next productive iteration.
    Degraded,
    /// Restart budget exhausted; the plugin will not run again.
    Failed,
}

#[derive(Clone, Debug, Default)]
struct PluginRecord {
    health: Option<PluginHealth>,
    panics: u32,
    restarts: u32,
    degraded_incidents: u32,
    last_progress_ns: u64,
    /// Set while an incident is open: when the triggering panic fired.
    incident_open_ns: Option<u64>,
    recovery_ns: Vec<u64>,
}

/// Aggregate supervision outcome for one plugin.
#[derive(Clone, Debug, PartialEq)]
pub struct PluginReport {
    /// Plugin name.
    pub name: String,
    /// Final lifecycle state.
    pub health: PluginHealth,
    /// Panics contained.
    pub panics: u32,
    /// Restarts performed.
    pub restarts: u32,
    /// Times the watchdog declared the plugin stale.
    pub degraded_incidents: u32,
    /// Panic→first-successful-iteration latencies, nanoseconds.
    pub recovery_ns: Vec<u64>,
}

/// Hook invoked with a plugin name when the watchdog degrades it.
type EscalationHook = Box<dyn Fn(&str) + Send>;

struct State {
    plugins: HashMap<String, PluginRecord>,
    escalation: Option<EscalationHook>,
}

/// Shared crash-containment and liveness tracker. One per runtime
/// context; threadloops consult it around every iteration.
pub struct Supervisor {
    enabled: bool,
    policy: SupervisionPolicy,
    state: Mutex<State>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Supervisor(enabled={}, {} plugins)",
            self.enabled,
            self.state.lock().plugins.len()
        )
    }
}

impl Supervisor {
    /// A supervisor enforcing `policy`.
    pub fn new(policy: SupervisionPolicy) -> Arc<Self> {
        Arc::new(Self {
            enabled: true,
            policy,
            state: Mutex::new(State { plugins: HashMap::new(), escalation: None }),
        })
    }

    /// The historical behaviour: panics are still contained (the thread
    /// must not die holding runtime state) but nothing restarts and the
    /// watchdog never fires.
    pub fn disabled() -> Arc<Self> {
        Arc::new(Self {
            enabled: false,
            policy: SupervisionPolicy::disabled(),
            state: Mutex::new(State { plugins: HashMap::new(), escalation: None }),
        })
    }

    /// False for [`Supervisor::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The active policy.
    pub fn policy(&self) -> SupervisionPolicy {
        self.policy
    }

    /// Installs the watchdog's escalation hook (e.g. the worker pool's
    /// `JobQueue::escalate`), replacing any previous hook.
    pub fn set_escalation(&self, hook: impl Fn(&str) + Send + 'static) {
        self.state.lock().escalation = Some(Box::new(hook));
    }

    /// Registers `plugin` as running as of `now_ns`. Idempotent.
    pub fn register(&self, plugin: &str, now_ns: u64) {
        let mut state = self.state.lock();
        let rec = state.plugins.entry(plugin.to_owned()).or_default();
        if rec.health.is_none() {
            rec.health = Some(PluginHealth::Running);
            rec.last_progress_ns = now_ns;
        }
    }

    /// Reports a contained panic at `now_ns`. Returns the backoff to
    /// wait before restarting, or `None` when the restart budget is
    /// exhausted (the plugin transitions to [`PluginHealth::Failed`]).
    pub fn on_panic(&self, plugin: &str, now_ns: u64) -> Option<Duration> {
        let mut state = self.state.lock();
        let rec = state.plugins.entry(plugin.to_owned()).or_default();
        rec.panics += 1;
        rec.incident_open_ns.get_or_insert(now_ns);
        if !self.enabled || rec.restarts >= self.policy.max_restarts {
            rec.health = Some(PluginHealth::Failed);
            return None;
        }
        rec.restarts += 1;
        rec.health = Some(PluginHealth::Restarting);
        Some(self.policy.backoff(rec.restarts))
    }

    /// Reports a productive iteration at `now_ns`: clears any open
    /// incident (returning its panic→recovery latency) and feeds the
    /// stale-stream watchdog.
    pub fn note_progress(&self, plugin: &str, now_ns: u64) -> Option<u64> {
        let mut state = self.state.lock();
        let rec = state.plugins.entry(plugin.to_owned()).or_default();
        rec.last_progress_ns = now_ns;
        if rec.health != Some(PluginHealth::Failed) {
            rec.health = Some(PluginHealth::Running);
        }
        rec.incident_open_ns.take().map(|opened| {
            let recovery = now_ns.saturating_sub(opened);
            rec.recovery_ns.push(recovery);
            recovery
        })
    }

    /// Watchdog sweep at `now_ns`: every registered, running plugin
    /// with no productive iteration for longer than the watchdog
    /// deadline is marked [`PluginHealth::Degraded`] and the escalation
    /// hook fires once per incident. Returns the names degraded by
    /// *this* sweep.
    pub fn scan_stale(&self, now_ns: u64) -> Vec<String> {
        let Some(deadline) = self.policy.watchdog_deadline else {
            return Vec::new();
        };
        if !self.enabled {
            return Vec::new();
        }
        let deadline_ns = deadline.as_nanos() as u64;
        let mut state = self.state.lock();
        let mut newly_degraded = Vec::new();
        for (name, rec) in state.plugins.iter_mut() {
            if rec.health == Some(PluginHealth::Running)
                && now_ns.saturating_sub(rec.last_progress_ns) > deadline_ns
            {
                rec.health = Some(PluginHealth::Degraded);
                rec.degraded_incidents += 1;
                newly_degraded.push(name.clone());
            }
        }
        if let Some(hook) = &state.escalation {
            for name in &newly_degraded {
                hook(name);
            }
        }
        newly_degraded
    }

    /// Current health of `plugin` (None when never registered).
    pub fn health(&self, plugin: &str) -> Option<PluginHealth> {
        self.state.lock().plugins.get(plugin).and_then(|r| r.health)
    }

    /// Per-plugin supervision outcomes, sorted by name for
    /// deterministic artifacts.
    pub fn report(&self) -> Vec<PluginReport> {
        let state = self.state.lock();
        let mut out: Vec<PluginReport> = state
            .plugins
            .iter()
            .map(|(name, r)| PluginReport {
                name: name.clone(),
                health: r.health.unwrap_or(PluginHealth::Running),
                panics: r.panics,
                restarts: r.restarts,
                degraded_incidents: r.degraded_incidents,
                recovery_ns: r.recovery_ns.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Total panics contained across all plugins.
    pub fn total_panics(&self) -> u32 {
        self.state.lock().plugins.values().map(|r| r.panics).sum()
    }

    /// All recorded panic→recovery latencies, in occurrence order per
    /// plugin (plugins sorted by name).
    pub fn recovery_times_ns(&self) -> Vec<u64> {
        self.report().into_iter().flat_map(|r| r.recovery_ns).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = SupervisionPolicy {
            backoff_initial: Duration::from_millis(10),
            backoff_factor: 2.0,
            backoff_max: Duration::from_millis(35),
            ..SupervisionPolicy::default()
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(35), "capped");
        assert_eq!(
            SupervisionPolicy::default().backoff_budget(),
            Duration::from_millis(10 + 20 + 40)
        );
    }

    #[test]
    fn panic_restart_recovery_cycle() {
        let sup = Supervisor::new(SupervisionPolicy::default());
        sup.register("vio", 0);
        assert_eq!(sup.health("vio"), Some(PluginHealth::Running));
        let backoff = sup.on_panic("vio", 1_000).expect("first restart granted");
        assert_eq!(backoff, Duration::from_millis(10));
        assert_eq!(sup.health("vio"), Some(PluginHealth::Restarting));
        let recovery = sup.note_progress("vio", 12_000_000).expect("incident closes");
        assert_eq!(recovery, 12_000_000 - 1_000);
        assert_eq!(sup.health("vio"), Some(PluginHealth::Running));
        assert_eq!(sup.recovery_times_ns(), vec![11_999_000]);
    }

    #[test]
    fn restart_budget_exhausts_to_failed() {
        let sup = Supervisor::new(SupervisionPolicy { max_restarts: 2, ..Default::default() });
        sup.register("app", 0);
        assert!(sup.on_panic("app", 10).is_some());
        assert!(sup.on_panic("app", 20).is_some());
        assert!(sup.on_panic("app", 30).is_none(), "budget exhausted");
        assert_eq!(sup.health("app"), Some(PluginHealth::Failed));
        assert_eq!(sup.report()[0].panics, 3);
        assert_eq!(sup.report()[0].restarts, 2);
        // A failed plugin stays failed even if something reports progress.
        sup.note_progress("app", 40);
        assert_eq!(sup.health("app"), Some(PluginHealth::Failed));
    }

    #[test]
    fn disabled_supervisor_contains_but_never_restarts() {
        let sup = Supervisor::disabled();
        sup.register("imu", 0);
        assert!(sup.on_panic("imu", 5).is_none());
        assert_eq!(sup.health("imu"), Some(PluginHealth::Failed));
        assert_eq!(sup.total_panics(), 1);
        assert!(sup.scan_stale(u64::MAX).is_empty());
    }

    #[test]
    fn degraded_plugin_fails_when_budget_is_already_exhausted() {
        // Edge transition: a plugin the watchdog marked Degraded must
        // still land in Failed on its next panic once the restart
        // budget is gone — degradation must not reset or bypass the
        // budget accounting.
        let sup = Supervisor::new(SupervisionPolicy {
            max_restarts: 1,
            watchdog_deadline: Some(Duration::from_millis(1)),
            ..Default::default()
        });
        sup.register("render", 0);
        assert!(sup.on_panic("render", 10).is_some(), "budget of one restart");
        sup.note_progress("render", 20);
        // Silence past the deadline: Running -> Degraded.
        assert_eq!(sup.scan_stale(10_000_000), vec!["render".to_owned()]);
        assert_eq!(sup.health("render"), Some(PluginHealth::Degraded));
        // Budget exhausted: the panic out of Degraded is terminal.
        assert!(sup.on_panic("render", 10_000_100).is_none());
        assert_eq!(sup.health("render"), Some(PluginHealth::Failed));
        // Failed is absorbing: neither progress nor the watchdog moves it.
        sup.note_progress("render", 10_000_200);
        assert_eq!(sup.health("render"), Some(PluginHealth::Failed));
        assert!(sup.scan_stale(u64::MAX).is_empty(), "failed plugins are not watchdog targets");
        let report = sup.report();
        assert_eq!(report[0].restarts, 1);
        assert_eq!(report[0].panics, 2);
        assert_eq!(report[0].degraded_incidents, 1);
    }

    #[test]
    fn backoff_saturates_at_cap_for_every_attempt_past_it() {
        // Edge: once the exponential schedule crosses backoff_max,
        // every later attempt returns exactly the cap — no overflow,
        // no drift, including attempt numbers far past the budget.
        let p = SupervisionPolicy {
            backoff_initial: Duration::from_millis(10),
            backoff_factor: 2.0,
            backoff_max: Duration::from_millis(100),
            max_restarts: u32::MAX,
            ..SupervisionPolicy::default()
        };
        // 10, 20, 40, 80 then capped forever.
        assert_eq!(p.backoff(4), Duration::from_millis(80));
        for attempt in [5, 6, 10, 31, 1_000, u32::MAX] {
            assert_eq!(p.backoff(attempt), p.backoff_max, "attempt {attempt} must saturate");
        }
        // Attempt 0 is treated like attempt 1 (saturating_sub), not a
        // zero-duration or panicking edge.
        assert_eq!(p.backoff(0), Duration::from_millis(10));

        // The live path agrees with the schedule at saturation.
        let sup = Supervisor::new(p);
        sup.register("vio", 0);
        for i in 0..8 {
            let delay = sup.on_panic("vio", i).expect("unbounded budget");
            assert!(delay <= p.backoff_max);
        }
        assert_eq!(sup.on_panic("vio", 99).unwrap(), p.backoff_max, "saturated backoff");
    }

    #[test]
    fn watchdog_escalates_exactly_once_per_stale_window() {
        // Edge: repeated sweeps inside one stale window fire the hook
        // once; each progress-then-silence cycle opens a fresh window
        // that fires exactly once more.
        let sup = Supervisor::new(SupervisionPolicy::with_watchdog(Duration::from_millis(5)));
        let fired = Arc::new(Mutex::new(0u32));
        {
            let fired = fired.clone();
            sup.set_escalation(move |_| *fired.lock() += 1);
        }
        sup.register("camera", 0);
        for window in 1..=3u64 {
            let base = window * 20_000_000;
            // Many sweeps within the same window: one escalation total.
            assert_eq!(sup.scan_stale(base).len(), 1, "window {window} opens");
            for extra in 1..=4 {
                assert!(sup.scan_stale(base + extra).is_empty(), "no re-fire within a window");
            }
            assert_eq!(*fired.lock(), window as u32, "exactly one escalation per window");
            assert_eq!(
                sup.report()[0].degraded_incidents,
                window as u32,
                "incident count tracks windows, not sweeps"
            );
            // Progress closes the window; the next silence is a new one.
            sup.note_progress("camera", base + 10);
            assert_eq!(sup.health("camera"), Some(PluginHealth::Running));
        }
    }

    #[test]
    fn watchdog_degrades_stale_plugins_and_escalates_once() {
        let sup = Supervisor::new(SupervisionPolicy::with_watchdog(Duration::from_millis(5)));
        let fired = Arc::new(Mutex::new(Vec::<String>::new()));
        {
            let fired = fired.clone();
            sup.set_escalation(move |name| fired.lock().push(name.to_owned()));
        }
        sup.register("camera", 0);
        sup.register("imu", 0);
        sup.note_progress("imu", 9_000_000);
        // camera silent for 10 ms > 5 ms deadline; imu progressed 1 ms ago.
        let stale = sup.scan_stale(10_000_000);
        assert_eq!(stale, vec!["camera".to_owned()]);
        assert_eq!(sup.health("camera"), Some(PluginHealth::Degraded));
        assert_eq!(sup.health("imu"), Some(PluginHealth::Running));
        // Second sweep: same incident, no re-fire.
        assert!(sup.scan_stale(11_000_000).is_empty());
        assert_eq!(fired.lock().len(), 1);
        assert_eq!(sup.report().iter().find(|r| r.name == "camera").unwrap().degraded_incidents, 1);
        // Progress clears the degradation; a new silence is a new incident.
        sup.note_progress("camera", 12_000_000);
        sup.note_progress("imu", 19_000_000);
        assert_eq!(sup.health("camera"), Some(PluginHealth::Running));
        assert_eq!(sup.scan_stale(20_000_000), vec!["camera".to_owned()]);
        assert_eq!(fired.lock().len(), 2);
    }
}
