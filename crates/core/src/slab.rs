//! `Arc`-slab frame pooling: zero-copy payloads that recycle their
//! backing storage.
//!
//! The multi-session server ships one [`VioJob`]-sized payload per
//! camera frame per session — at 1,000 sessions that is ~15k IMU-window
//! allocations per simulated second if every frame allocates a fresh
//! `Vec`. A [`SlabPool`] breaks the cycle: [`SlabPool::take`] hands out
//! a [`SlabFrame`] backed by a recycled allocation when one is free,
//! the frame is filled while still unique, then shared by cheap `Arc`
//! clone (zero-copy — uplink, scheduler batch and VIO worker all see
//! the same bytes), and when the *last* clone drops the storage is
//! [`Recycle`]d (capacity kept, contents cleared) back into the pool.
//!
//! Lifetime rules (DESIGN.md §11):
//!
//! 1. a frame is filled through [`SlabFrame::make_mut`] only while
//!    unique (before the first clone);
//! 2. clones are immutable views; there is no copy-on-write;
//! 3. recycling happens on last drop, from whatever thread that is —
//!    the pool's free list is thread-safe;
//! 4. pooling never changes observable values, only allocation reuse,
//!    so determinism is unaffected.
//!
//! [`VioJob`]: ../../illixr_server/session/struct.VioJob.html

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, Weak};

/// Storage that can be wiped for reuse while keeping its allocation.
pub trait Recycle {
    /// Clears contents; must leave the value indistinguishable from
    /// fresh for subsequent fills (capacity may — should — survive).
    fn recycle(&mut self);
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl Recycle for String {
    fn recycle(&mut self) {
        self.clear();
    }
}

struct PoolInner<T> {
    free: Mutex<Vec<T>>,
    /// Free-list bound: drops (instead of hoarding) returns beyond it.
    max_free: usize,
}

/// A bounded pool of recyclable allocations. Cheap to clone (handles
/// share the free list).
pub struct SlabPool<T: Recycle + Default> {
    inner: Arc<PoolInner<T>>,
}

impl<T: Recycle + Default> Clone for SlabPool<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Recycle + Default> fmt::Debug for SlabPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlabPool").field("free", &self.free_count()).finish()
    }
}

impl<T: Recycle + Default> SlabPool<T> {
    /// A pool keeping at most `max_free` recycled allocations around.
    pub fn new(max_free: usize) -> Self {
        Self { inner: Arc::new(PoolInner { free: Mutex::new(Vec::new()), max_free }) }
    }

    /// Takes a frame from the pool: a recycled allocation when one is
    /// free, a `T::default()` otherwise. The frame is unique — fill it
    /// via [`SlabFrame::make_mut`] before cloning.
    pub fn take(&self) -> SlabFrame<T> {
        let value = self.inner.free.lock().unwrap().pop().unwrap_or_default();
        SlabFrame { value: Some(Arc::new(value)), pool: Arc::downgrade(&self.inner) }
    }

    /// Recycled allocations currently waiting for reuse.
    pub fn free_count(&self) -> usize {
        self.inner.free.lock().unwrap().len()
    }
}

/// A pooled, shareable payload. Clones share the same allocation
/// (zero-copy); the last drop recycles it into the originating pool.
pub struct SlabFrame<T: Recycle + Default> {
    /// `Some` until dropped. Option so `Drop` can move the Arc out.
    value: Option<Arc<T>>,
    pool: Weak<PoolInner<T>>,
}

impl<T: Recycle + Default> SlabFrame<T> {
    /// A frame not backed by any pool (drops its storage normally).
    /// Lets payload types default-construct outside pooled contexts.
    pub fn detached(value: T) -> Self {
        Self { value: Some(Arc::new(value)), pool: Weak::new() }
    }

    /// Mutable access while the frame is still unique.
    ///
    /// # Panics
    /// If the frame has been cloned — slab frames are fill-then-share,
    /// never copy-on-write (a silent copy would defeat the pooling).
    pub fn make_mut(&mut self) -> &mut T {
        Arc::get_mut(self.value.as_mut().expect("live frame"))
            .expect("SlabFrame::make_mut on a shared frame; fill before cloning")
    }

    /// Strong count of the underlying allocation (diagnostics/tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(self.value.as_ref().expect("live frame"))
    }
}

impl<T: Recycle + Default> Clone for SlabFrame<T> {
    fn clone(&self) -> Self {
        Self { value: self.value.clone(), pool: self.pool.clone() }
    }
}

impl<T: Recycle + Default> Deref for SlabFrame<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("live frame")
    }
}

impl<T: Recycle + Default> Default for SlabFrame<T> {
    fn default() -> Self {
        Self::detached(T::default())
    }
}

impl<T: Recycle + Default + fmt::Debug> fmt::Debug for SlabFrame<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: Recycle + Default> Drop for SlabFrame<T> {
    fn drop(&mut self) {
        let Some(arc) = self.value.take() else { return };
        // Only the last clone recovers the allocation.
        let Ok(mut value) = Arc::try_unwrap(arc) else { return };
        let Some(pool) = self.pool.upgrade() else { return };
        let mut free = pool.free.lock().unwrap();
        if free.len() < pool.max_free {
            value.recycle();
            free.push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_drop_recycles_keeping_capacity() {
        let pool: SlabPool<Vec<u64>> = SlabPool::new(8);
        let mut frame = pool.take();
        frame.make_mut().extend(0..100);
        let ptr = frame.as_ptr();
        let shared = frame.clone();
        drop(frame);
        assert_eq!(pool.free_count(), 0, "shared frame must not recycle early");
        assert_eq!(shared.len(), 100);
        drop(shared);
        assert_eq!(pool.free_count(), 1);
        let reused = pool.take();
        assert!(reused.is_empty(), "recycled storage must be cleared");
        assert!(reused.capacity() >= 100, "capacity should survive recycling");
        assert_eq!(reused.as_ptr(), ptr, "allocation should be reused");
    }

    #[test]
    fn free_list_is_bounded() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new(2);
        let frames: Vec<_> = (0..5).map(|_| pool.take()).collect();
        drop(frames);
        assert_eq!(pool.free_count(), 2, "returns beyond the bound are dropped");
    }

    #[test]
    #[should_panic(expected = "shared frame")]
    fn make_mut_after_clone_panics() {
        let pool: SlabPool<Vec<u8>> = SlabPool::new(1);
        let mut frame = pool.take();
        let _shared = frame.clone();
        frame.make_mut().push(1);
    }

    #[test]
    fn detached_frames_drop_without_a_pool() {
        let mut frame: SlabFrame<Vec<u8>> = SlabFrame::detached(Vec::new());
        frame.make_mut().push(9);
        assert_eq!(*frame, vec![9]);
        drop(frame); // must not panic or leak
    }

    #[test]
    fn recycling_works_across_threads() {
        let pool: SlabPool<Vec<u64>> = SlabPool::new(64);
        let mut frame = pool.take();
        frame.make_mut().push(1);
        let handle = {
            let shared = frame.clone();
            std::thread::spawn(move || drop(shared))
        };
        drop(frame);
        handle.join().unwrap();
        assert_eq!(pool.free_count(), 1, "last drop on either thread recycles");
    }
}
