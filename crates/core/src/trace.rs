//! Stream tracing: record and replay switchboard traffic.
//!
//! Paper §V-G sketches using ILLIXR with architectural simulators by
//! collecting *"input/output traces of each component via the ILLIXR
//! runtime on a real machine, and organiz\[ing\] them like a rosbag to
//! drive simulations of components of interest."* This module is that
//! mechanism: a [`StreamRecorder`] captures every event on a stream with
//! its capture time, and a [`TraceReplayer`] re-publishes a recorded
//! trace onto a (possibly different) switchboard with the original
//! timing — so a component under study can be driven by exactly the
//! traffic a full-system run produced, without running the rest of the
//! system.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::Clock;
use crate::switchboard::{Switchboard, SyncReader, Writer};
use crate::time::Time;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent<T> {
    /// When the event was observed on the stream.
    pub captured_at: Time,
    /// Sequence number on the original stream.
    pub seq: u64,
    /// The payload.
    pub data: T,
}

/// A recorded stream trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamTrace<T> {
    /// Stream name the trace was captured from.
    pub stream: String,
    /// Events in capture order.
    pub events: Vec<TracedEvent<T>>,
}

impl<T> StreamTrace<T> {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Duration spanned by the trace (zero for fewer than two events).
    pub fn span(&self) -> std::time::Duration {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.captured_at - first.captured_at,
            _ => std::time::Duration::ZERO,
        }
    }
}

/// Captures every event on one stream. Call [`StreamRecorder::pump`]
/// periodically (or once at the end for sync-buffered streams) and
/// [`StreamRecorder::finish`] to take the trace.
pub struct StreamRecorder<T: Clone + Send + Sync + 'static> {
    reader: SyncReader<T>,
    clock: Arc<dyn Clock>,
    trace: Mutex<StreamTrace<T>>,
}

impl<T: Clone + Send + Sync + 'static> StreamRecorder<T> {
    /// Starts recording `stream` on `switchboard`.
    ///
    /// `capacity` bounds how many events can queue between pumps.
    pub fn start(
        switchboard: &Switchboard,
        clock: Arc<dyn Clock>,
        stream: &str,
        capacity: usize,
    ) -> Self {
        Self {
            reader: switchboard
                .topic::<T>(stream)
                .unwrap_or_else(|e| panic!("{e}"))
                .sync_reader(capacity),
            clock,
            trace: Mutex::new(StreamTrace { stream: stream.to_owned(), events: Vec::new() }),
        }
    }

    /// Moves queued events into the trace, stamping them with the
    /// current clock. Returns how many were captured.
    pub fn pump(&self) -> usize {
        let now = self.clock.now();
        let mut trace = self.trace.lock();
        let mut n = 0;
        for e in self.reader.drain_iter() {
            trace.events.push(TracedEvent { captured_at: now, seq: e.seq, data: e.data.clone() });
            n += 1;
        }
        n
    }

    /// Pumps one final time and returns the trace.
    pub fn finish(self) -> StreamTrace<T> {
        self.pump();
        self.trace.into_inner()
    }
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for StreamRecorder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StreamRecorder({})", self.trace.lock().stream)
    }
}

/// Replays a trace onto a switchboard with the original timing.
///
/// Drive it by calling [`TraceReplayer::pump`] as the clock advances
/// (e.g. from a periodic plugin or a scheduler task): every event whose
/// capture time has come due is re-published.
pub struct TraceReplayer<T: Clone + Send + Sync + 'static> {
    writer: Writer<T>,
    events: Vec<TracedEvent<T>>,
    next: usize,
    /// Offset added to capture times (replay may start at a different
    /// epoch).
    offset: std::time::Duration,
}

impl<T: Clone + Send + Sync + 'static> TraceReplayer<T> {
    /// Creates a replayer publishing onto `switchboard` under the
    /// trace's original stream name.
    pub fn new(switchboard: &Switchboard, trace: StreamTrace<T>) -> Self {
        Self {
            writer: switchboard
                .topic::<T>(&trace.stream)
                .unwrap_or_else(|e| panic!("{e}"))
                .writer(),
            events: trace.events,
            next: 0,
            offset: std::time::Duration::ZERO,
        }
    }

    /// Shifts every event's due time by `offset`.
    pub fn with_offset(mut self, offset: std::time::Duration) -> Self {
        self.offset = offset;
        self
    }

    /// Publishes all events due at `now`. Returns how many were
    /// published.
    pub fn pump(&mut self, now: Time) -> usize {
        let mut n = 0;
        while self.next < self.events.len() {
            let due = self.events[self.next].captured_at + self.offset;
            if due > now {
                break;
            }
            self.writer.put(self.events[self.next].data.clone());
            self.next += 1;
            n += 1;
        }
        n
    }

    /// True when every event has been replayed.
    pub fn finished(&self) -> bool {
        self.next >= self.events.len()
    }

    /// Events remaining.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }
}

impl<T: Clone + Send + Sync + 'static> std::fmt::Debug for TraceReplayer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceReplayer({}/{} replayed)", self.next, self.events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;

    #[test]
    fn record_captures_every_event_with_time() {
        let sb = Switchboard::new();
        let clock = SimClock::new();
        let recorder = StreamRecorder::<u32>::start(&sb, Arc::new(clock.clone()), "imu", 64);
        let writer = sb.topic::<u32>("imu").unwrap().writer();
        clock.advance_to(Time::from_millis(2));
        writer.put(10);
        writer.put(11);
        recorder.pump();
        clock.advance_to(Time::from_millis(4));
        writer.put(12);
        let trace = recorder.finish();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.events[0].captured_at, Time::from_millis(2));
        assert_eq!(trace.events[2].captured_at, Time::from_millis(4));
        assert_eq!(trace.events[2].data, 12);
        assert_eq!(trace.span(), std::time::Duration::from_millis(2));
    }

    #[test]
    fn replay_reproduces_timing_on_a_fresh_switchboard() {
        // Record on system A.
        let sb_a = Switchboard::new();
        let clock_a = SimClock::new();
        let recorder =
            StreamRecorder::<&'static str>::start(&sb_a, Arc::new(clock_a.clone()), "camera", 16);
        let writer = sb_a.topic::<&'static str>("camera").unwrap().writer();
        for (ms, v) in [(0u64, "f0"), (66, "f1"), (133, "f2")] {
            clock_a.advance_to(Time::from_millis(ms));
            writer.put(v);
            recorder.pump();
        }
        let trace = recorder.finish();

        // Replay into system B (a component under study in isolation).
        let sb_b = Switchboard::new();
        let consumer = sb_b.topic::<&'static str>("camera").unwrap().sync_reader(16);
        let mut replayer = TraceReplayer::new(&sb_b, trace);
        assert_eq!(replayer.pump(Time::from_millis(0)), 1);
        assert_eq!(consumer.drain().len(), 1);
        assert_eq!(replayer.pump(Time::from_millis(65)), 0); // f1 not due yet
        assert_eq!(replayer.pump(Time::from_millis(66)), 1);
        assert_eq!(consumer.try_recv().unwrap().data, "f1");
        assert_eq!(replayer.pump(Time::from_millis(500)), 1);
        assert!(replayer.finished());
    }

    #[test]
    fn replay_offset_shifts_schedule() {
        let sb = Switchboard::new();
        let trace = StreamTrace {
            stream: "s".into(),
            events: vec![TracedEvent { captured_at: Time::from_millis(10), seq: 0, data: 1u32 }],
        };
        let reader = sb.topic::<u32>("s").unwrap().sync_reader(4);
        let mut replayer =
            TraceReplayer::new(&sb, trace).with_offset(std::time::Duration::from_millis(100));
        assert_eq!(replayer.pump(Time::from_millis(10)), 0);
        assert_eq!(replayer.pump(Time::from_millis(110)), 1);
        assert_eq!(reader.drain().len(), 1);
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let sb = Switchboard::new();
        let trace = StreamTrace::<u32> { stream: "s".into(), events: Vec::new() };
        let mut replayer = TraceReplayer::new(&sb, trace);
        assert!(replayer.finished());
        assert_eq!(replayer.remaining(), 0);
        assert_eq!(replayer.pump(Time::from_millis(1000)), 0);
    }
}
