//! Plugins: the unit of modularity in the ILLIXR runtime.
//!
//! Every pipeline component (camera, VIO, IMU integrator, eye tracking,
//! scene reconstruction, application, reprojection, hologram, audio
//! encoding, audio playback) is a plugin. Plugins interact with the rest
//! of the system *only* through switchboard event streams, which is what
//! makes alternative implementations interchangeable (paper §II-B).
//!
//! The paper distributes plugins as shared objects loaded at run time;
//! Rust has no stable ABI, so ILLIXR-rs replaces dynamic loading with a
//! [`PluginRegistry`] of named constructor functions — the same late
//! binding (select implementations by name in a config) with static
//! safety.

use std::collections::HashMap;
use std::sync::Arc;

use crate::boundary::{Boundary, TraceRecorder, TraceSource};
use crate::clock::Clock;
use crate::fault::FaultPlan;
use crate::obs::{Metrics, Tracer};
use crate::phonebook::Phonebook;
use crate::sched::PlacementPlan;
use crate::supervisor::{SupervisionPolicy, Supervisor};
use crate::switchboard::Switchboard;
use crate::telemetry::RecordLogger;

/// Everything a plugin can reach: the switchboard for streams, the
/// phonebook for services, the runtime clock, the telemetry logger,
/// the observability handles, the fault-injection plan and the
/// supervisor. Constructed by [`RuntimeBuilder`].
#[derive(Clone)]
pub struct PluginContext {
    /// Event-stream registry.
    pub switchboard: Switchboard,
    /// Service registry.
    pub phonebook: Phonebook,
    /// The runtime clock (wall or virtual).
    pub clock: Arc<dyn Clock>,
    /// Telemetry sink.
    pub telemetry: Arc<RecordLogger>,
    /// Span/flow tracer (disabled by default; see
    /// [`RuntimeBuilder::with_obs`]).
    pub tracer: Tracer,
    /// Histogram/gauge registry (disabled by default).
    pub metrics: Metrics,
    /// The fault-injection plan ([`FaultPlan::quiet`] by default — a
    /// guaranteed no-op).
    pub fault: Arc<FaultPlan>,
    /// Crash containment and liveness tracking
    /// ([`Supervisor::disabled`] by default).
    pub supervisor: Arc<Supervisor>,
    /// Record/replay determinism boundary ([`Boundary::off`] by
    /// default — a guaranteed no-op).
    pub boundary: Arc<Boundary>,
    /// Device/edge placement plan ([`PlacementPlan::all_local`] by
    /// default — everything on-device, the historical behaviour).
    /// Consulted when wiring offloadable cut-points so benches and
    /// examples declare placement instead of hand-wiring offload
    /// plumbing.
    pub placement: Arc<PlacementPlan>,
}

/// Builds a [`PluginContext`] — the single entry point into the
/// runtime. Replaces the old `PluginContext::new`/`with_obs`
/// constructors, which could not grow new facilities (fault plan,
/// supervision) without breaking every caller.
///
/// # Examples
///
/// ```
/// use illixr_core::{RuntimeBuilder, SimClock};
/// use illixr_core::supervisor::SupervisionPolicy;
/// use std::sync::Arc;
///
/// let ctx = RuntimeBuilder::new(Arc::new(SimClock::new()))
///     .with_supervision(SupervisionPolicy::default())
///     .build();
/// assert!(ctx.fault.is_quiet());
/// assert!(ctx.supervisor.is_enabled());
/// ```
pub struct RuntimeBuilder {
    clock: Arc<dyn Clock>,
    tracer: Tracer,
    metrics: Metrics,
    fault: Arc<FaultPlan>,
    supervision: Option<SupervisionPolicy>,
    telemetry: Option<Arc<RecordLogger>>,
    recorder: Option<TraceRecorder>,
    source: Option<TraceSource>,
    placement: Arc<PlacementPlan>,
}

impl RuntimeBuilder {
    /// Starts a context build around `clock` (wall or virtual). All
    /// other facilities default to off: observability disabled, quiet
    /// fault plan, supervision disabled.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            fault: Arc::new(FaultPlan::quiet()),
            supervision: None,
            telemetry: None,
            recorder: None,
            source: None,
            placement: Arc::new(PlacementPlan::all_local()),
        }
    }

    /// Declares the device/edge placement plan: which pipeline
    /// cut-points run on-device vs behind a link, and whether the
    /// placement controller may migrate them. The default —
    /// [`PlacementPlan::all_local`] — changes nothing.
    pub fn with_placement(mut self, plan: PlacementPlan) -> Self {
        self.placement = Arc::new(plan);
        self
    }

    /// Records switchboard, threadloop and plugin activity through
    /// `tracer`/`metrics` (pass a tracer built from
    /// [`crate::obs::tracer_for`] for deterministic simulated traces).
    pub fn with_obs(mut self, tracer: Tracer, metrics: Metrics) -> Self {
        self.tracer = tracer;
        self.metrics = metrics;
        self
    }

    /// Injects faults according to `plan`. Sensor plugins, offload
    /// bridges, the server link and the supervised threadloops all
    /// consult the context's plan.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = plan;
        self
    }

    /// Enables the supervisor: panics are answered with backoff
    /// restarts and the stale-stream watchdog runs (when `policy`
    /// carries a deadline).
    pub fn with_supervision(mut self, policy: SupervisionPolicy) -> Self {
        self.supervision = Some(policy);
        self
    }

    /// Records every physical input crossing the determinism boundary
    /// (sensor samples, link deliveries, fault outcomes) into
    /// `recorder`; snapshot it after the run for a replayable trace.
    pub fn with_recorder(mut self, recorder: TraceRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Replays boundary inputs from `source` instead of generating
    /// them: sensor plugins, link bridges and crash checks consume the
    /// recorded values, making the run bit-identical to the recording.
    /// Combines with [`RuntimeBuilder::with_recorder`] to re-record the
    /// replay (the golden identity check).
    pub fn with_trace(mut self, source: TraceSource) -> Self {
        self.source = Some(source);
        self
    }

    /// Shares an existing telemetry sink instead of creating a fresh
    /// one — the experiment runner passes the sim engine's logger so
    /// plugin records and scheduler records land in the same place.
    pub fn with_telemetry(mut self, telemetry: Arc<RecordLogger>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Builds the context with a fresh switchboard and phonebook.
    pub fn build(self) -> PluginContext {
        let supervisor = match self.supervision {
            Some(policy) => Supervisor::new(policy),
            None => Supervisor::disabled(),
        };
        let boundary = match (self.source, self.recorder) {
            (Some(source), recorder) => Boundary::replaying(source, recorder),
            (None, Some(recorder)) => Boundary::recording(recorder),
            (None, None) => Boundary::off(),
        };
        PluginContext {
            switchboard: Switchboard::with_obs(self.tracer.clone(), self.metrics.clone()),
            phonebook: Phonebook::new(),
            clock: self.clock,
            telemetry: self.telemetry.unwrap_or_else(|| Arc::new(RecordLogger::new())),
            tracer: self.tracer,
            metrics: self.metrics,
            fault: self.fault,
            supervisor,
            boundary: Arc::new(boundary),
            placement: self.placement,
        }
    }
}

impl std::fmt::Debug for PluginContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PluginContext")
            .field("switchboard", &self.switchboard)
            .field("phonebook", &self.phonebook)
            .finish_non_exhaustive()
    }
}

/// The result of one plugin iteration, consumed by the scheduler and the
/// platform timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationReport {
    /// Input-dependent relative work performed this iteration
    /// (1.0 = nominal). The simulated timing model multiplies the
    /// component's base cost by this factor, reproducing the per-frame
    /// execution-time variability of Fig 4.
    pub work_factor: f64,
    /// False when the plugin had no input and skipped this iteration.
    pub did_work: bool,
}

impl IterationReport {
    /// A nominal unit of work.
    pub fn nominal() -> Self {
        Self { work_factor: 1.0, did_work: true }
    }

    /// A skipped iteration (no input available).
    pub fn skipped() -> Self {
        Self { work_factor: 0.0, did_work: false }
    }

    /// Work with the given input-dependent factor.
    pub fn with_work(work_factor: f64) -> Self {
        Self { work_factor, did_work: true }
    }
}

impl Default for IterationReport {
    fn default() -> Self {
        Self::nominal()
    }
}

/// A pipeline component.
///
/// Implementations should be cheap to construct; expensive setup belongs
/// in [`Plugin::start`].
pub trait Plugin: Send {
    /// Stable component name used in telemetry and configuration
    /// (e.g. `"vio"`, `"timewarp"`).
    fn name(&self) -> &str;

    /// Called once before the first iteration. Plugins create their
    /// writers/readers here.
    fn start(&mut self, ctx: &PluginContext) {
        let _ = ctx;
    }

    /// Performs one unit of work (process one camera frame, reproject one
    /// frame, encode one audio block, …).
    fn iterate(&mut self, ctx: &PluginContext) -> IterationReport;

    /// Called once after the last iteration.
    fn stop(&mut self) {}
}

type PluginFactory = Box<dyn Fn(&PluginContext) -> Box<dyn Plugin> + Send + Sync>;

/// A registry of named plugin constructors — the ILLIXR-rs analogue of
/// the paper's plugin loader.
///
/// # Examples
///
/// ```
/// use illixr_core::plugin::{IterationReport, Plugin, PluginContext, PluginRegistry};
/// use illixr_core::{RuntimeBuilder, WallClock};
/// use std::sync::Arc;
///
/// struct Null;
/// impl Plugin for Null {
///     fn name(&self) -> &str { "null" }
///     fn iterate(&mut self, _: &PluginContext) -> IterationReport { IterationReport::nominal() }
/// }
///
/// let mut reg = PluginRegistry::new();
/// reg.register("null", |_| Box::new(Null));
/// let ctx = RuntimeBuilder::new(Arc::new(WallClock::new())).build();
/// let plugin = reg.build("null", &ctx).unwrap();
/// assert_eq!(plugin.name(), "null");
/// ```
#[derive(Default)]
pub struct PluginRegistry {
    factories: HashMap<String, PluginFactory>,
}

impl PluginRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a constructor under `name`, replacing any previous one.
    pub fn register(
        &mut self,
        name: &str,
        factory: impl Fn(&PluginContext) -> Box<dyn Plugin> + Send + Sync + 'static,
    ) {
        self.factories.insert(name.to_owned(), Box::new(factory));
    }

    /// Builds the plugin registered under `name`, or `None` when unknown.
    pub fn build(&self, name: &str, ctx: &PluginContext) -> Option<Box<dyn Plugin>> {
        self.factories.get(name).map(|f| f(ctx))
    }

    /// Names of all registered plugins (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.factories.keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for PluginRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PluginRegistry({:?})", self.names())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::WallClock;

    struct Counter {
        count: u32,
    }

    impl Plugin for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn iterate(&mut self, _ctx: &PluginContext) -> IterationReport {
            self.count += 1;
            IterationReport::with_work(self.count as f64)
        }
    }

    fn ctx() -> PluginContext {
        RuntimeBuilder::new(Arc::new(WallClock::new())).build()
    }

    #[test]
    fn registry_builds_by_name() {
        let mut reg = PluginRegistry::new();
        reg.register("counter", |_| Box::new(Counter { count: 0 }));
        let ctx = ctx();
        let mut p = reg.build("counter", &ctx).unwrap();
        assert_eq!(p.iterate(&ctx).work_factor, 1.0);
        assert_eq!(p.iterate(&ctx).work_factor, 2.0);
        assert!(reg.build("unknown", &ctx).is_none());
    }

    #[test]
    fn interchangeable_implementations_share_a_name_slot() {
        let mut reg = PluginRegistry::new();
        reg.register("cam", |_| Box::new(Counter { count: 0 }));
        reg.register("cam", |_| Box::new(Counter { count: 100 }));
        let ctx = ctx();
        let mut p = reg.build("cam", &ctx).unwrap();
        assert_eq!(p.iterate(&ctx).work_factor, 101.0);
    }

    #[test]
    fn builder_defaults_are_quiet_and_unsupervised() {
        let ctx = ctx();
        assert!(ctx.fault.is_quiet());
        assert!(!ctx.supervisor.is_enabled());
        assert!(!ctx.tracer.is_enabled());
        assert!(!ctx.metrics.is_enabled());
        assert!(ctx.placement.is_all_local());
    }

    #[test]
    fn builder_wires_a_placement_plan() {
        use crate::sched::{PlacementPlan, Side};

        let ctx = RuntimeBuilder::new(Arc::new(WallClock::new()))
            .with_placement(PlacementPlan::adaptive("vio", Side::Edge))
            .build();
        assert!(!ctx.placement.is_all_local());
        assert_eq!(ctx.placement.side_of("vio"), Side::Edge);
        assert!(ctx.placement.is_adaptive("vio"));
    }

    #[test]
    fn builder_wires_fault_plan_and_supervision() {
        use crate::fault::FaultPlan;
        use crate::supervisor::SupervisionPolicy;

        let plan = Arc::new(FaultPlan::scheduled(7, 1.0, 1_000_000_000));
        let ctx = RuntimeBuilder::new(Arc::new(WallClock::new()))
            .with_fault_plan(plan.clone())
            .with_supervision(SupervisionPolicy::default())
            .build();
        assert!(!ctx.fault.is_quiet());
        assert_eq!(ctx.fault.seed(), 7);
        assert!(ctx.supervisor.is_enabled());
        assert_eq!(ctx.supervisor.policy().max_restarts, 3);
    }

    #[test]
    fn builder_defaults_to_an_off_boundary_and_wires_record_replay() {
        use crate::boundary::{TraceRecorder, TraceSource};

        assert!(ctx().boundary.is_off());
        let recorder = TraceRecorder::new(1, 2);
        let recording =
            RuntimeBuilder::new(Arc::new(WallClock::new())).with_recorder(recorder.clone()).build();
        recording.boundary.record("imu", 7, vec![3]);
        let trace = Arc::new(recorder.snapshot());
        assert_eq!(trace.stream("imu").unwrap().len(), 1);
        let replaying = RuntimeBuilder::new(Arc::new(WallClock::new()))
            .with_trace(TraceSource::new(trace))
            .build();
        assert_eq!(replaying.boundary.source().unwrap().next_due("imu", 10), Some((7, vec![3])));
    }

    #[test]
    fn iteration_report_constructors() {
        assert!(IterationReport::nominal().did_work);
        assert!(!IterationReport::skipped().did_work);
        assert_eq!(IterationReport::with_work(2.5).work_factor, 2.5);
    }
}
