//! Glue between the runtime and the `illixr-obs` observability layer.
//!
//! `illixr-obs` sits below this crate and keeps time as raw `u64`
//! nanoseconds behind its [`NowSource`] trait; this module adapts the
//! runtime's [`Clock`] to it and re-exports the observability types
//! the rest of the workspace uses, so plugin crates need no direct
//! `illixr-obs` dependency.

use std::sync::Arc;

pub use illixr_obs::export::{chrome_trace_json, metrics_csv, write_artifacts};
pub use illixr_obs::{
    flow_id, FlowPhase, HistogramSnapshot, LatencyHistogram, Metrics, NowSource, SpanGuard, Tracer,
};

use crate::clock::Clock;
use crate::switchboard::Switchboard;

/// Adapts any runtime [`Clock`] to the obs layer's [`NowSource`].
pub struct ClockNow(pub Arc<dyn Clock>);

impl NowSource for ClockNow {
    fn now_ns(&self) -> u64 {
        self.0.now().as_nanos()
    }
}

/// A recording tracer that reads time from the given runtime clock.
/// Pass a `SimClock` for deterministic (bit-identical per seed) traces.
pub fn tracer_for(clock: Arc<dyn Clock>) -> Tracer {
    Tracer::new(Arc::new(ClockNow(clock)))
}

/// Exports one gauge per [`Switchboard::stats`] counter into `metrics`
/// under `topic.<prefix><name>.{published,dropped,subscribers,queue_depth}`,
/// so bench bins report stream health without reaching into internals.
pub fn export_topic_gauges(sb: &Switchboard, metrics: &Metrics, prefix: &str) {
    for s in sb.stats() {
        let base = format!("topic.{prefix}{}", s.name);
        metrics.set_gauge(&format!("{base}.published"), s.seq as f64);
        metrics.set_gauge(&format!("{base}.dropped"), s.dropped as f64);
        metrics.set_gauge(&format!("{base}.subscribers"), s.subscribers as f64);
        metrics.set_gauge(&format!("{base}.queue_depth"), s.queue_depth as f64);
    }
}

/// Exports the supervisor's aggregate outcomes as metrics gauges —
/// `supervisor.{panics,restarts,degraded,failed}` — so crash
/// containment lands in `metrics.csv` next to the `supervisor.recovery`
/// latency histogram instead of living only in the in-process report.
pub fn export_supervisor_gauges(sup: &crate::supervisor::Supervisor, metrics: &Metrics) {
    use crate::supervisor::PluginHealth;
    let report = sup.report();
    let restarts: u32 = report.iter().map(|r| r.restarts).sum();
    let degraded: u32 = report.iter().map(|r| r.degraded_incidents).sum();
    let failed = report.iter().filter(|r| r.health == PluginHealth::Failed).count();
    metrics.set_gauge("supervisor.panics", sup.total_panics() as f64);
    metrics.set_gauge("supervisor.restarts", restarts as f64);
    metrics.set_gauge("supervisor.degraded", degraded as f64);
    metrics.set_gauge("supervisor.failed", failed as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::supervisor::{SupervisionPolicy, Supervisor};
    use crate::time::Time;

    #[test]
    fn tracer_reads_the_sim_clock() {
        let clock = Arc::new(SimClock::new());
        let tracer = tracer_for(clock.clone());
        clock.advance_to(Time::from_millis(5));
        assert_eq!(tracer.now_ns(), 5_000_000);
    }

    #[test]
    fn topic_gauges_cover_every_stat() {
        let sb = Switchboard::new();
        let topic = sb.topic::<u32>("imu").unwrap();
        let w = topic.writer();
        let _r = topic.sync_reader(4);
        w.put(1);
        let metrics = Metrics::new();
        export_topic_gauges(&sb, &metrics, "s0/");
        let names: Vec<String> = metrics.gauges().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"topic.s0/imu.published".to_string()));
        assert!(names.contains(&"topic.s0/imu.queue_depth".to_string()));
        assert_eq!(metrics.gauges().len(), 4);
    }

    #[test]
    fn supervisor_gauges_count_restarts_and_failures() {
        let sup = Supervisor::new(SupervisionPolicy { max_restarts: 1, ..Default::default() });
        sup.register("vio", 0);
        sup.register("app", 0);
        assert!(sup.on_panic("vio", 10).is_some(), "one restart granted");
        sup.note_progress("vio", 20);
        assert!(sup.on_panic("app", 30).is_some());
        assert!(sup.on_panic("app", 40).is_none(), "budget exhausted -> failed");
        let metrics = Metrics::new();
        export_supervisor_gauges(&sup, &metrics);
        let gauges: std::collections::HashMap<String, f64> = metrics.gauges().into_iter().collect();
        assert_eq!(gauges["supervisor.panics"], 3.0);
        assert_eq!(gauges["supervisor.restarts"], 2.0);
        assert_eq!(gauges["supervisor.degraded"], 0.0);
        assert_eq!(gauges["supervisor.failed"], 1.0);
    }
}
