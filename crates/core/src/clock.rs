//! The runtime clock abstraction.
//!
//! Components never read the OS clock directly; they ask the runtime for
//! the current [`Time`]. In live mode this is the wall clock; in simulated
//! mode it is a virtual clock advanced by the discrete-event scheduler,
//! which makes every experiment deterministic and lets one machine model
//! three hardware platforms (§III-A).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::time::Time;

/// A source of "now".
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Time;
}

/// Wall-clock time relative to creation, for live runs.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        Self { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Time {
        Time::from_nanos(self.start.elapsed().as_nanos() as u64)
    }
}

/// A virtual clock advanced explicitly by the simulation scheduler.
///
/// Cloning is cheap; all clones observe the same time.
///
/// # Examples
///
/// ```
/// use illixr_core::{Clock, SimClock, Time};
/// let clock = SimClock::new();
/// clock.advance_to(Time::from_millis(16));
/// assert_eq!(clock.now(), Time::from_millis(16));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `t`. Time never moves backwards; earlier
    /// values are ignored.
    pub fn advance_to(&self, t: Time) {
        self.now_ns.fetch_max(t.as_nanos(), Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Time {
        Time::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn sim_clock_advances_and_never_regresses() {
        let c = SimClock::new();
        assert_eq!(c.now(), Time::ZERO);
        c.advance_to(Time::from_millis(10));
        c.advance_to(Time::from_millis(5)); // ignored
        assert_eq!(c.now(), Time::from_millis(10));
    }

    #[test]
    fn sim_clock_clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_to(Time::from_millis(3));
        assert_eq!(b.now(), Time::from_millis(3));
    }

    #[test]
    fn clock_is_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(WallClock::new()), Box::new(SimClock::new())];
        for c in &clocks {
            let _ = c.now();
        }
    }
}
