//! The ILLIXR-rs runtime — the paper's primary contribution.
//!
//! ILLIXR integrates the many components of an XR system (perception,
//! visual and audio pipelines) behind a *modular, extensible, multithreaded
//! runtime* (paper §II-B). This crate reproduces that runtime:
//!
//! * **[`switchboard`]** — typed event streams with writers, *synchronous*
//!   readers (see every value) and *asynchronous* readers (latest value),
//!   the only way plugins communicate.
//! * **[`plugin`]** — the plugin trait and registry. Components are
//!   interchangeable as long as they speak the same event streams; Rust's
//!   static registration replaces the paper's shared-object loader.
//! * **[`phonebook`]** — typed service lookup (clock, switchboard, …).
//! * **[`time`] / [`clock`]** — a single `Clock` abstraction with a
//!   wall-clock implementation for live runs and a virtual clock for
//!   deterministic simulated runs.
//! * **[`sim`]** — a discrete-event scheduler that executes periodic
//!   components on modeled CPU/GPU resources, enforcing the Fig 2
//!   dependency structure, producing deadline misses and frame drops
//!   exactly where a real constrained platform would.
//! * **[`telemetry`]** — the record logger collecting per-frame wall/CPU
//!   time, achieved frame rates and deadline statistics with negligible
//!   overhead (§III-E).
//! * **[`trace`]** — rosbag-style record/replay of stream traffic, the
//!   §V-G mechanism for driving component simulations from full-system
//!   traces.
//! * **[`obs`]** — glue onto the `illixr-obs` observability layer:
//!   span tracing, switchboard flow events, latency histograms, and
//!   the Chrome/Perfetto trace exporter.
//! * **[`sched`]** — glue onto the `illixr-sched` scheduling layer:
//!   pluggable policies (rate-monotonic, EDF, adaptive degradation),
//!   end-to-end chain deadlines, and the live worker-pool queue.
//! * **[`fault`]** — glue onto the `illixr-fault` layer: seeded,
//!   deterministic fault plans (sensor faults, link faults, plugin
//!   crashes) consulted throughout the runtime; quiet by default.
//! * **[`supervisor`]** — crash containment: panic catch + bounded
//!   backoff restarts, recovery-time accounting, and a stale-stream
//!   watchdog that escalates the scheduler's degradation ladder.
//! * **[`boundary`]** — glue onto the `illixr-trace` record/replay
//!   layer: the determinism boundary every physical input crosses,
//!   recordable to a versioned binary trace and replayable
//!   bit-for-bit (or fanned out into synthetic load).
//! * **[`link`]** — the unified device↔edge link vocabulary:
//!   transfer [`Direction`]s, named [`LinkProfile`] presets and the
//!   one-method [`Link`] trait that both the point-to-point and the
//!   shared contended link models implement.
//!
//! # Examples
//!
//! ```
//! use illixr_core::switchboard::Switchboard;
//!
//! let sb = Switchboard::new();
//! let pose = sb.topic::<i32>("pose").unwrap();
//! let writer = pose.writer();
//! let reader = pose.async_reader();
//! writer.put(42);
//! assert_eq!(**reader.latest().unwrap(), 42);
//! ```

pub mod boundary;
pub mod clock;
pub mod fault;
pub mod link;
pub mod obs;
pub mod phonebook;
pub mod plugin;
pub mod sched;
pub mod sim;
pub mod slab;
pub mod supervisor;
pub mod switchboard;
pub mod telemetry;
pub mod threadloop;
pub mod time;
pub mod trace;

pub use boundary::{Boundary, SessionTransform, Trace, TraceRecorder, TraceSource};
pub use clock::{Clock, SimClock, WallClock};
pub use link::{Direction, Link, LinkProfile};
pub use phonebook::{Phonebook, PhonebookError};
pub use plugin::{Plugin, PluginContext, PluginRegistry, RuntimeBuilder};
pub use slab::{Recycle, SlabFrame, SlabPool};
pub use supervisor::{PluginHealth, SupervisionPolicy, Supervisor};
pub use switchboard::{
    AsyncReader, Switchboard, SwitchboardError, SyncReader, Topic, TopicStats, Writer,
};
pub use telemetry::{ComponentStats, FrameRecord, RecordLogger, TaskTimer};
pub use threadloop::{RuntimeHandles, ThreadloopBuilder};
pub use time::Time;
pub use trace::{StreamRecorder, StreamTrace, TraceReplayer};
