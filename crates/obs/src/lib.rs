//! Observability layer for the ILLIXR testbed.
//!
//! The paper's evaluation (§IV) is built entirely from per-invocation
//! timing records; this crate generalises that into three primitives
//! the rest of the workspace threads through its runtime:
//!
//! * **Spans** — named `[start, end)` intervals on named tracks,
//!   recorded through a cheap-to-clone [`Tracer`] handle. A disabled
//!   tracer is a no-op (one branch, no locks), so hot paths can call it
//!   unconditionally.
//! * **Flow events** — begin/end markers with a deterministic id that
//!   stitch a causal chain across tracks (switchboard `put` → `recv`),
//!   so a trace viewer can draw arrows from producer to consumer and
//!   an analysis can decompose end-to-end motion-to-photon latency
//!   into per-stage contributions.
//! * **Histograms** — fixed-bucket log-scale latency histograms
//!   ([`LatencyHistogram`]) with p50/p90/p99/max, aggregated in a
//!   [`Metrics`] registry keyed by dotted names
//!   (`exec.vio`, `topic.imu.publish_interval_ns`, …).
//!
//! [`export`] renders everything as a Chrome/Perfetto
//! `trace.json` (Trace Event Format) plus a `metrics.csv`. All output
//! is deterministic: tracks are sorted, events are sorted on stable
//! keys, ids are content hashes rather than allocation order, and all
//! timestamps come from the caller's clock (the simulated [`NowSource`]
//! in every bench bin), so a fixed-seed run exports bit-identical
//! artifacts.
//!
//! This crate deliberately sits *below* `illixr-core`: it knows nothing
//! about `Time`, plugins, or the switchboard. Times are raw `u64`
//! nanoseconds and the clock is abstracted behind [`NowSource`].

pub mod export;
pub mod hist;
pub mod metrics;
pub mod span;

pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use metrics::Metrics;
pub use span::{flow_id, FlowPhase, NowSource, SpanGuard, Tracer};
