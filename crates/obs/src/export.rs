//! Deterministic exporters: Chrome Trace Event JSON and metrics CSV.
//!
//! The JSON follows the Trace Event Format that both
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! understand: one process (`pid` 1), one thread row per track,
//! complete slices (`ph: "X"`), counter series (`ph: "C"`), and flow
//! arrows (`ph: "s"` / `ph: "f"`). Timestamps are microseconds with
//! fixed three-decimal formatting.
//!
//! Determinism contract: tracks are assigned `tid`s in sorted-name
//! order, every event section is sorted on stable keys, numbers are
//! formatted with fixed integer arithmetic (no locale, no float
//! printing for times), so two runs with identical inputs produce
//! byte-identical files.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::metrics::Metrics;
use crate::span::{FlowPhase, Tracer};

/// Nanoseconds → Trace-Event microseconds with exactly three decimals.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders everything the tracer recorded as a Chrome/Perfetto
/// `trace.json` document.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut spans = tracer.spans();
    let mut flows = tracer.flows();
    let mut counters = tracer.counters();

    let mut tracks: Vec<String> = spans
        .iter()
        .map(|s| s.track.clone())
        .chain(flows.iter().map(|f| f.track.clone()))
        .chain(counters.iter().map(|c| c.track.clone()))
        .collect();
    tracks.sort();
    tracks.dedup();
    let tid = |track: &str| tracks.binary_search_by(|t| t.as_str().cmp(track)).unwrap() + 1;

    spans.sort_by(|a, b| {
        (a.start_ns, &a.track, a.end_ns, &a.name).cmp(&(b.start_ns, &b.track, b.end_ns, &b.name))
    });
    flows.sort_by(|a, b| {
        (a.at_ns, a.id, a.phase, &a.track).cmp(&(b.at_ns, b.id, b.phase, &b.track))
    });
    counters.sort_by(|a, b| (a.at_ns, &a.track, &a.name).cmp(&(b.at_ns, &b.track, &b.name)));

    let mut events: Vec<String> = Vec::new();
    events.push(
        r#"{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"illixr"}}"#.to_string(),
    );
    for (i, track) in tracks.iter().enumerate() {
        let t = i + 1;
        events.push(format!(
            r#"{{"ph":"M","pid":1,"tid":{t},"name":"thread_name","args":{{"name":"{}"}}}}"#,
            json_escape(track)
        ));
        events.push(format!(
            r#"{{"ph":"M","pid":1,"tid":{t},"name":"thread_sort_index","args":{{"sort_index":{t}}}}}"#
        ));
    }
    for s in &spans {
        let mut args = String::new();
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, r#""{}":"{}""#, json_escape(k), json_escape(v));
        }
        events.push(format!(
            r#"{{"ph":"X","pid":1,"tid":{},"ts":{},"dur":{},"name":"{}","args":{{{args}}}}}"#,
            tid(&s.track),
            fmt_us(s.start_ns),
            fmt_us(s.end_ns - s.start_ns),
            json_escape(&s.name),
        ));
    }
    for c in &counters {
        events.push(format!(
            r#"{{"ph":"C","pid":1,"tid":{},"ts":{},"name":"{}","args":{{"value":{}}}}}"#,
            tid(&c.track),
            fmt_us(c.at_ns),
            json_escape(&c.name),
            c.value,
        ));
    }
    for f in &flows {
        let (ph, bind) = match f.phase {
            FlowPhase::Begin => ("s", ""),
            FlowPhase::End => ("f", r#","bp":"e""#),
        };
        events.push(format!(
            r#"{{"ph":"{ph}"{bind},"pid":1,"tid":{},"ts":{},"cat":"flow","id":"0x{:016x}","name":"{}"}}"#,
            tid(&f.track),
            fmt_us(f.at_ns),
            f.id,
            json_escape(&f.name),
        ));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the metrics registry as CSV: one `hist` row per histogram
/// (count, quantiles, max, mean) and one `gauge` row per gauge.
pub fn metrics_csv(metrics: &Metrics) -> String {
    let mut out = String::from("kind,name,count,p50_ns,p90_ns,p99_ns,max_ns,mean_ns,value\n");
    for (name, s) in metrics.snapshots() {
        let _ = writeln!(
            out,
            "hist,{name},{},{},{},{},{},{},",
            s.count,
            s.p50_ns,
            s.p90_ns,
            s.p99_ns,
            s.max_ns,
            s.mean_ns()
        );
    }
    for (name, v) in metrics.gauges() {
        let _ = writeln!(out, "gauge,{name},,,,,,,{v}");
    }
    out
}

/// Writes `<stem>.trace.json` and `<stem>.metrics.csv` under `dir`
/// (created if missing) and returns both paths.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing
/// either file.
pub fn write_artifacts(
    dir: &Path,
    stem: &str,
    tracer: &Tracer,
    metrics: &Metrics,
) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let trace_path = dir.join(format!("{stem}.trace.json"));
    let csv_path = dir.join(format!("{stem}.metrics.csv"));
    std::fs::write(&trace_path, chrome_trace_json(tracer))?;
    std::fs::write(&csv_path, metrics_csv(metrics))?;
    Ok((trace_path, csv_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{flow_id, NowSource};
    use std::sync::Arc;

    struct Zero;
    impl NowSource for Zero {
        fn now_ns(&self) -> u64 {
            0
        }
    }

    fn sample_tracer() -> Tracer {
        let t = Tracer::new(Arc::new(Zero));
        t.record_span_args("vio", "msckf", 1_000, 3_500, &[("features", "40".into())]);
        t.scoped("s1/").record_span("warp", "reproject", 4_000, 4_250);
        t.flow("imu", "imu", flow_id("imu", 7), 1_200, FlowPhase::Begin);
        t.flow("vio", "imu", flow_id("imu", 7), 1_400, FlowPhase::End);
        t.counter("uplink", "queue_depth", 2_000, 3.0);
        t
    }

    #[test]
    fn trace_json_is_deterministic_and_well_formed() {
        let a = chrome_trace_json(&sample_tracer());
        let b = chrome_trace_json(&sample_tracer());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":[\n"));
        assert!(a.contains(r#""ph":"X""#) && a.contains(r#""ph":"s""#));
        assert!(a.contains(r#""ph":"f","bp":"e""#) && a.contains(r#""ph":"C""#));
        assert!(a.contains(r#""name":"s1/warp""#), "scoped track missing:\n{a}");
        assert!(a.contains(r#""ts":1.000,"dur":2.500"#), "fixed-point ts missing:\n{a}");
        // Flow begin and end share one id.
        let id = format!("0x{:016x}", flow_id("imu", 7));
        assert_eq!(a.matches(&id).count(), 2);
    }

    #[test]
    fn metrics_csv_lists_hists_then_gauges() {
        let m = Metrics::new();
        m.record_ns("exec.vio", 2_000);
        m.record_ns("exec.vio", 2_000);
        m.set_gauge("sessions", 4.0);
        let csv = metrics_csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,count,p50_ns,p90_ns,p99_ns,max_ns,mean_ns,value");
        assert_eq!(lines[1], "hist,exec.vio,2,2000,2000,2000,2000,2000,");
        assert_eq!(lines[2], "gauge,sessions,,,,,,,4");
        assert_eq!(metrics_csv(&m), csv);
    }
}
