//! Named-histogram and gauge registry.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::hist::{HistogramSnapshot, LatencyHistogram};

struct MetricsInner {
    hists: Mutex<BTreeMap<String, LatencyHistogram>>,
    gauges: Mutex<BTreeMap<String, f64>>,
}

/// Cheap-to-clone registry of latency histograms and scalar gauges,
/// keyed by dotted names (`exec.vio`, `mtp.total`,
/// `topic.imu.dropped`). A registry built with [`Metrics::disabled`]
/// ignores every record after a single branch.
///
/// Names sort lexicographically in the exported CSV (the registry is a
/// `BTreeMap`), which is part of the determinism contract.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsInner>>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").field("enabled", &self.is_enabled()).finish()
    }
}

impl Metrics {
    /// A registry that records nothing (the [`Default`]).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(MetricsInner {
                hists: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// True when records are kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds one sample to the named histogram (created on first use).
    pub fn record_ns(&self, name: &str, ns: u64) {
        if let Some(inner) = &self.inner {
            let mut hists = inner.hists.lock();
            if let Some(h) = hists.get_mut(name) {
                h.record_ns(ns);
            } else {
                let mut h = LatencyHistogram::new();
                h.record_ns(ns);
                hists.insert(name.to_string(), h);
            }
        }
    }

    /// [`Metrics::record_ns`] taking a [`Duration`].
    pub fn record(&self, name: &str, d: Duration) {
        self.record_ns(name, d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Sets (overwrites) the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.gauges.lock().insert(name.to_string(), value);
        }
    }

    /// Snapshot of one histogram, if it exists.
    pub fn snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner.as_ref()?.hists.lock().get(name).map(LatencyHistogram::snapshot)
    }

    /// Snapshots of every histogram, in name order.
    pub fn snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.hists.lock().iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
        })
    }

    /// Every gauge, in name order.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.gauges.lock().iter().map(|(n, v)| (n.clone(), *v)).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_ignores_records() {
        let m = Metrics::disabled();
        m.record_ns("x", 5);
        m.set_gauge("g", 1.0);
        assert!(m.snapshots().is_empty() && m.gauges().is_empty());
        assert!(m.snapshot("x").is_none());
    }

    #[test]
    fn histograms_accumulate_per_name() {
        let m = Metrics::new();
        m.record_ns("exec.vio", 1_000);
        m.record_ns("exec.vio", 1_000);
        m.record_ns("exec.warp", 2_000);
        assert_eq!(m.snapshot("exec.vio").unwrap().count, 2);
        assert_eq!(m.snapshot("exec.warp").unwrap().count, 1);
        let names: Vec<String> = m.snapshots().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["exec.vio", "exec.warp"]);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::new();
        m.set_gauge("sessions", 4.0);
        m.set_gauge("sessions", 8.0);
        assert_eq!(m.gauges(), vec![("sessions".to_string(), 8.0)]);
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.record_ns("a", 1);
        assert_eq!(m.snapshot("a").unwrap().count, 1);
    }
}
