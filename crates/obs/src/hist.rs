//! Fixed-bucket log-scale latency histograms.
//!
//! Buckets are geometric with ratio 2^(1/4) (four buckets per octave,
//! ≈19% relative resolution) starting at 1 µs. Bucket 0 is the
//! underflow bucket `(0, 1 µs]`; the last bucket absorbs overflow.
//! Quantiles are nearest-rank over the bucket counts and report the
//! bucket's upper boundary (clamped to the observed maximum), which
//! makes them deterministic, monotone in `q`, and exact whenever the
//! recorded values sit on bucket boundaries.

use std::sync::OnceLock;

/// Buckets per octave (ratio 2^(1/4) ≈ 1.189).
pub const SUB_BUCKETS: u32 = 4;
/// Octaves covered above the 1 µs floor (2^36 µs ≈ 19 hours).
pub const OCTAVES: u32 = 36;
/// Total bucket count: underflow + `OCTAVES * SUB_BUCKETS` geometric buckets.
pub const NUM_BUCKETS: usize = 1 + (OCTAVES * SUB_BUCKETS) as usize;
/// Upper bound of the underflow bucket, in nanoseconds.
pub const FLOOR_NS: u64 = 1_000;

fn boundaries() -> &'static [u64; NUM_BUCKETS] {
    static TABLE: OnceLock<[u64; NUM_BUCKETS]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; NUM_BUCKETS];
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = (FLOOR_NS as f64 * 2f64.powf(i as f64 / f64::from(SUB_BUCKETS))).round() as u64;
        }
        t
    })
}

/// Upper boundary (inclusive) of bucket `idx`, in nanoseconds.
///
/// # Panics
///
/// Panics when `idx >= NUM_BUCKETS`.
pub fn bucket_upper_bound_ns(idx: usize) -> u64 {
    boundaries()[idx]
}

/// Index of the bucket that `ns` falls into. Buckets are half-open
/// `(lower, upper]`; values above the top boundary land in the last
/// (overflow) bucket.
pub fn bucket_index(ns: u64) -> usize {
    let table = boundaries();
    match table.binary_search(&ns) {
        Ok(i) => i,
        Err(i) if i < NUM_BUCKETS => i,
        Err(_) => NUM_BUCKETS - 1,
    }
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_ns: u128,
    /// Smallest recorded sample (0 when empty).
    pub min_ns: u64,
    /// Largest recorded sample (0 when empty).
    pub max_ns: u64,
    /// Median estimate (bucket upper bound, clamped to `max_ns`).
    pub p50_ns: u64,
    /// 90th percentile estimate.
    pub p90_ns: u64,
    /// 99th percentile estimate.
    pub p99_ns: u64,
}

impl HistogramSnapshot {
    /// Mean sample value in nanoseconds (integer division; 0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.count)) as u64
        }
    }
}

/// Fixed-bucket log-scale histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; NUM_BUCKETS], count: 0, sum_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }

    /// Records one sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`: the upper
    /// boundary of the bucket containing rank `ceil(q·count)`, clamped
    /// to the observed maximum. Returns 0 on an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Summarises the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            p50_ns: self.quantile_ns(0.50),
            p90_ns: self.quantile_ns(0.90),
            p99_ns: self.quantile_ns(0.99),
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_geometric_per_octave() {
        // Every SUB_BUCKETS steps the boundary exactly doubles (before
        // rounding error can accumulate, each is computed independently).
        assert_eq!(bucket_upper_bound_ns(0), 1_000);
        assert_eq!(bucket_upper_bound_ns(SUB_BUCKETS as usize), 2_000);
        assert_eq!(bucket_upper_bound_ns(2 * SUB_BUCKETS as usize), 4_000);
        assert_eq!(bucket_upper_bound_ns(12), 8_000);
        assert_eq!(bucket_upper_bound_ns(40), 1_024_000); // 2^10 µs
                                                          // Within an octave the ratio is 2^(1/4) ≈ 1.1892.
        let r = bucket_upper_bound_ns(1) as f64 / bucket_upper_bound_ns(0) as f64;
        assert!((r - 2f64.powf(0.25)).abs() < 1e-3, "ratio {r}");
    }

    #[test]
    fn bucket_index_half_open_intervals() {
        // (0, 1000] → bucket 0; values just above a boundary go up.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(1_000), 0);
        assert_eq!(bucket_index(1_001), 1);
        assert_eq!(bucket_index(2_000), SUB_BUCKETS as usize);
        assert_eq!(bucket_index(2_001), SUB_BUCKETS as usize + 1);
        // Far beyond the table → overflow bucket.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_exact_on_boundary_samples() {
        // 50×1 µs, 40×8 µs, 10×64 µs — all on bucket boundaries, so the
        // nearest-rank estimates equal the exact sample quantiles.
        let mut h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record_ns(1_000);
        }
        for _ in 0..40 {
            h.record_ns(8_000);
        }
        for _ in 0..10 {
            h.record_ns(64_000);
        }
        assert_eq!(h.quantile_ns(0.50), 1_000);
        assert_eq!(h.quantile_ns(0.90), 8_000);
        assert_eq!(h.quantile_ns(0.99), 64_000);
        let s = h.snapshot();
        assert_eq!((s.p50_ns, s.p90_ns, s.p99_ns, s.max_ns), (1_000, 8_000, 64_000, 64_000));
        assert_eq!(s.min_ns, 1_000);
        assert_eq!(s.mean_ns(), (50 * 1_000 + 40 * 8_000 + 10 * 64_000) / 100);
    }

    #[test]
    fn quantiles_within_bucket_resolution() {
        // Arbitrary values: the estimate may exceed the exact quantile
        // by at most one bucket ratio (2^(1/4)) and never undershoots.
        let mut h = LatencyHistogram::new();
        let mut values: Vec<u64> = (0..1_000).map(|i| 1_500 + 977 * i).collect();
        for &v in &values {
            h.record_ns(v);
        }
        values.sort_unstable();
        for &(q, rank) in &[(0.50, 500usize), (0.90, 900), (0.99, 990)] {
            let exact = values[rank - 1];
            let est = h.quantile_ns(q);
            assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            assert!(
                (est as f64) <= exact as f64 * 2f64.powf(0.25) + 1.0,
                "q={q}: est {est} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn single_value_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record_ns(123_456);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 123_456);
        }
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!((s.min_ns, s.max_ns, s.p50_ns, s.mean_ns()), (0, 0, 0, 0));
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..100u64 {
            let v = 1_000 + i * 3_137;
            if i % 2 == 0 {
                a.record_ns(v);
            } else {
                b.record_ns(v);
            }
            whole.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }
}
