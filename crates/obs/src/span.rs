//! Span and flow-event recording.
//!
//! A [`Tracer`] is a cheap-to-clone handle onto a shared in-memory
//! sink. Components record **spans** (named intervals on named tracks)
//! and **flow events** (begin/end markers linked by a deterministic
//! id) that the exporter renders as Chrome Trace Event JSON.
//!
//! Determinism: flow ids are content hashes ([`flow_id`]) rather than
//! allocation-ordered counters, timestamps come from the caller's
//! [`NowSource`] (the simulated clock in every bench bin), and the
//! exporter sorts on stable keys — so fixed-seed runs export
//! bit-identical traces.

use std::sync::Arc;

use parking_lot::Mutex;

/// Monotonic nanosecond time source. `illixr-core` adapts its `Clock`
/// trait to this so the obs layer stays dependency-free.
pub trait NowSource: Send + Sync {
    /// Current time in nanoseconds since the epoch of the run.
    fn now_ns(&self) -> u64;
}

/// Whether a flow event starts or terminates a causal chain link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowPhase {
    /// Producer side (`ph: "s"` in the trace).
    Begin,
    /// Consumer side (`ph: "f"` in the trace).
    End,
}

/// One recorded interval.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Track (rendered as a named thread row) the span lives on.
    pub track: String,
    /// Slice name.
    pub name: String,
    /// Start time, nanoseconds.
    pub start_ns: u64,
    /// End time, nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Extra key/value annotations (rendered as `args`).
    pub args: Vec<(String, String)>,
}

/// One recorded flow endpoint.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Track the endpoint sits on.
    pub track: String,
    /// Flow name (typically the topic).
    pub name: String,
    /// Deterministic id linking begin and end (see [`flow_id`]).
    pub id: u64,
    /// Event time, nanoseconds.
    pub at_ns: u64,
    /// Begin (producer) or end (consumer).
    pub phase: FlowPhase,
}

/// One recorded counter sample (rendered as a `ph:"C"` event).
#[derive(Debug, Clone)]
pub struct CounterRecord {
    /// Track the counter belongs to.
    pub track: String,
    /// Counter series name.
    pub name: String,
    /// Sample time, nanoseconds.
    pub at_ns: u64,
    /// Sampled value.
    pub value: f64,
}

struct TracerInner {
    clock: Arc<dyn NowSource>,
    spans: Mutex<Vec<SpanRecord>>,
    flows: Mutex<Vec<FlowRecord>>,
    counters: Mutex<Vec<CounterRecord>>,
}

/// Handle for recording spans, flows, and counters.
///
/// Clones share one sink. A tracer built with [`Tracer::disabled`]
/// drops every record after a single branch, so instrumentation can be
/// unconditional. [`Tracer::scoped`] derives a handle whose track
/// names carry a prefix (e.g. `s3/imu`), which is how per-session
/// instrumentation stays distinguishable in multi-session runs.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
    scope: String,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("scope", &self.scope)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None, scope: String::new() }
    }

    /// A recording tracer reading time from `clock`.
    pub fn new(clock: Arc<dyn NowSource>) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner {
                clock,
                spans: Mutex::new(Vec::new()),
                flows: Mutex::new(Vec::new()),
                counters: Mutex::new(Vec::new()),
            })),
            scope: String::new(),
        }
    }

    /// True when records are kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current time from the tracer's clock (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_ns())
    }

    /// Derives a handle sharing this sink whose track names are
    /// prefixed with `prefix` (include your own separator: `"s3/"`).
    pub fn scoped(&self, prefix: &str) -> Tracer {
        Self { inner: self.inner.clone(), scope: format!("{}{}", self.scope, prefix) }
    }

    /// The accumulated track-name prefix of this handle (empty for an
    /// unscoped tracer).
    pub fn scope(&self) -> &str {
        &self.scope
    }

    fn track(&self, track: &str) -> String {
        format!("{}{}", self.scope, track)
    }

    /// Records a `[start_ns, end_ns)` span on `track`.
    pub fn record_span(&self, track: &str, name: &str, start_ns: u64, end_ns: u64) {
        self.record_span_args(track, name, start_ns, end_ns, &[]);
    }

    /// Records a span with `args` annotations.
    pub fn record_span_args(
        &self,
        track: &str,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, String)],
    ) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().push(SpanRecord {
                track: self.track(track),
                name: name.to_string(),
                start_ns,
                end_ns: end_ns.max(start_ns),
                args: args.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
            });
        }
    }

    /// Records one endpoint of a flow (see [`flow_id`]).
    pub fn flow(&self, track: &str, name: &str, id: u64, at_ns: u64, phase: FlowPhase) {
        if let Some(inner) = &self.inner {
            inner.flows.lock().push(FlowRecord {
                track: self.track(track),
                name: name.to_string(),
                id,
                at_ns,
                phase,
            });
        }
    }

    /// Records a counter sample on `track`.
    pub fn counter(&self, track: &str, name: &str, at_ns: u64, value: f64) {
        if let Some(inner) = &self.inner {
            inner.counters.lock().push(CounterRecord {
                track: self.track(track),
                name: name.to_string(),
                at_ns,
                value,
            });
        }
    }

    /// Opens a span that closes (reading the clock) when dropped.
    /// For live threadloops; simulation code records retrospectively
    /// with [`Tracer::record_span`] instead.
    pub fn span_guard(&self, track: &str, name: &str) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            track: track.to_string(),
            name: name.to_string(),
            start_ns: self.now_ns(),
        }
    }

    /// Appends every record of `other` to this tracer's sink, in
    /// `other`'s insertion order. The exporter's sorts are stable, so
    /// records tying on their sort keys keep the merge order — callers
    /// merging per-shard or per-session tracers must therefore absorb
    /// in a deterministic order (e.g. session id) to keep exports
    /// bit-identical across runs. No-op when either side is disabled.
    pub fn absorb(&self, other: &Tracer) {
        let (Some(inner), Some(src)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(inner, src) {
            return; // same sink — absorbing would duplicate records
        }
        inner.spans.lock().extend(src.spans.lock().iter().cloned());
        inner.flows.lock().extend(src.flows.lock().iter().cloned());
        inner.counters.lock().extend(src.counters.lock().iter().cloned());
    }

    /// Snapshot of all recorded spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.spans.lock().clone())
    }

    /// Snapshot of all recorded flow endpoints.
    pub fn flows(&self) -> Vec<FlowRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.flows.lock().clone())
    }

    /// Snapshot of all recorded counter samples.
    pub fn counters(&self) -> Vec<CounterRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.counters.lock().clone())
    }
}

/// RAII span: records `[creation, drop)` on the owning tracer.
pub struct SpanGuard {
    tracer: Tracer,
    track: String,
    name: String,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = self.tracer.now_ns();
        self.tracer.record_span(&self.track, &self.name, self.start_ns, end);
    }
}

/// Deterministic flow id: FNV-1a over the (scoped) stream name, folded
/// with the event sequence number. Producer and consumer compute the
/// same id independently, so no id needs to travel with the payload
/// and ids are independent of thread interleaving.
pub fn flow_id(stream: &str, seq: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in stream.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    for b in seq.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct FakeClock(AtomicU64);
    impl NowSource for FakeClock {
        fn now_ns(&self) -> u64 {
            self.0.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record_span("a", "b", 0, 10);
        t.flow("a", "b", 1, 0, FlowPhase::Begin);
        t.counter("a", "b", 0, 1.0);
        assert!(!t.is_enabled());
        assert!(t.spans().is_empty() && t.flows().is_empty() && t.counters().is_empty());
    }

    #[test]
    fn clones_share_the_sink_and_scopes_prefix_tracks() {
        let t = Tracer::new(Arc::new(FakeClock(AtomicU64::new(0))));
        let s3 = t.scoped("s3/");
        s3.record_span("imu", "tick", 5, 9);
        t.record_span("vio", "batch", 1, 2);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.track == "s3/imu"));
        assert!(spans.iter().any(|s| s.track == "vio"));
    }

    #[test]
    fn span_guard_reads_the_clock() {
        let clock = Arc::new(FakeClock(AtomicU64::new(100)));
        let t = Tracer::new(clock.clone());
        {
            let _g = t.span_guard("main", "work");
            clock.0.store(250, Ordering::SeqCst);
        }
        let spans = t.spans();
        assert_eq!((spans[0].start_ns, spans[0].end_ns), (100, 250));
    }

    #[test]
    fn absorb_appends_in_source_order_and_respects_disabled_sides() {
        let a = Tracer::new(Arc::new(FakeClock(AtomicU64::new(0))));
        let b = Tracer::new(Arc::new(FakeClock(AtomicU64::new(0))));
        b.scoped("s1/").record_span("imu", "tick", 3, 4);
        b.counter("link", "q", 1, 2.0);
        a.record_span("vio", "batch", 0, 1);
        a.absorb(&b);
        let spans = a.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].track, "s1/imu", "absorbed records keep their scoped tracks");
        assert_eq!(a.counters().len(), 1);
        // Absorbing a clone of the same sink must not duplicate.
        let a2 = a.clone();
        a.absorb(&a2);
        assert_eq!(a.spans().len(), 2);
        // Disabled sides are no-ops.
        a.absorb(&Tracer::disabled());
        Tracer::disabled().absorb(&a);
        assert_eq!(a.spans().len(), 2);
    }

    #[test]
    fn flow_ids_are_stable_and_distinct() {
        assert_eq!(flow_id("s0/imu", 7), flow_id("s0/imu", 7));
        assert_ne!(flow_id("s0/imu", 7), flow_id("s0/imu", 8));
        assert_ne!(flow_id("s0/imu", 7), flow_id("s1/imu", 7));
    }
}
