//! The session vocabulary: modes, features, frames, input and hit-test
//! payloads.
//!
//! The names deliberately mirror the WebXR Device API (`XRSessionMode`,
//! feature descriptors, `XRFrame`, input `select`/`squeeze` events,
//! `XRHitTestResult`) so the front-end reads like the standard it
//! models, while every payload stays a plain deterministic value type
//! that can be published on a switchboard topic and compared
//! bit-for-bit across reruns.

use illixr_core::Time;
use illixr_math::{Pose, Quat, Vec3};

use crate::error::SessionError;

/// Interpupillary distance used for stereo view construction, matching
/// the renderer's camera separation.
pub const IPD: f64 = illixr_render::plugin::IPD;

/// How the session's output relates to the user's view of the world
/// (WebXR `XRSessionMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionMode {
    /// Rendering into a flat on-screen element; no exclusive display.
    Inline,
    /// Exclusive head-mounted display, fully synthetic environment.
    ImmersiveVr,
    /// Exclusive display composited over the real world.
    ImmersiveAr,
}

impl SessionMode {
    /// All modes, in negotiation-table order.
    pub const ALL: [SessionMode; 3] =
        [SessionMode::Inline, SessionMode::ImmersiveVr, SessionMode::ImmersiveAr];

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SessionMode::Inline => "inline",
            SessionMode::ImmersiveVr => "immersive-vr",
            SessionMode::ImmersiveAr => "immersive-ar",
        }
    }

    /// Features every session of this mode is granted without asking,
    /// mirroring WebXR's default feature sets (`viewer` everywhere,
    /// `local` for immersive sessions).
    pub fn default_features(self) -> &'static [Feature] {
        match self {
            SessionMode::Inline => &[Feature::Viewer],
            SessionMode::ImmersiveVr | SessionMode::ImmersiveAr => {
                &[Feature::Viewer, Feature::Local]
            }
        }
    }

    /// How this mode's rendered output is blended with reality.
    pub fn blend_mode(self) -> EnvironmentBlendMode {
        match self {
            SessionMode::ImmersiveAr => EnvironmentBlendMode::AlphaBlend,
            _ => EnvironmentBlendMode::Opaque,
        }
    }
}

/// How rendered pixels combine with the physical environment
/// (WebXR `XREnvironmentBlendMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvironmentBlendMode {
    /// Rendered pixels fully replace the view (VR, inline).
    Opaque,
    /// Rendered pixels are alpha-composited over a camera or optical
    /// see-through view (AR).
    AlphaBlend,
}

impl EnvironmentBlendMode {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            EnvironmentBlendMode::Opaque => "opaque",
            EnvironmentBlendMode::AlphaBlend => "alpha-blend",
        }
    }
}

/// A capability a session can request at creation (WebXR feature
/// descriptor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feature {
    /// Poses relative to the viewer itself. Always available.
    Viewer,
    /// A stationary tracking space near the session's start pose.
    Local,
    /// A tracking space whose origin sits on the floor.
    LocalFloor,
    /// Articulated hand-joint poses on input sources.
    HandTracking,
    /// Ray-cast queries against world geometry.
    HitTest,
    /// Persistent world-locked spatial anchors.
    Anchors,
}

impl Feature {
    /// Every feature, in the canonical order used for granted lists.
    pub const ALL: [Feature; 6] = [
        Feature::Viewer,
        Feature::Local,
        Feature::LocalFloor,
        Feature::HandTracking,
        Feature::HitTest,
        Feature::Anchors,
    ];

    /// Stable kebab-case name matching the WebXR descriptor strings.
    pub fn name(self) -> &'static str {
        match self {
            Feature::Viewer => "viewer",
            Feature::Local => "local",
            Feature::LocalFloor => "local-floor",
            Feature::HandTracking => "hand-tracking",
            Feature::HitTest => "hit-test",
            Feature::Anchors => "anchors",
        }
    }
}

/// Requested features for a new session (WebXR `XRSessionInit`).
///
/// `required_features` must all be supported by the backend or session
/// creation fails with [`SessionError::RequiredFeatureDenied`];
/// `optional_features` are granted when supported and silently dropped
/// otherwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionInit {
    /// Features the session cannot function without.
    pub required_features: Vec<Feature>,
    /// Features the session would like but can live without.
    pub optional_features: Vec<Feature>,
}

impl SessionInit {
    /// An empty request: mode defaults only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds required features (builder style).
    pub fn required(mut self, features: &[Feature]) -> Self {
        self.required_features.extend_from_slice(features);
        self
    }

    /// Adds optional features (builder style).
    pub fn optional(mut self, features: &[Feature]) -> Self {
        self.optional_features.extend_from_slice(features);
        self
    }

    /// Negotiates this request against a backend's supported feature
    /// set for `mode`.
    ///
    /// The granted list is mode defaults ∪ required ∪ (optional ∩
    /// supported), deduplicated in [`Feature::ALL`] order so it is
    /// deterministic regardless of request ordering.
    ///
    /// # Errors
    ///
    /// [`SessionError::RequiredFeatureDenied`] naming the first
    /// required feature (in request order) the backend lacks.
    pub fn negotiate(
        &self,
        mode: SessionMode,
        supported: &[Feature],
    ) -> Result<Vec<Feature>, SessionError> {
        let defaults = mode.default_features();
        for feature in &self.required_features {
            if !supported.contains(feature) && !defaults.contains(feature) {
                return Err(SessionError::RequiredFeatureDenied(*feature));
            }
        }
        Ok(Feature::ALL
            .into_iter()
            .filter(|f| {
                defaults.contains(f)
                    || self.required_features.contains(f)
                    || (self.optional_features.contains(f) && supported.contains(f))
            })
            .collect())
    }
}

/// Which eye a view renders for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eye {
    /// Monoscopic center view (inline sessions).
    Center,
    /// Left eye of a stereo pair.
    Left,
    /// Right eye of a stereo pair.
    Right,
}

impl Eye {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Eye::Center => "center",
            Eye::Left => "left",
            Eye::Right => "right",
        }
    }
}

/// One render viewpoint within a frame (WebXR `XRView`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct View {
    /// Which eye this view belongs to.
    pub eye: Eye,
    /// The view's pose in the tracking space.
    pub pose: Pose,
    /// Vertical field of view, radians.
    pub fov_y: f64,
}

/// Vertical field of view shared by every constructed view, radians.
const FOV_Y: f64 = 1.57;

/// Builds the per-mode view list for a viewer pose: one centered view
/// for inline sessions, a stereo pair with eyes [`IPD`] apart for
/// immersive ones.
pub fn views_for(mode: SessionMode, viewer: &Pose) -> Vec<View> {
    match mode {
        SessionMode::Inline => vec![View { eye: Eye::Center, pose: *viewer, fov_y: FOV_Y }],
        SessionMode::ImmersiveVr | SessionMode::ImmersiveAr => {
            let eye = |side: f64, which: Eye| View {
                eye: which,
                pose: Pose::new(
                    viewer.position + viewer.orientation.rotate(Vec3::new(side, 0.0, 0.0)),
                    viewer.orientation,
                ),
                fov_y: FOV_Y,
            };
            vec![eye(-IPD / 2.0, Eye::Left), eye(IPD / 2.0, Eye::Right)]
        }
    }
}

/// Which hand an input source is held in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handedness {
    /// Left-hand controller.
    Left,
    /// Right-hand controller.
    Right,
}

impl Handedness {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Handedness::Left => "left",
            Handedness::Right => "right",
        }
    }
}

/// Per-frame snapshot of one input source (controller or tracked hand).
#[derive(Debug, Clone, PartialEq)]
pub struct InputState {
    /// Stable source id (0 = left controller, 1 = right).
    pub source: u32,
    /// Which hand holds the source.
    pub hand: Handedness,
    /// Grip pose in the tracking space.
    pub grip: Pose,
    /// Primary trigger held this frame.
    pub select_pressed: bool,
    /// Grip squeeze held this frame.
    pub squeeze_pressed: bool,
    /// Articulated joint poses, present when `hand-tracking` was
    /// granted.
    pub hand_joints: Option<Vec<Pose>>,
}

/// What changed on an input source (WebXR `selectstart` /
/// `selectend` / `squeezestart` / `squeezeend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputEventKind {
    /// Primary trigger went down.
    SelectStart,
    /// Primary trigger released.
    SelectEnd,
    /// Squeeze went down.
    SqueezeStart,
    /// Squeeze released.
    SqueezeEnd,
}

impl InputEventKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            InputEventKind::SelectStart => "select-start",
            InputEventKind::SelectEnd => "select-end",
            InputEventKind::SqueezeStart => "squeeze-start",
            InputEventKind::SqueezeEnd => "squeeze-end",
        }
    }
}

/// An edge-triggered input event, derived by the session from
/// consecutive [`InputState`] snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputEvent {
    /// Frame index the transition was observed on.
    pub frame: u64,
    /// Frame timestamp.
    pub time: Time,
    /// Input source id.
    pub source: u32,
    /// Which transition happened.
    pub kind: InputEventKind,
}

/// A ray for hit-test queries, in the tracking space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (need not be normalized).
    pub direction: Vec3,
}

/// One intersection from a hit-test subscription (WebXR
/// `XRHitTestResult`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitTestResult {
    /// The subscription id this result answers.
    pub source: u32,
    /// Parametric distance along the ray.
    pub t: f64,
    /// Intersection point in the tracking space.
    pub point: Vec3,
}

/// All hit-test results for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct HitTestEvent {
    /// Frame index the query ran on.
    pub frame: u64,
    /// Frame timestamp.
    pub time: Time,
    /// Results across every active subscription, in subscription order.
    pub results: Vec<HitTestResult>,
}

/// One delivered frame: the per-vsync pose/view/input snapshot the
/// application renders from (WebXR `XRFrame`).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Monotonic frame index within the session, from 0.
    pub index: u64,
    /// Predicted display time.
    pub time: Time,
    /// Viewer (head) pose in the tracking space.
    pub viewer: Pose,
    /// Render views derived from the viewer pose.
    pub views: Vec<View>,
    /// Input source snapshots this frame.
    pub inputs: Vec<InputState>,
}

/// Session visibility (WebXR `XRVisibilityState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Presented and receiving input.
    Visible,
    /// Presented but input is captured elsewhere.
    VisibleBlurred,
    /// Not presented; frames keep flowing for tracking continuity.
    Hidden,
}

impl Visibility {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Visibility::Visible => "visible",
            Visibility::VisibleBlurred => "visible-blurred",
            Visibility::Hidden => "hidden",
        }
    }
}

/// A session lifecycle event, published on the lifecycle topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// Visibility changed.
    VisibilityChanged(Visibility),
    /// The session ended; `frames` is the total delivered.
    Ended {
        /// Frames delivered before the end.
        frames: u64,
    },
}

/// Deterministic scripted controller input shared by the mock and
/// headless backends.
///
/// Two sources (left/right) follow the viewer with fixed grip offsets;
/// button state is a pure function of `(seed, frame_index, source)` so
/// identical configurations replay identical input streams.
pub fn scripted_input(seed: u64, frame_index: u64, viewer: &Pose, hands: bool) -> Vec<InputState> {
    let mut states = Vec::with_capacity(2);
    for source in 0..2u32 {
        let phase = seed.wrapping_mul(2_654_435_761).wrapping_add(u64::from(source) * 97) % 16;
        let select = (frame_index + phase) % 24 < 6;
        let squeeze = (frame_index + phase * 3) % 40 < 8;
        let side = if source == 0 { -0.2 } else { 0.2 };
        let grip_offset = viewer.orientation.rotate(Vec3::new(side, -0.25, -0.35));
        let grip = Pose::new(viewer.position + grip_offset, viewer.orientation);
        let hand_joints = hands.then(|| {
            (0..5)
                .map(|j| {
                    let d = 0.02 * f64::from(j);
                    Pose::new(
                        grip.position + grip.orientation.rotate(Vec3::new(0.0, d, -d)),
                        grip.orientation,
                    )
                })
                .collect()
        });
        states.push(InputState {
            source,
            hand: if source == 0 { Handedness::Left } else { Handedness::Right },
            grip,
            select_pressed: select,
            squeeze_pressed: squeeze,
            hand_joints,
        });
    }
    states
}

/// Intersects `ray` with the horizontal plane `y = floor_y`, the world
/// geometry the mock and remote backends expose to `hit-test`.
pub fn floor_hit(ray: &Ray, floor_y: f64, source: u32) -> Option<HitTestResult> {
    if ray.direction.y.abs() < 1e-9 {
        return None;
    }
    let t = (floor_y - ray.origin.y) / ray.direction.y;
    if t <= 0.0 {
        return None;
    }
    Some(HitTestResult { source, t, point: ray.origin + ray.direction * t })
}

/// A viewer quaternion formatted for transcripts.
pub(crate) fn fmt_quat(q: &Quat) -> String {
    format!("({:.4},{:.4},{:.4},{:.4})", q.w, q.x, q.y, q.z)
}

/// A vector formatted for transcripts.
pub(crate) fn fmt_vec(v: &Vec3) -> String {
    format!("({:.4},{:.4},{:.4})", v.x, v.y, v.z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_grants_defaults_required_and_supported_optionals() {
        let init = SessionInit::new()
            .required(&[Feature::LocalFloor])
            .optional(&[Feature::Anchors, Feature::HandTracking]);
        let supported = [Feature::LocalFloor, Feature::HandTracking];
        let granted = init.negotiate(SessionMode::ImmersiveVr, &supported).unwrap();
        // Anchors was optional and unsupported: silently dropped.
        assert_eq!(
            granted,
            vec![Feature::Viewer, Feature::Local, Feature::LocalFloor, Feature::HandTracking]
        );
    }

    #[test]
    fn negotiation_order_is_canonical_regardless_of_request_order() {
        let supported = Feature::ALL;
        let a = SessionInit::new()
            .required(&[Feature::Anchors, Feature::LocalFloor])
            .negotiate(SessionMode::Inline, &supported)
            .unwrap();
        let b = SessionInit::new()
            .required(&[Feature::LocalFloor, Feature::Anchors])
            .negotiate(SessionMode::Inline, &supported)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn required_unsupported_feature_is_denied() {
        let err = SessionInit::new()
            .required(&[Feature::HitTest])
            .negotiate(SessionMode::ImmersiveVr, &[Feature::LocalFloor])
            .unwrap_err();
        assert_eq!(err, SessionError::RequiredFeatureDenied(Feature::HitTest));
    }

    #[test]
    fn scripted_input_is_deterministic() {
        let pose = Pose::IDENTITY;
        assert_eq!(scripted_input(7, 3, &pose, true), scripted_input(7, 3, &pose, true));
        let sequence = |seed: u64| -> Vec<bool> {
            (0..24).map(|i| scripted_input(seed, i, &pose, false)[0].select_pressed).collect()
        };
        assert_ne!(sequence(7), sequence(8));
    }

    #[test]
    fn floor_hit_intersects_downward_rays_only() {
        let down = Ray { origin: Vec3::new(0.0, 1.6, 0.0), direction: Vec3::new(0.0, -1.0, 0.0) };
        let hit = floor_hit(&down, 0.0, 3).unwrap();
        assert_eq!(hit.source, 3);
        assert!((hit.t - 1.6).abs() < 1e-12);
        assert!(hit.point.y.abs() < 1e-12);
        let up = Ray { origin: down.origin, direction: Vec3::new(0.0, 1.0, 0.0) };
        assert!(floor_hit(&up, 0.0, 0).is_none());
    }

    #[test]
    fn stereo_views_sit_ipd_apart() {
        let views = views_for(SessionMode::ImmersiveVr, &Pose::IDENTITY);
        assert_eq!(views.len(), 2);
        let sep = (views[1].pose.position - views[0].pose.position).norm();
        assert!((sep - IPD).abs() < 1e-12);
        assert_eq!(views_for(SessionMode::Inline, &Pose::IDENTITY).len(), 1);
    }
}
