//! The remote backend: opens sessions against `illixr-server`'s
//! event-driven multi-session engine.
//!
//! All sessions requested from one [`RemoteDiscovery`] share one
//! server: each `build_device` appends a [`SessionConfig`] (standard
//! seed `11 + 2·id`, rates and admission load-weight derived from the
//! negotiated mode and features), and the first `wait_frame` on any
//! device runs the whole server timeline once via [`ServerBuilder`].
//! This is how mixed inline / immersive-VR / immersive-AR sessions
//! coexist on a single server, and it keeps the identity contract: an
//! `immersive-vr` session with default features contributes exactly
//! `SessionConfig::new(seed)`, so a single-session run's
//! [`DeviceApi::report`] (the server's `summary_text()`) is
//! bit-identical to a direct
//! `ServerBuilder::new().sessions(1).duration(d).build().run()`.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use illixr_server::{ServerBuilder, ServerReport, SessionConfig, SessionState};

use crate::device::DeviceApi;
use crate::error::SessionError;
use crate::registry::Discovery;
use crate::types::{
    floor_hit, scripted_input, views_for, EnvironmentBlendMode, Feature, Frame, HitTestResult, Ray,
    SessionMode,
};

/// Parameters for the server-backed backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteConfig {
    /// Simulated server run length shared by every session.
    pub duration: Duration,
    /// Run the real per-session MSCKF server-side (slower; defaults to
    /// the cheap ground-truth mode, matching `ServerBuilder`).
    pub real_vio: bool,
}

impl Default for RemoteConfig {
    /// 2 simulated seconds, cheap VIO.
    fn default() -> Self {
        Self { duration: Duration::from_secs(2), real_vio: false }
    }
}

/// Additional admission load-weight per negotiated feature: hand
/// tracking, hit testing and anchors all add per-frame server work the
/// raw byte rates don't capture.
fn load_weight(mode: SessionMode, granted: &[Feature]) -> f64 {
    let mut weight = 1.0;
    if granted.contains(&Feature::HandTracking) {
        weight += 0.25;
    }
    if granted.contains(&Feature::HitTest) {
        weight += 0.2;
    }
    if granted.contains(&Feature::Anchors) {
        weight += 0.15;
    }
    if mode == SessionMode::Inline {
        // Inline sessions composite at 60 Hz into a flat viewport.
        weight *= 0.5;
    }
    weight
}

/// The server run shared by every device from one discovery.
struct RemoteShared {
    config: RemoteConfig,
    sessions: Vec<SessionConfig>,
    report: Option<Arc<ServerReport>>,
}

impl RemoteShared {
    /// Runs the server once, with every adopted session aboard.
    fn ensure_run(&mut self) -> Arc<ServerReport> {
        if let Some(report) = &self.report {
            return report.clone();
        }
        let mut builder = ServerBuilder::new()
            .sessions(self.sessions.len())
            .duration(self.config.duration)
            .real_vio(self.config.real_vio);
        for (i, session) in self.sessions.iter().enumerate() {
            let config = *session;
            builder = builder.configure_session(i, move |s| *s = config);
        }
        let report = Arc::new(builder.build().run());
        self.report = Some(report.clone());
        report
    }
}

/// Registers devices that adopt sessions into one shared server run.
pub struct RemoteDiscovery {
    shared: Arc<Mutex<RemoteShared>>,
}

impl RemoteDiscovery {
    /// A discovery whose devices will share one server run.
    pub fn new(config: RemoteConfig) -> Self {
        Self {
            shared: Arc::new(Mutex::new(RemoteShared {
                config,
                sessions: Vec::new(),
                report: None,
            })),
        }
    }

    /// Runs the server (if it has not run yet) and returns the full
    /// report — the aggregate view across every adopted session.
    pub fn server_report(&self) -> Arc<ServerReport> {
        self.shared.lock().expect("remote state lock").ensure_run()
    }

    /// A second handle onto the same shared server run — lets a caller
    /// keep an aggregate-report view after registering the discovery.
    pub fn handle(&self) -> RemoteDiscovery {
        Self { shared: self.shared.clone() }
    }
}

impl Discovery for RemoteDiscovery {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn supports_mode(&self, _mode: SessionMode) -> bool {
        true
    }

    fn supported_features(&self, _mode: SessionMode) -> Vec<Feature> {
        Feature::ALL.to_vec()
    }

    fn build_device(
        &mut self,
        mode: SessionMode,
        granted: &[Feature],
    ) -> Result<Box<dyn DeviceApi>, SessionError> {
        let mut shared = self.shared.lock().expect("remote state lock");
        if shared.report.is_some() {
            return Err(SessionError::Backend(
                "remote server already ran its timeline; open every session before the first \
                 frame"
                    .to_owned(),
            ));
        }
        let id = shared.sessions.len() as u32;
        let seed = 11 + 2 * u64::from(id);
        let mut config = SessionConfig::new(seed);
        if mode == SessionMode::Inline {
            config.display_hz = 60.0;
        }
        config.load_weight = load_weight(mode, granted);
        shared.sessions.push(config);
        Ok(Box::new(RemoteDevice {
            shared: self.shared.clone(),
            id,
            seed,
            mode,
            granted: granted.to_vec(),
            frames: None,
            cursor: 0,
            state: SessionState::Pending,
            report: String::new(),
        }))
    }
}

/// One adopted server session, replaying its displayed-frame log.
struct RemoteDevice {
    shared: Arc<Mutex<RemoteShared>>,
    id: u32,
    seed: u64,
    mode: SessionMode,
    granted: Vec<Feature>,
    frames: Option<Vec<Frame>>,
    cursor: usize,
    state: SessionState,
    report: String,
}

impl RemoteDevice {
    /// Triggers the shared server run on first use and converts this
    /// session's displayed-frame telemetry into the frame stream.
    fn ensure_frames(&mut self) {
        if self.frames.is_some() {
            return;
        }
        let report = self.shared.lock().expect("remote state lock").ensure_run();
        let session = report.session(self.id).expect("adopted session exists in report");
        self.state = session.state();
        self.report = report.summary_text();
        let hands = self.granted.contains(&Feature::HandTracking);
        let frames = session
            .telemetry()
            .displayed_frames
            .iter()
            .enumerate()
            .map(|(i, displayed)| Frame {
                index: i as u64,
                time: displayed.time,
                viewer: displayed.pose,
                views: views_for(self.mode, &displayed.pose),
                inputs: scripted_input(self.seed, i as u64, &displayed.pose, hands),
            })
            .collect();
        self.frames = Some(frames);
    }
}

impl DeviceApi for RemoteDevice {
    fn backend(&self) -> &'static str {
        "remote"
    }

    fn granted_features(&self) -> &[Feature] {
        &self.granted
    }

    fn blend_mode(&self) -> EnvironmentBlendMode {
        self.mode.blend_mode()
    }

    fn wait_frame(&mut self) -> Option<Frame> {
        self.ensure_frames();
        let frames = self.frames.as_ref().expect("ensure_frames populated frames");
        let frame = frames.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(frame)
    }

    fn hit_test(&self, _frame: &Frame, ray: &Ray, source: u32) -> Vec<HitTestResult> {
        floor_hit(ray, 0.0, source).into_iter().collect()
    }

    /// The shared server's `summary_text()` — the artifact the golden
    /// test compares against a direct `ServerBuilder` run.
    fn report(&self) -> String {
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::types::SessionInit;

    fn quick_config() -> RemoteConfig {
        RemoteConfig { duration: Duration::from_millis(500), real_vio: false }
    }

    #[test]
    fn sessions_after_the_run_started_are_refused() {
        let discovery = RemoteDiscovery::new(quick_config());
        let shared = discovery.shared.clone();
        let mut registry = Registry::new();
        registry.register(Box::new(discovery));
        let mut session =
            registry.request_session(SessionMode::ImmersiveVr, &SessionInit::new()).unwrap();
        assert!(session.pump().is_some(), "server run should yield frames");
        let err = registry.request_session(SessionMode::Inline, &SessionInit::new()).unwrap_err();
        assert!(matches!(err, SessionError::Backend(_)));
        assert!(shared.lock().unwrap().report.is_some());
    }

    #[test]
    fn feature_and_mode_load_weights() {
        assert_eq!(load_weight(SessionMode::ImmersiveVr, &[Feature::Viewer, Feature::Local]), 1.0);
        assert!(load_weight(SessionMode::ImmersiveVr, &[Feature::HandTracking]) > 1.0);
        assert!(load_weight(SessionMode::Inline, &[]) < 1.0);
    }
}
