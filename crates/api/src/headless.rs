//! The headless backend: bridges sessions into the local single-client
//! runtime pipeline (`illixr-system`'s [`IntegratedExperiment`]).
//!
//! On the first [`DeviceApi::wait_frame`] the device lazily runs a full
//! RuntimeBuilder-based discrete-event experiment — synthetic sensors,
//! VIO, rendering, asynchronous reprojection — and then replays its
//! displayed-frame log as the session's frame stream: each frame's
//! timestamp is the vsync an MTP sample was accepted at and its viewer
//! pose is the pose actually displayed there.

use std::time::Duration;

use illixr_platform::Platform;
use illixr_render::apps::Application;
use illixr_system::experiment::{ExperimentConfig, IntegratedExperiment};

use crate::device::DeviceApi;
use crate::error::SessionError;
use crate::registry::Discovery;
use crate::types::{scripted_input, views_for, EnvironmentBlendMode, Feature, Frame, SessionMode};

/// Parameters for the local-pipeline backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlessConfig {
    /// Which application the pipeline renders.
    pub app: Application,
    /// Which hardware model the pipeline is timed against.
    pub platform: Platform,
    /// Simulated run length (bounds the frame stream).
    pub duration: Duration,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for HeadlessConfig {
    /// Platformer on the desktop platform, 2 simulated seconds, seed
    /// 42.
    fn default() -> Self {
        Self {
            app: Application::Platformer,
            platform: Platform::Desktop,
            duration: Duration::from_secs(2),
            seed: 42,
        }
    }
}

/// Registers devices backed by the local integrated pipeline.
///
/// Supports `inline` and `immersive-vr`; `immersive-ar` is refused
/// (the local pipeline has no camera passthrough), and so are
/// `hit-test` / `anchors` (no world geometry service).
pub struct HeadlessDiscovery {
    config: HeadlessConfig,
}

impl HeadlessDiscovery {
    /// A discovery running the given experiment per device.
    pub fn new(config: HeadlessConfig) -> Self {
        Self { config }
    }
}

impl Discovery for HeadlessDiscovery {
    fn name(&self) -> &'static str {
        "headless"
    }

    fn supports_mode(&self, mode: SessionMode) -> bool {
        matches!(mode, SessionMode::Inline | SessionMode::ImmersiveVr)
    }

    fn supported_features(&self, _mode: SessionMode) -> Vec<Feature> {
        vec![Feature::Viewer, Feature::Local, Feature::LocalFloor, Feature::HandTracking]
    }

    fn build_device(
        &mut self,
        mode: SessionMode,
        granted: &[Feature],
    ) -> Result<Box<dyn DeviceApi>, SessionError> {
        Ok(Box::new(HeadlessDevice {
            config: self.config,
            mode,
            granted: granted.to_vec(),
            frames: None,
            cursor: 0,
            report: String::new(),
        }))
    }
}

/// A device replaying one integrated-experiment run.
struct HeadlessDevice {
    config: HeadlessConfig,
    mode: SessionMode,
    granted: Vec<Feature>,
    frames: Option<Vec<Frame>>,
    cursor: usize,
    report: String,
}

impl HeadlessDevice {
    /// Runs the experiment on first use and converts its displayed-pose
    /// log into the session frame stream.
    fn ensure_run(&mut self) {
        if self.frames.is_some() {
            return;
        }
        let config = ExperimentConfig {
            duration: self.config.duration,
            ..ExperimentConfig::quick(self.config.app, self.config.platform)
        }
        .with_seed(self.config.seed);
        let result = IntegratedExperiment::run(&config);
        let hands = self.granted.contains(&Feature::HandTracking);
        let frames: Vec<Frame> = result
            .mtp
            .iter()
            .zip(result.displayed_poses.iter())
            .enumerate()
            .map(|(i, (sample, pose))| Frame {
                index: i as u64,
                time: sample.display_vsync,
                viewer: *pose,
                views: views_for(self.mode, pose),
                inputs: scripted_input(self.config.seed, i as u64, pose, hands),
            })
            .collect();
        let mean_mtp_ms = if result.mtp.is_empty() {
            0.0
        } else {
            result.mtp.iter().map(|s| s.total().as_secs_f64() * 1e3).sum::<f64>()
                / result.mtp.len() as f64
        };
        self.report = format!(
            "headless app={} platform={:?} seed={} frames={} mean_mtp_ms={:.3}",
            self.config.app.label(),
            self.config.platform,
            self.config.seed,
            frames.len(),
            mean_mtp_ms
        );
        self.frames = Some(frames);
    }
}

impl DeviceApi for HeadlessDevice {
    fn backend(&self) -> &'static str {
        "headless"
    }

    fn granted_features(&self) -> &[Feature] {
        &self.granted
    }

    fn blend_mode(&self) -> EnvironmentBlendMode {
        self.mode.blend_mode()
    }

    fn wait_frame(&mut self) -> Option<Frame> {
        self.ensure_run();
        let frames = self.frames.as_ref().expect("ensure_run populated frames");
        let frame = frames.get(self.cursor)?.clone();
        self.cursor += 1;
        Some(frame)
    }

    fn report(&self) -> String {
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::types::SessionInit;

    #[test]
    fn headless_session_replays_pipeline_frames_deterministically() {
        let run = || {
            let mut registry = Registry::new();
            registry.register(Box::new(HeadlessDiscovery::new(HeadlessConfig {
                duration: Duration::from_secs(1),
                ..HeadlessConfig::default()
            })));
            let init = SessionInit::new().optional(&[Feature::HandTracking]);
            let mut session = registry.request_session(SessionMode::ImmersiveVr, &init).unwrap();
            let n = session.run(u64::MAX);
            assert!(n > 30, "1 simulated second at 120 Hz should display >30 frames, got {n}");
            (session.transcript().to_owned(), session.report())
        };
        let (transcript_a, report_a) = run();
        let (transcript_b, report_b) = run();
        assert_eq!(transcript_a, transcript_b);
        assert_eq!(report_a, report_b);
        assert!(report_a.starts_with("headless app=Platformer"));
    }
}
