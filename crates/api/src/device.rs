//! The backend-facing device trait, modeled on webxr-api's `DeviceAPI`:
//! everything a [`crate::Session`] needs from whatever is actually
//! producing poses.

use crate::types::{EnvironmentBlendMode, Feature, Frame, HitTestResult, Ray};

/// One opened device: the backend half of a session.
///
/// A device is created by a [`crate::Discovery`] once negotiation
/// succeeds and is owned by the [`crate::Session`], which drives it
/// through [`DeviceApi::wait_frame`] and fans the results out over
/// switchboard topics. Implementations must be deterministic: the same
/// backend configuration must replay the same frame and input streams
/// bit-for-bit.
pub trait DeviceApi: Send {
    /// Stable backend name ("mock", "headless", "remote").
    fn backend(&self) -> &'static str;

    /// The features negotiation granted this device.
    fn granted_features(&self) -> &[Feature];

    /// How this device blends rendered pixels with reality.
    fn blend_mode(&self) -> EnvironmentBlendMode;

    /// Blocks until the next frame, or `None` once the device's
    /// timeline is exhausted (which ends the session).
    fn wait_frame(&mut self) -> Option<Frame>;

    /// Answers one hit-test subscription for `frame`. The default
    /// backend has no world geometry and returns nothing.
    fn hit_test(&self, frame: &Frame, ray: &Ray, source: u32) -> Vec<HitTestResult> {
        let _ = (frame, ray, source);
        Vec::new()
    }

    /// Releases backend resources; called once when the session ends.
    fn end(&mut self) {}

    /// A deterministic backend-specific run report (the remote backend
    /// returns the server's `summary_text()`), empty by default.
    fn report(&self) -> String {
        String::new()
    }
}
