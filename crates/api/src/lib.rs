//! illixr-api: a WebXR-style device/session front-end over pluggable
//! backends.
//!
//! The rest of the workspace answers *how an XR runtime behaves* — this
//! crate answers *how an application talks to one*. It models the WebXR
//! Device API the way servo's `webxr-api` does: a [`Registry`] holds
//! pluggable [`Discovery`] backends; an application asks for a session
//! by [`SessionMode`] plus a [`SessionInit`] feature request
//! (required features fail the request when unsupported, optional ones
//! are dropped); negotiation yields a typed [`Session`] whose frame
//! loop, input events, hit-test results and lifecycle notifications all
//! flow over lossless switchboard topics ([`session::streams`]).
//!
//! Three backends ship with the crate:
//!
//! * [`MockDiscovery`] — scripted poses and input for deterministic
//!   tests; same seed, bit-identical streams;
//! * [`HeadlessDiscovery`] — bridges into the local single-client
//!   pipeline (`illixr-system`'s integrated experiment), replaying its
//!   displayed-frame log as the session timeline;
//! * [`RemoteDiscovery`] — adopts sessions into one shared
//!   `illixr-server` run, feeding negotiated features into admission
//!   control via the session load-weight; an immersive-VR session with
//!   default features is configured identically to a plain
//!   `ServerBuilder` session, so its report is bit-identical to a
//!   direct run.
//!
//! # Examples
//!
//! ```
//! use illixr_api::{Feature, MockDiscovery, Registry, SessionInit, SessionMode};
//!
//! let mut registry = Registry::new();
//! registry.register(Box::new(MockDiscovery::new(7)));
//!
//! let init = SessionInit::new()
//!     .required(&[Feature::LocalFloor])
//!     .optional(&[Feature::HandTracking, Feature::HitTest]);
//! let mut session = registry.request_session(SessionMode::ImmersiveVr, &init).unwrap();
//! assert!(session.granted_features().contains(&Feature::HandTracking));
//!
//! let frames = session.frames();
//! let inputs = session.input_events();
//! while session.pump().is_some() {}
//!
//! assert_eq!(frames.drain().len(), 120);
//! assert!(!inputs.drain().is_empty());
//! assert!(session.ended());
//! ```

pub mod device;
pub mod error;
pub mod headless;
pub mod mock;
pub mod registry;
pub mod remote;
pub mod session;
pub mod types;

pub use device::DeviceApi;
pub use error::SessionError;
pub use headless::{HeadlessConfig, HeadlessDiscovery};
pub use mock::{MockConfig, MockDiscovery};
pub use registry::{Discovery, Registry};
pub use remote::{RemoteConfig, RemoteDiscovery};
pub use session::{payloads, Session};
pub use types::{
    floor_hit, scripted_input, views_for, EnvironmentBlendMode, Eye, Feature, Frame, Handedness,
    HitTestEvent, HitTestResult, InputEvent, InputEventKind, InputState, Ray, SessionEvent,
    SessionInit, SessionMode, View, Visibility, IPD,
};
