//! Typed session-negotiation and runtime errors.

use core::fmt;

use crate::types::{Feature, SessionMode};

/// Why a session could not be created or a session-level request was
/// refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No registered backend at all, or none that got as far as mode
    /// matching.
    NoMatchingDevice,
    /// A backend exists but none supports the requested mode.
    UnsupportedMode(SessionMode),
    /// A required feature is unsupported by every mode-matching
    /// backend.
    RequiredFeatureDenied(Feature),
    /// A runtime request (e.g. a hit-test subscription) needs a feature
    /// the session was not granted.
    FeatureUnavailable(Feature),
    /// The backend refused for its own reasons (e.g. the remote server
    /// already ran its timeline).
    Backend(String),
}

impl SessionError {
    /// How specific the error is: when several backends fail for
    /// different reasons, [`crate::Registry::request_session`] reports
    /// the most specific one.
    pub(crate) fn specificity(&self) -> u8 {
        match self {
            SessionError::NoMatchingDevice => 0,
            SessionError::UnsupportedMode(_) => 1,
            SessionError::Backend(_) => 2,
            SessionError::FeatureUnavailable(_) => 3,
            SessionError::RequiredFeatureDenied(_) => 3,
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::NoMatchingDevice => write!(f, "no matching XR device"),
            SessionError::UnsupportedMode(mode) => {
                write!(f, "no backend supports session mode {}", mode.label())
            }
            SessionError::RequiredFeatureDenied(feature) => {
                write!(f, "required feature {} denied", feature.name())
            }
            SessionError::FeatureUnavailable(feature) => {
                write!(f, "feature {} was not granted to this session", feature.name())
            }
            SessionError::Backend(reason) => write!(f, "backend error: {reason}"),
        }
    }
}

impl std::error::Error for SessionError {}
