//! The typed session handle: drives a [`DeviceApi`] frame loop and
//! fans frames, input events, hit-test results and lifecycle events out
//! over lossless switchboard topics.

use std::sync::Arc;

use illixr_core::switchboard::{Event, Switchboard, SyncReader, TopicStats, Writer};

use crate::device::DeviceApi;
use crate::error::SessionError;
use crate::types::{
    fmt_quat, fmt_vec, EnvironmentBlendMode, Feature, Frame, HitTestEvent, InputEvent,
    InputEventKind, Ray, SessionEvent, SessionMode, Visibility,
};

/// Topic names a session publishes on its private switchboard.
pub mod streams {
    /// Per-vsync [`crate::Frame`]s.
    pub const FRAME: &str = "xr/frame";
    /// Edge-triggered [`crate::InputEvent`]s.
    pub const INPUT: &str = "xr/input";
    /// Per-frame [`crate::HitTestEvent`]s (only while subscriptions are
    /// active).
    pub const HIT_TEST: &str = "xr/hit_test";
    /// [`crate::SessionEvent`] lifecycle notifications.
    pub const LIFECYCLE: &str = "xr/lifecycle";
}

/// An open XR session: the application-facing half of a negotiated
/// device.
///
/// The session owns its own [`Switchboard`]; each call to
/// [`Session::pump`] pulls one frame from the backend, derives input
/// edges from consecutive input snapshots, answers active hit-test
/// subscriptions, and publishes everything on the [`streams`] topics.
/// All readers are lossless ([`illixr_core::switchboard::Topic::lossless_reader`])
/// — XR event streams must not drop a `select-end` to backpressure.
///
/// Every published payload is also appended to a textual
/// [`Session::transcript`], the bit-identity artifact golden tests
/// compare across same-seed reruns.
pub struct Session {
    mode: SessionMode,
    granted: Vec<Feature>,
    device: Box<dyn DeviceApi>,
    switchboard: Switchboard,
    frame_writer: Writer<Frame>,
    input_writer: Writer<InputEvent>,
    hit_writer: Writer<HitTestEvent>,
    lifecycle_writer: Writer<SessionEvent>,
    hit_sources: Vec<(u32, Ray)>,
    next_hit_source: u32,
    last_inputs: Vec<(u32, bool, bool)>,
    frames: u64,
    visibility: Visibility,
    ended: bool,
    transcript: String,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("mode", &self.mode)
            .field("backend", &self.device.backend())
            .field("granted", &self.granted)
            .field("frames", &self.frames)
            .field("ended", &self.ended)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Wraps a negotiated device. Called by
    /// [`crate::Registry::request_session`].
    pub(crate) fn new(
        mode: SessionMode,
        granted: Vec<Feature>,
        device: Box<dyn DeviceApi>,
    ) -> Self {
        let switchboard = Switchboard::new();
        let frame_writer =
            switchboard.topic::<Frame>(streams::FRAME).expect("fresh switchboard").writer();
        let input_writer =
            switchboard.topic::<InputEvent>(streams::INPUT).expect("fresh switchboard").writer();
        let hit_writer = switchboard
            .topic::<HitTestEvent>(streams::HIT_TEST)
            .expect("fresh switchboard")
            .writer();
        let lifecycle_writer = switchboard
            .topic::<SessionEvent>(streams::LIFECYCLE)
            .expect("fresh switchboard")
            .writer();
        Self {
            mode,
            granted,
            device,
            switchboard,
            frame_writer,
            input_writer,
            hit_writer,
            lifecycle_writer,
            hit_sources: Vec::new(),
            next_hit_source: 0,
            last_inputs: Vec::new(),
            frames: 0,
            visibility: Visibility::Visible,
            ended: false,
            transcript: String::new(),
        }
    }

    /// The mode this session was opened with.
    pub fn mode(&self) -> SessionMode {
        self.mode
    }

    /// Features granted by negotiation, in [`Feature::ALL`] order.
    pub fn granted_features(&self) -> &[Feature] {
        &self.granted
    }

    /// The backend serving this session.
    pub fn backend(&self) -> &'static str {
        self.device.backend()
    }

    /// How rendered output blends with the environment.
    pub fn blend_mode(&self) -> EnvironmentBlendMode {
        self.device.blend_mode()
    }

    /// Current visibility state.
    pub fn visibility(&self) -> Visibility {
        self.visibility
    }

    /// Whether the session has ended (backend exhausted or
    /// [`Session::end`] called).
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// Frames delivered so far.
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// The session's private switchboard (for stats or ad-hoc topics).
    pub fn switchboard(&self) -> &Switchboard {
        &self.switchboard
    }

    /// Counters for every session stream.
    pub fn stream_stats(&self) -> Vec<TopicStats> {
        self.switchboard.stats()
    }

    /// A lossless reader over delivered [`Frame`]s.
    pub fn frames(&self) -> SyncReader<Frame> {
        self.reader(streams::FRAME)
    }

    /// A lossless reader over [`InputEvent`]s.
    pub fn input_events(&self) -> SyncReader<InputEvent> {
        self.reader(streams::INPUT)
    }

    /// A lossless reader over [`HitTestEvent`]s.
    pub fn hit_test_events(&self) -> SyncReader<HitTestEvent> {
        self.reader(streams::HIT_TEST)
    }

    /// A lossless reader over [`SessionEvent`]s.
    pub fn lifecycle_events(&self) -> SyncReader<SessionEvent> {
        self.reader(streams::LIFECYCLE)
    }

    fn reader<T: Send + Sync + 'static>(&self, name: &str) -> SyncReader<T> {
        self.switchboard.topic::<T>(name).expect("session topic types are fixed").lossless_reader()
    }

    /// Subscribes a hit-test ray; every subsequent frame answers it
    /// with a [`HitTestEvent`]. Returns the subscription id.
    ///
    /// # Errors
    ///
    /// [`SessionError::FeatureUnavailable`] when `hit-test` was not
    /// granted at negotiation.
    pub fn request_hit_test(&mut self, ray: Ray) -> Result<u32, SessionError> {
        if !self.granted.contains(&Feature::HitTest) {
            return Err(SessionError::FeatureUnavailable(Feature::HitTest));
        }
        let id = self.next_hit_source;
        self.next_hit_source += 1;
        self.hit_sources.push((id, ray));
        Ok(id)
    }

    /// Cancels a hit-test subscription.
    pub fn cancel_hit_test(&mut self, id: u32) {
        self.hit_sources.retain(|(source, _)| *source != id);
    }

    /// Changes visibility, publishing a lifecycle event on transitions.
    pub fn set_visibility(&mut self, visibility: Visibility) {
        if self.visibility != visibility && !self.ended {
            self.visibility = visibility;
            self.transcript.push_str(&format!("L visibility={}\n", visibility.label()));
            self.lifecycle_writer.put(SessionEvent::VisibilityChanged(visibility));
        }
    }

    /// Advances the frame loop by one frame.
    ///
    /// Pulls the next frame from the device, publishes it on
    /// [`streams::FRAME`], derives and publishes input edges, answers
    /// hit-test subscriptions, and returns the frame. Returns `None` —
    /// after publishing [`SessionEvent::Ended`] — once the backend's
    /// timeline is exhausted.
    pub fn pump(&mut self) -> Option<Frame> {
        if self.ended {
            return None;
        }
        let Some(frame) = self.device.wait_frame() else {
            self.end();
            return None;
        };
        self.transcript.push_str(&format!(
            "F{} t={} p={} q={} views={}",
            frame.index,
            frame.time.as_nanos(),
            fmt_vec(&frame.viewer.position),
            fmt_quat(&frame.viewer.orientation),
            frame.views.len(),
        ));
        for input in &frame.inputs {
            self.transcript.push_str(&format!(
                " s{}:{}{}",
                input.source,
                u8::from(input.select_pressed),
                u8::from(input.squeeze_pressed),
            ));
        }
        self.transcript.push('\n');
        // Edge-detect input transitions against the previous frame.
        for input in &frame.inputs {
            let prev = self
                .last_inputs
                .iter()
                .find(|(source, _, _)| *source == input.source)
                .map(|(_, select, squeeze)| (*select, *squeeze))
                .unwrap_or((false, false));
            let edges = [
                (
                    prev.0,
                    input.select_pressed,
                    InputEventKind::SelectStart,
                    InputEventKind::SelectEnd,
                ),
                (
                    prev.1,
                    input.squeeze_pressed,
                    InputEventKind::SqueezeStart,
                    InputEventKind::SqueezeEnd,
                ),
            ];
            for (was, is, start, end) in edges {
                if was != is {
                    let kind = if is { start } else { end };
                    self.transcript.push_str(&format!(
                        "E t={} s{} {}\n",
                        frame.time.as_nanos(),
                        input.source,
                        kind.label()
                    ));
                    self.input_writer.put(InputEvent {
                        frame: frame.index,
                        time: frame.time,
                        source: input.source,
                        kind,
                    });
                }
            }
            match self.last_inputs.iter_mut().find(|(source, _, _)| *source == input.source) {
                Some(slot) => *slot = (input.source, input.select_pressed, input.squeeze_pressed),
                None => {
                    self.last_inputs.push((
                        input.source,
                        input.select_pressed,
                        input.squeeze_pressed,
                    ));
                }
            }
        }
        // Answer hit-test subscriptions in subscription order.
        if !self.hit_sources.is_empty() {
            let results: Vec<_> = self
                .hit_sources
                .iter()
                .flat_map(|(id, ray)| self.device.hit_test(&frame, ray, *id))
                .collect();
            self.transcript.push_str(&format!("H f={} n={}", frame.index, results.len()));
            if let Some(first) = results.first() {
                self.transcript.push_str(&format!(
                    " first=s{} t={:.4} p={}",
                    first.source,
                    first.t,
                    fmt_vec(&first.point)
                ));
            }
            self.transcript.push('\n');
            self.hit_writer.put(HitTestEvent { frame: frame.index, time: frame.time, results });
        }
        self.frames += 1;
        self.frame_writer.put(frame.clone());
        Some(frame)
    }

    /// Pumps up to `limit` frames; returns how many were delivered.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut delivered = 0;
        while delivered < limit && self.pump().is_some() {
            delivered += 1;
        }
        delivered
    }

    /// Ends the session: releases the device and publishes
    /// [`SessionEvent::Ended`] exactly once.
    pub fn end(&mut self) {
        if !self.ended {
            self.ended = true;
            self.device.end();
            self.transcript.push_str(&format!("L ended frames={}\n", self.frames));
            self.lifecycle_writer.put(SessionEvent::Ended { frames: self.frames });
        }
    }

    /// The deterministic textual record of everything published so far
    /// — the artifact golden tests compare byte-for-byte.
    pub fn transcript(&self) -> &str {
        &self.transcript
    }

    /// The backend's run report (empty for backends without one).
    pub fn report(&self) -> String {
        self.device.report()
    }
}

/// Unwraps switchboard events into payload clones, preserving order.
pub fn payloads<T: Clone>(events: Vec<Arc<Event<T>>>) -> Vec<T> {
    events.into_iter().map(|e| e.data.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{MockConfig, MockDiscovery};
    use crate::registry::Registry;
    use crate::types::SessionInit;
    use illixr_math::Vec3;

    fn mock_session(frames: u64) -> Session {
        let mut registry = Registry::new();
        registry.register(Box::new(MockDiscovery::with_config(MockConfig {
            frames,
            ..MockConfig::new(9)
        })));
        let init = SessionInit::new().required(&[Feature::HitTest, Feature::HandTracking]);
        registry.request_session(SessionMode::ImmersiveVr, &init).unwrap()
    }

    #[test]
    fn pump_delivers_frames_and_lossless_event_streams() {
        let mut session = mock_session(60);
        let frames = session.frames();
        let inputs = session.input_events();
        let lifecycle = session.lifecycle_events();
        while session.pump().is_some() {}
        assert_eq!(session.frame_count(), 60);
        assert!(session.ended());
        let delivered = frames.drain();
        assert_eq!(delivered.len(), 60);
        assert_eq!(delivered[0].data.index, 0);
        assert!(!inputs.drain().is_empty(), "scripted input must produce edges over 60 frames");
        let events = payloads(lifecycle.drain());
        assert_eq!(events, vec![SessionEvent::Ended { frames: 60 }]);
        // Lossless contract: nothing on any session stream was dropped.
        for stat in session.stream_stats() {
            assert_eq!(stat.dropped, 0, "stream {} dropped events", stat.name);
        }
    }

    #[test]
    fn hit_test_requires_granted_feature() {
        let mut registry = Registry::new();
        registry.register(Box::new(MockDiscovery::new(3)));
        let mut session =
            registry.request_session(SessionMode::ImmersiveVr, &SessionInit::new()).unwrap();
        let ray = Ray { origin: Vec3::new(0.0, 1.6, 0.0), direction: Vec3::new(0.0, -1.0, 0.0) };
        assert_eq!(
            session.request_hit_test(ray).unwrap_err(),
            SessionError::FeatureUnavailable(Feature::HitTest)
        );
    }

    #[test]
    fn hit_test_subscription_reports_floor_hits_each_frame() {
        let mut session = mock_session(10);
        let hits = session.hit_test_events();
        let ray = Ray { origin: Vec3::new(0.0, 1.6, 0.0), direction: Vec3::new(0.0, -1.0, 0.0) };
        let id = session.request_hit_test(ray).unwrap();
        while session.pump().is_some() {}
        let events = payloads(hits.drain());
        assert_eq!(events.len(), 10);
        assert!(events.iter().all(|e| e.results.len() == 1 && e.results[0].source == id));
        session.cancel_hit_test(id);
    }

    #[test]
    fn visibility_transitions_publish_lifecycle_events() {
        let mut session = mock_session(5);
        let lifecycle = session.lifecycle_events();
        session.set_visibility(Visibility::Hidden);
        session.set_visibility(Visibility::Hidden); // no duplicate event
        session.set_visibility(Visibility::Visible);
        session.end();
        session.end(); // idempotent
        let events = payloads(lifecycle.drain());
        assert_eq!(
            events,
            vec![
                SessionEvent::VisibilityChanged(Visibility::Hidden),
                SessionEvent::VisibilityChanged(Visibility::Visible),
                SessionEvent::Ended { frames: 0 },
            ]
        );
        assert!(session.pump().is_none());
    }
}
