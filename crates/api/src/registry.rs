//! The backend registry: discovery registration and session
//! negotiation, modeled on webxr-api's `MainThreadRegistry`.

use crate::device::DeviceApi;
use crate::error::SessionError;
use crate::session::Session;
use crate::types::{Feature, SessionInit, SessionMode};

/// A pluggable backend: advertises what it can do and builds devices
/// for negotiated sessions (webxr-api's `DiscoveryAPI`).
pub trait Discovery: Send {
    /// Stable backend name for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Whether this backend can open sessions of `mode` at all.
    fn supports_mode(&self, mode: SessionMode) -> bool;

    /// The features this backend can grant for `mode` (beyond the mode
    /// defaults, which are always granted).
    fn supported_features(&self, mode: SessionMode) -> Vec<Feature>;

    /// Opens a device for an already-negotiated session.
    ///
    /// # Errors
    ///
    /// Backend-specific refusals, typically [`SessionError::Backend`].
    fn build_device(
        &mut self,
        mode: SessionMode,
        granted: &[Feature],
    ) -> Result<Box<dyn DeviceApi>, SessionError>;
}

/// Holds every registered [`Discovery`] and negotiates sessions against
/// them in registration order.
///
/// # Examples
///
/// ```
/// use illixr_api::{MockDiscovery, Registry, SessionInit, SessionMode};
///
/// let mut registry = Registry::new();
/// registry.register(Box::new(MockDiscovery::new(7)));
/// let session =
///     registry.request_session(SessionMode::ImmersiveVr, &SessionInit::new()).unwrap();
/// assert_eq!(session.backend(), "mock");
/// ```
#[derive(Default)]
pub struct Registry {
    discoveries: Vec<Box<dyn Discovery>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a backend. Earlier registrations win when several
    /// could satisfy the same request.
    pub fn register(&mut self, discovery: Box<dyn Discovery>) {
        self.discoveries.push(discovery);
    }

    /// Names of every registered backend, in registration order.
    pub fn backends(&self) -> Vec<&'static str> {
        self.discoveries.iter().map(|d| d.name()).collect()
    }

    /// Whether any backend could open a `mode` session (WebXR
    /// `isSessionSupported`).
    pub fn supports_session(&self, mode: SessionMode) -> bool {
        self.discoveries.iter().any(|d| d.supports_mode(mode))
    }

    /// Negotiates a session (WebXR `requestSession`): walks backends in
    /// registration order, negotiates `init` against each mode-matching
    /// one, and opens a [`Session`] on the first that accepts.
    ///
    /// # Errors
    ///
    /// When every backend refuses, the most specific refusal wins:
    /// [`SessionError::RequiredFeatureDenied`] over
    /// [`SessionError::Backend`] over [`SessionError::UnsupportedMode`]
    /// over [`SessionError::NoMatchingDevice`] (the empty-registry
    /// answer).
    pub fn request_session(
        &mut self,
        mode: SessionMode,
        init: &SessionInit,
    ) -> Result<Session, SessionError> {
        let mut best: Option<SessionError> = None;
        let keep_best = |err: SessionError, best: &mut Option<SessionError>| {
            if best.as_ref().is_none_or(|b| err.specificity() > b.specificity()) {
                *best = Some(err);
            }
        };
        for discovery in &mut self.discoveries {
            if !discovery.supports_mode(mode) {
                keep_best(SessionError::UnsupportedMode(mode), &mut best);
                continue;
            }
            let supported = discovery.supported_features(mode);
            match init.negotiate(mode, &supported) {
                Ok(granted) => match discovery.build_device(mode, &granted) {
                    Ok(device) => return Ok(Session::new(mode, granted, device)),
                    Err(err) => keep_best(err, &mut best),
                },
                Err(err) => keep_best(err, &mut best),
            }
        }
        Err(best.unwrap_or(SessionError::NoMatchingDevice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headless::{HeadlessConfig, HeadlessDiscovery};
    use crate::mock::MockDiscovery;

    #[test]
    fn empty_registry_reports_no_matching_device() {
        let mut registry = Registry::new();
        let err =
            registry.request_session(SessionMode::ImmersiveVr, &SessionInit::new()).unwrap_err();
        assert_eq!(err, SessionError::NoMatchingDevice);
        assert!(!registry.supports_session(SessionMode::Inline));
    }

    #[test]
    fn unsupported_mode_is_reported_per_backend() {
        // The headless backend has no camera passthrough: immersive-ar
        // is refused with the mode error, not a generic failure.
        let mut registry = Registry::new();
        registry.register(Box::new(HeadlessDiscovery::new(HeadlessConfig::default())));
        let err =
            registry.request_session(SessionMode::ImmersiveAr, &SessionInit::new()).unwrap_err();
        assert_eq!(err, SessionError::UnsupportedMode(SessionMode::ImmersiveAr));
        assert!(registry.supports_session(SessionMode::ImmersiveVr));
        assert!(!registry.supports_session(SessionMode::ImmersiveAr));
    }

    #[test]
    fn required_feature_denial_beats_mode_mismatch() {
        // Headless cannot do hit-test; a second AR-incapable view of the
        // same backend must not mask the feature denial.
        let mut registry = Registry::new();
        registry.register(Box::new(HeadlessDiscovery::new(HeadlessConfig::default())));
        let init = SessionInit::new().required(&[Feature::HitTest]);
        let err = registry.request_session(SessionMode::ImmersiveVr, &init).unwrap_err();
        assert_eq!(err, SessionError::RequiredFeatureDenied(Feature::HitTest));
    }

    #[test]
    fn first_capable_backend_wins() {
        let mut registry = Registry::new();
        registry.register(Box::new(HeadlessDiscovery::new(HeadlessConfig::default())));
        registry.register(Box::new(MockDiscovery::new(5)));
        // Headless refuses AR, mock accepts: the request falls through.
        let session =
            registry.request_session(SessionMode::ImmersiveAr, &SessionInit::new()).unwrap();
        assert_eq!(session.backend(), "mock");
        // VR with defaults is served by the first registration.
        let session =
            registry.request_session(SessionMode::ImmersiveVr, &SessionInit::new()).unwrap();
        assert_eq!(session.backend(), "headless");
    }

    #[test]
    fn backends_lists_registration_order() {
        let mut registry = Registry::new();
        registry.register(Box::new(MockDiscovery::new(1)));
        registry.register(Box::new(HeadlessDiscovery::new(HeadlessConfig::default())));
        assert_eq!(registry.backends(), vec!["mock", "headless"]);
    }
}
