//! The mock backend: scripted poses and input for deterministic tests,
//! modeled on webxr-api's headless `MockDiscovery`.
//!
//! Poses come from a seeded [`Trajectory`]; input follows the shared
//! [`scripted_input`] script; hit-tests intersect a floor plane at
//! `y = 0`. Two devices built from the same [`MockConfig`] replay
//! bit-identical frame and event streams, which makes this the backend
//! golden tests negotiate against.

use illixr_core::Time;
use illixr_sensors::Trajectory;

use crate::device::DeviceApi;
use crate::error::SessionError;
use crate::registry::Discovery;
use crate::types::{
    floor_hit, scripted_input, views_for, EnvironmentBlendMode, Feature, Frame, HitTestResult, Ray,
    SessionMode,
};

/// Parameters for a scripted mock device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MockConfig {
    /// Seed for the pose trajectory and input script.
    pub seed: u64,
    /// Frames the device delivers before its timeline ends.
    pub frames: u64,
    /// Frame cadence.
    pub frame_hz: f64,
}

impl MockConfig {
    /// 120 frames at 60 Hz with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, frames: 120, frame_hz: 60.0 }
    }
}

/// Registers scripted mock devices supporting every mode and feature.
pub struct MockDiscovery {
    config: MockConfig,
}

impl MockDiscovery {
    /// A discovery with the default 120-frame script for `seed`.
    pub fn new(seed: u64) -> Self {
        Self { config: MockConfig::new(seed) }
    }

    /// A discovery with explicit script parameters.
    pub fn with_config(config: MockConfig) -> Self {
        Self { config }
    }
}

impl Discovery for MockDiscovery {
    fn name(&self) -> &'static str {
        "mock"
    }

    fn supports_mode(&self, _mode: SessionMode) -> bool {
        true
    }

    fn supported_features(&self, _mode: SessionMode) -> Vec<Feature> {
        Feature::ALL.to_vec()
    }

    fn build_device(
        &mut self,
        mode: SessionMode,
        granted: &[Feature],
    ) -> Result<Box<dyn DeviceApi>, SessionError> {
        Ok(Box::new(MockDevice {
            config: self.config,
            mode,
            granted: granted.to_vec(),
            trajectory: Trajectory::gentle(self.config.seed),
            index: 0,
        }))
    }
}

/// A scripted device: seeded trajectory, scripted buttons, floor-plane
/// world geometry.
struct MockDevice {
    config: MockConfig,
    mode: SessionMode,
    granted: Vec<Feature>,
    trajectory: Trajectory,
    index: u64,
}

impl DeviceApi for MockDevice {
    fn backend(&self) -> &'static str {
        "mock"
    }

    fn granted_features(&self) -> &[Feature] {
        &self.granted
    }

    fn blend_mode(&self) -> EnvironmentBlendMode {
        self.mode.blend_mode()
    }

    fn wait_frame(&mut self) -> Option<Frame> {
        if self.index >= self.config.frames {
            return None;
        }
        let period_ns = (1e9 / self.config.frame_hz).round() as u64;
        let time = Time::from_nanos(self.index * period_ns);
        let viewer = self.trajectory.pose(time);
        let hands = self.granted.contains(&Feature::HandTracking);
        let frame = Frame {
            index: self.index,
            time,
            viewer,
            views: views_for(self.mode, &viewer),
            inputs: scripted_input(self.config.seed, self.index, &viewer, hands),
        };
        self.index += 1;
        Some(frame)
    }

    fn hit_test(&self, _frame: &Frame, ray: &Ray, source: u32) -> Vec<HitTestResult> {
        floor_hit(ray, 0.0, source).into_iter().collect()
    }

    fn report(&self) -> String {
        format!(
            "mock seed={} frames={} delivered={}",
            self.config.seed, self.config.frames, self.index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::types::SessionInit;

    #[test]
    fn same_seed_devices_replay_identical_transcripts() {
        let run = || {
            let mut registry = Registry::new();
            registry.register(Box::new(MockDiscovery::new(21)));
            let init = SessionInit::new().optional(&[Feature::HandTracking, Feature::HitTest]);
            let mut session = registry.request_session(SessionMode::ImmersiveAr, &init).unwrap();
            while session.pump().is_some() {}
            session.transcript().to_owned()
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run());
    }

    #[test]
    fn different_seeds_diverge() {
        let run = |seed| {
            let mut registry = Registry::new();
            registry.register(Box::new(MockDiscovery::new(seed)));
            let mut session =
                registry.request_session(SessionMode::Inline, &SessionInit::new()).unwrap();
            while session.pump().is_some() {}
            session.transcript().to_owned()
        };
        assert_ne!(run(1), run(2));
    }
}
